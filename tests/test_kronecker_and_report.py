"""Stochastic Kronecker generator and solution-report tests."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.errors import GraphError
from repro.experiments.solution_report import (
    CommunityOutcome,
    render_report,
    solution_report,
)
from repro.graph.builders import from_edge_list
from repro.graph.generators import stochastic_kronecker_graph


# -------------------------------------------------------- kronecker


def test_kronecker_node_count_is_power_of_two():
    g = stochastic_kronecker_graph(5, seed=1)
    assert g.num_nodes == 32


def test_kronecker_edge_count_near_expectation():
    initiator = ((0.9, 0.5), (0.5, 0.2))
    total = 2.1
    levels = 7
    g = stochastic_kronecker_graph(levels, initiator, seed=2)
    expected = total ** levels
    # Duplicate collisions shave some edges; stay within a loose band.
    assert 0.5 * expected <= g.num_edges <= expected


def test_kronecker_skewed_degrees():
    g = stochastic_kronecker_graph(8, seed=3)
    degrees = sorted(
        (g.out_degree(v) + g.in_degree(v) for v in g.nodes()), reverse=True
    )
    mean = 2 * g.num_edges / g.num_nodes
    assert degrees[0] > 3 * mean  # core hub far above the mean


def test_kronecker_no_self_loops():
    g = stochastic_kronecker_graph(5, seed=4)
    for u, v, _ in g.edges():
        assert u != v


def test_kronecker_deterministic():
    a = stochastic_kronecker_graph(5, seed=9)
    b = stochastic_kronecker_graph(5, seed=9)
    assert a == b


def test_kronecker_validation():
    with pytest.raises(GraphError):
        stochastic_kronecker_graph(0)
    with pytest.raises(GraphError):
        stochastic_kronecker_graph(3, initiator=((1.5, 0.1), (0.1, 0.1)))
    with pytest.raises(GraphError):
        stochastic_kronecker_graph(3, initiator=((0.0, 0.0), (0.0, 0.0)))
    with pytest.raises(GraphError):
        stochastic_kronecker_graph(3, edge_factor=0.0)


# ---------------------------------------------------- solution report


@pytest.fixture
def report_instance():
    graph = from_edge_list(4, [(0, 1, 1.0), (2, 3, 0.0)])
    communities = CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=4.0),
            Community(members=(2, 3), threshold=2, benefit=1.0),
        ]
    )
    return graph, communities


def test_solution_report_rows(report_instance):
    graph, communities = report_instance
    outcomes = solution_report(graph, communities, [0], num_trials=100, seed=1)
    assert len(outcomes) == 2
    by_index = {o.index: o for o in outcomes}
    # Community 0 always tips (0 seeds, edge 0->1 deterministic).
    assert by_index[0].tipping_probability == 1.0
    assert by_index[0].seeds_inside == 1
    assert by_index[0].expected_benefit == pytest.approx(4.0)
    # Community 1 never tips.
    assert by_index[1].tipping_probability == 0.0
    assert by_index[1].seeds_inside == 0


def test_solution_report_sorted_by_expected_benefit(report_instance):
    graph, communities = report_instance
    outcomes = solution_report(graph, communities, [0], num_trials=50, seed=2)
    values = [o.expected_benefit for o in outcomes]
    assert values == sorted(values, reverse=True)


def test_render_report_totals(report_instance):
    graph, communities = report_instance
    outcomes = solution_report(graph, communities, [0], num_trials=50, seed=3)
    text = render_report(outcomes)
    assert "total" in text
    assert "Pr[tip]" in text
    assert "4.000" in text
    short = render_report(outcomes, top=1)
    assert short.count("\n") < text.count("\n")


def test_outcome_dataclass():
    outcome = CommunityOutcome(
        index=0,
        size=3,
        threshold=2,
        benefit=6.0,
        seeds_inside=1,
        tipping_probability=0.5,
    )
    assert outcome.expected_benefit == 3.0
