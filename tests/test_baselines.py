"""Baseline heuristic tests: HBC, KS, IM wrapper, degree, random."""

import pytest

from repro.baselines.degree import high_degree_seeds, random_seeds
from repro.baselines.hbc import beneficial_connection, hbc_seeds
from repro.baselines.im_baseline import im_seeds
from repro.baselines.knapsack import knapsack_communities, ks_seeds
from repro.communities.structure import Community, CommunityStructure
from repro.errors import SolverError
from repro.graph.builders import from_edge_list


@pytest.fixture
def hbc_instance():
    """Node 0 feeds a high-benefit community; node 1 a low one."""
    graph = from_edge_list(
        6, [(0, 2, 0.5), (0, 3, 0.5), (1, 4, 0.5), (1, 5, 0.5)]
    )
    communities = CommunityStructure(
        [
            Community(members=(2, 3), threshold=1, benefit=10.0),
            Community(members=(4, 5), threshold=2, benefit=1.0),
        ]
    )
    return graph, communities


def test_beneficial_connection_formula(hbc_instance):
    graph, communities = hbc_instance
    # B(0) = 0.5*10/1 + 0.5*10/1 = 10; B(1) = 0.5*1/2 * 2 = 0.5.
    assert beneficial_connection(graph, communities, 0) == pytest.approx(10.0)
    assert beneficial_connection(graph, communities, 1) == pytest.approx(0.5)
    assert beneficial_connection(graph, communities, 2) == 0.0


def test_beneficial_connection_ignores_uncovered_targets():
    graph = from_edge_list(3, [(0, 1, 0.9), (0, 2, 0.9)])
    communities = CommunityStructure(
        [Community(members=(1,), threshold=1, benefit=4.0)]
    )
    # Edge to node 2 (uncovered) contributes nothing.
    assert beneficial_connection(graph, communities, 0) == pytest.approx(
        0.9 * 4.0
    )


def test_hbc_seeds_ranking(hbc_instance):
    graph, communities = hbc_instance
    assert hbc_seeds(graph, communities, 1) == [0]
    assert hbc_seeds(graph, communities, 2) == [0, 1]


def test_hbc_validates_budget(hbc_instance):
    graph, communities = hbc_instance
    with pytest.raises(SolverError):
        hbc_seeds(graph, communities, 0)


# ------------------------------------------------------------------- KS


def test_knapsack_exact_selection():
    communities = CommunityStructure(
        [
            Community(members=(0, 1, 2), threshold=3, benefit=5.0),
            Community(members=(3, 4), threshold=2, benefit=4.0),
            Community(members=(5,), threshold=1, benefit=3.0),
        ]
    )
    # Budget 3: best is {2nd (cost 2, value 4), 3rd (cost 1, value 3)} = 7
    # vs {1st} = 5.
    chosen = knapsack_communities(communities, 3)
    assert sorted(chosen) == [1, 2]


def test_knapsack_budget_one():
    communities = CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=10.0),
            Community(members=(2,), threshold=1, benefit=1.0),
        ]
    )
    assert knapsack_communities(communities, 1) == [1]


def test_ks_seeds_picks_threshold_members():
    communities = CommunityStructure(
        [
            Community(members=(5, 3, 4), threshold=2, benefit=9.0),
            Community(members=(7,), threshold=1, benefit=1.0),
        ]
    )
    seeds = ks_seeds(communities, 3)
    # Community 0 (cost 2) + community 1 (cost 1) both fit budget 3.
    assert set(seeds) == {3, 4, 7}


def test_ks_seeds_never_exceed_budget():
    communities = CommunityStructure(
        [
            Community(members=tuple(range(i * 3, i * 3 + 3)), threshold=2, benefit=1.0)
            for i in range(4)
        ]
    )
    for k in range(1, 9):
        assert len(ks_seeds(communities, k)) <= k


def test_knapsack_validates():
    communities = CommunityStructure(
        [Community(members=(0,), threshold=1, benefit=1.0)]
    )
    with pytest.raises(SolverError):
        knapsack_communities(communities, 0)


# ------------------------------------------------------------ IM wrapper


def test_im_seeds_delegates_to_ris():
    graph = from_edge_list(5, [(0, i, 0.9) for i in range(1, 5)])
    seeds = im_seeds(graph, 1, seed=3, max_samples=3000)
    assert seeds == [0]


# ---------------------------------------------------------- degree/random


def test_high_degree_seeds():
    graph = from_edge_list(4, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)])
    assert high_degree_seeds(graph, 1) == [0]
    assert high_degree_seeds(graph, 2) == [0, 1]


def test_random_seeds_distinct_and_deterministic():
    graph = from_edge_list(10, [])
    a = random_seeds(graph, 4, seed=1)
    b = random_seeds(graph, 4, seed=1)
    assert a == b
    assert len(set(a)) == 4
    assert all(0 <= v < 10 for v in a)


def test_degree_and_random_validate():
    graph = from_edge_list(3, [])
    with pytest.raises(SolverError):
        high_degree_seeds(graph, 0)
    with pytest.raises(SolverError):
        random_seeds(graph, 4)
