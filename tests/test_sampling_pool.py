"""Sample-pool tests: inverted indexes and objective estimates."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.errors import SamplingError
from repro.graph.builders import from_edge_list
from repro.sampling.pool import RICSamplePool, RRSamplePool
from repro.sampling.ric import RICSample, RICSampler
from repro.sampling.rr import RRSampler


def _manual_pool():
    """Pool over a trivial instance, filled with hand-built samples."""
    graph = from_edge_list(6, [])
    communities = CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=1.0),
            Community(members=(2,), threshold=1, benefit=1.0),
        ]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=1))
    pool.add(
        RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 5})))
    )
    pool.add(RICSample(1, 1, (2,), (frozenset({2, 4}),)))
    pool.add(
        RICSample(0, 2, (0, 1), (frozenset({0}), frozenset({1})))
    )
    return pool


def test_coverage_index():
    pool = _manual_pool()
    assert list(pool.coverage_of(4)) == [(0, 0), (1, 0)]
    assert list(pool.coverage_of(0)) == [(0, 0), (2, 0)]
    assert list(pool.coverage_of(99)) == []


def test_touch_counts_distinct_samples():
    pool = _manual_pool()
    assert pool.touch_count(4) == 2
    assert pool.touch_count(0) == 2
    assert pool.touch_count(5) == 1
    assert pool.touch_count(99) == 0
    assert set(pool.touching_nodes()) == {0, 1, 2, 4, 5}


def test_community_counts():
    pool = _manual_pool()
    assert pool.community_count(0) == 2
    assert pool.community_count(1) == 1
    assert pool.community_counts() == {0: 2, 1: 1}


def test_samples_touched_by():
    pool = _manual_pool()
    assert pool.samples_touched_by(4) == [0, 1]
    assert pool.samples_touched_by(1) == [0, 2]


def test_influenced_count_threshold_semantics():
    pool = _manual_pool()
    # Node 4 covers one member of sample 0 (h=2) and the member of
    # sample 1 (h=1) -> influences only sample 1.
    assert pool.influenced_count([4]) == 1
    # 4 + 5 cover both members of sample 0.
    assert pool.influenced_count([4, 5]) == 2
    # 0 + 1 influence samples 0 and 2.
    assert pool.influenced_count([0, 1]) == 2
    assert pool.influenced_count([]) == 0


def test_estimate_benefit_formula():
    pool = _manual_pool()
    b = pool.total_benefit
    assert b == 2.0
    assert pool.estimate_benefit([4, 5]) == pytest.approx(b * 2 / 3)
    assert pool.estimate_benefit([]) == 0.0


def test_fractional_count_and_upper_bound():
    pool = _manual_pool()
    # Seeds {4}: sample 0 -> 1/2, sample 1 -> 1/1.
    assert pool.fractional_count([4]) == pytest.approx(1.5)
    assert pool.estimate_upper_bound([4]) == pytest.approx(2.0 * 1.5 / 3)
    # nu >= c-hat everywhere (Lemma 3).
    for seeds in ([4], [0], [0, 1], [4, 5], [2]):
        assert (
            pool.estimate_upper_bound(seeds)
            >= pool.estimate_benefit(seeds) - 1e-12
        )


def test_empty_pool_estimates_zero():
    graph = from_edge_list(2, [])
    communities = CommunityStructure(
        [Community(members=(0,), threshold=1, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=1))
    assert pool.estimate_benefit([0]) == 0.0
    assert pool.estimate_upper_bound([0]) == 0.0


def test_grow_and_grow_to():
    graph = from_edge_list(3, [(0, 1, 0.5)])
    communities = CommunityStructure(
        [Community(members=(1, 2), threshold=1, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=2))
    pool.grow(10)
    assert len(pool) == 10
    pool.grow_to(25)
    assert len(pool) == 25
    pool.grow_to(5)  # never shrinks
    assert len(pool) == 25
    with pytest.raises(SamplingError):
        pool.grow(-1)


def test_pool_estimates_converge_to_exact():
    from repro.diffusion.simulator import community_benefit_exact

    graph = from_edge_list(4, [(0, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)])
    communities = CommunityStructure(
        [Community(members=(2, 3), threshold=2, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=3))
    pool.grow(30_000)
    exact = community_benefit_exact(graph, communities, [0, 1])
    assert pool.estimate_benefit([0, 1]) == pytest.approx(exact, abs=0.02)


# ------------------------------------------------------------- RR pool


def test_rr_pool_membership_and_coverage():
    graph = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0)])
    pool = RRSamplePool(RRSampler(graph, seed=4))
    pool.add(frozenset({0, 1}))
    pool.add(frozenset({2}))
    assert list(pool.sets_containing(0)) == [0]
    assert pool.coverage([0]) == 1
    assert pool.coverage([0, 2]) == 2
    assert pool.coverage([]) == 0
    assert pool.estimate_spread([0, 2]) == pytest.approx(3 * 2 / 2)


def test_rr_pool_grow_and_empty_estimate():
    graph = from_edge_list(3, [(0, 1, 0.5)])
    pool = RRSamplePool(RRSampler(graph, seed=5))
    assert pool.estimate_spread([0]) == 0.0
    pool.grow(12)
    assert len(pool) == 12
    with pytest.raises(SamplingError):
        pool.grow(-3)


def test_pool_stats_empty():
    graph = from_edge_list(2, [])
    communities = CommunityStructure(
        [Community(members=(0,), threshold=1, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=9))
    stats = pool.stats()
    assert stats["num_samples"] == 0.0
    assert stats["mean_reach_size"] == 0.0


def test_pool_stats_manual():
    pool = _manual_pool()
    stats = pool.stats()
    assert stats["num_samples"] == 3.0
    # Reach sizes: 2,2 | 2 | 1,1 -> mean 8/5.
    assert stats["mean_reach_size"] == pytest.approx(8 / 5)
    assert stats["max_reach_size"] == 2.0
    assert stats["mean_members"] == pytest.approx(5 / 3)
    assert stats["touching_nodes"] == 5.0
    assert stats["top_source_share"] == pytest.approx(2 / 3)
