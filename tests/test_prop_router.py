"""Property-based consistent-hash stability for the cluster router.

Rendezvous hashing's selling point is *minimal disruption*: the
assignment of scenarios to replicas is a pure per-(scenario, replica)
weight comparison, so removing one replica can only move the scenarios
that lived on it — every other scenario's home is untouched — and
adding it back restores exactly the original assignment. Those are the
properties that make the supervisor's restart story cheap (a crashed
replica's scenarios fail over; everything else stays warm where it
was), so they are pinned here as hypothesis properties rather than
hand-picked examples.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import assign_replica, rendezvous_order

pytestmark = [pytest.mark.serve, pytest.mark.cluster]

replica_ids = st.lists(
    st.text(
        alphabet=st.characters(
            codec="ascii", categories=("L", "N"), include_characters="-_"
        ),
        min_size=1,
        max_size=12,
    ),
    min_size=2,
    max_size=8,
    unique=True,
)

scenario_names = st.lists(
    st.text(
        alphabet=st.characters(codec="ascii", categories=("L", "N")),
        min_size=1,
        max_size=16,
    ),
    min_size=1,
    max_size=32,
    unique=True,
)


def _assignment(scenarios, replicas):
    return {name: assign_replica(name, replicas) for name in scenarios}


@settings(max_examples=60, deadline=None)
@given(scenarios=scenario_names, replicas=replica_ids, data=st.data())
def test_removing_one_replica_remaps_only_its_scenarios(
    scenarios, replicas, data
):
    removed = data.draw(st.sampled_from(replicas), label="removed")
    survivors = [rid for rid in replicas if rid != removed]
    before = _assignment(scenarios, replicas)
    after = _assignment(scenarios, survivors)
    for name in scenarios:
        if before[name] == removed:
            # Orphaned scenarios land on their rendezvous successor —
            # the next id in the *original* preference order.
            order = rendezvous_order(name, replicas)
            successor = order[order.index(removed) + 1]
            assert after[name] == successor
        else:
            # Every other scenario's home is untouched.
            assert after[name] == before[name]


@settings(max_examples=60, deadline=None)
@given(scenarios=scenario_names, replicas=replica_ids, data=st.data())
def test_adding_the_replica_back_restores_the_assignment(
    scenarios, replicas, data
):
    removed = data.draw(st.sampled_from(replicas), label="removed")
    survivors = [rid for rid in replicas if rid != removed]
    before = _assignment(scenarios, replicas)
    # Re-adding the removed replica (in any position) restores the
    # original assignment exactly: weights ignore list order.
    position = data.draw(
        st.integers(0, len(survivors)), label="reinsert-at"
    )
    restored = list(survivors)
    restored.insert(position, removed)
    assert _assignment(scenarios, restored) == before


@settings(max_examples=60, deadline=None)
@given(scenarios=scenario_names, replicas=replica_ids, data=st.data())
def test_order_is_stable_under_permutation(scenarios, replicas, data):
    shuffled = data.draw(st.permutations(replicas), label="shuffled")
    for name in scenarios:
        assert rendezvous_order(name, shuffled) == rendezvous_order(
            name, replicas
        )
