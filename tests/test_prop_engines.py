"""Property-based three-way coverage-engine equivalence.

``CoverageState`` (sets), ``BitsetCoverage`` (mask dicts) and
``FlatCoverage`` (compiled flat arrays) implement the same incremental
ĉ/ν state with completely different storage. On any random pool and
seed sequence all three must agree — on every marginal, every running
count, and after resyncing past pool growth. The strategies here
deliberately generate degenerate shapes (empty reaches, duplicate reach
sets, saturated samples) because the flat engine's compile step is the
kind of code where off-by-one slot boundaries hide.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.communities.structure import Community, CommunityStructure
from repro.core.bitset_engine import BitsetCoverage
from repro.core.flat_engine import FlatCoverage
from repro.core.objective import CoverageState, evaluate_benefit
from repro.graph.digraph import DiGraph
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler

NUM_NODES = 12


def _make_structure(draw):
    num_communities = draw(st.integers(1, 3))
    communities = []
    next_node = 0
    for _ in range(num_communities):
        size = draw(st.integers(1, 3))
        members = tuple(range(next_node, next_node + size))
        next_node += size
        communities.append(
            Community(
                members=members,
                threshold=draw(st.integers(1, size)),
                benefit=float(draw(st.integers(1, 5))),
            )
        )
    return CommunityStructure(communities)


def _draw_samples(draw, structure, count):
    samples = []
    for _ in range(count):
        idx = draw(st.integers(0, len(structure) - 1))
        community = structure[idx]
        reaches = tuple(
            frozenset(
                draw(st.sets(st.integers(0, NUM_NODES - 1), max_size=4))
                | {member}
            )
            for member in community.members
        )
        samples.append(
            RICSample(idx, community.threshold, community.members, reaches)
        )
    return samples


@st.composite
def pool_seeds_growth(draw):
    structure = _make_structure(draw)
    pool = RICSamplePool(RICSampler(DiGraph(NUM_NODES), structure, seed=0))
    pool.add_many(_draw_samples(draw, structure, draw(st.integers(1, 6))))
    seeds = draw(
        st.lists(
            st.integers(0, NUM_NODES - 1), unique=True, min_size=0, max_size=5
        )
    )
    growth = _draw_samples(draw, structure, draw(st.integers(0, 4)))
    late_seeds = draw(
        st.lists(
            st.integers(0, NUM_NODES - 1), unique=True, min_size=0, max_size=3
        )
    )
    return pool, seeds, growth, late_seeds


@given(pool_seeds_growth())
@settings(max_examples=150, deadline=None)
def test_three_engines_agree_on_state_and_marginals(args):
    pool, seeds, _, _ = args
    reference = CoverageState(pool)
    bitset = BitsetCoverage(pool)
    flat = FlatCoverage(pool)
    for v in seeds:
        # Marginal of v must agree *before* it becomes a seed...
        expected = reference.gain_pair(v)
        assert bitset.gain_pair(v) == expected
        assert flat.gain_pair(v) == expected
        reference.add_seed(v)
        bitset.add_seed(v)
        flat.add_seed(v)
        # ... and the running state after.
        assert flat.influenced_count == reference.influenced_count
        assert bitset.influenced_count == reference.influenced_count
        assert flat.fractional_count == pytest.approx(
            reference.fractional_count
        )
    for v in range(NUM_NODES):
        expected = reference.gain_pair(v)
        assert bitset.gain_pair(v) == expected
        assert flat.gain_pair(v) == expected
    assert flat.estimate_benefit() == pytest.approx(
        reference.estimate_benefit()
    )
    assert flat.estimate_upper_bound() == pytest.approx(
        reference.estimate_upper_bound()
    )
    assert evaluate_benefit(pool, seeds, "flat") == pytest.approx(
        evaluate_benefit(pool, seeds, "reference")
    )


@given(pool_seeds_growth())
@settings(max_examples=100, deadline=None)
def test_engines_agree_after_resync_growth(args):
    pool, seeds, growth, late_seeds = args
    reference = CoverageState(pool)
    bitset = BitsetCoverage(pool)
    flat = FlatCoverage(pool)
    for v in seeds:
        reference.add_seed(v)
        bitset.add_seed(v)
        flat.add_seed(v)
    pool.add_many(growth)
    reference.resync()
    bitset.resync()
    flat.resync()
    for v in late_seeds:
        if v in flat.seeds:
            continue
        expected = reference.gain_pair(v)
        assert bitset.gain_pair(v) == expected
        assert flat.gain_pair(v) == expected
        reference.add_seed(v)
        bitset.add_seed(v)
        flat.add_seed(v)
    assert flat.influenced_count == reference.influenced_count
    assert bitset.influenced_count == reference.influenced_count
    assert flat.estimate_benefit() == pytest.approx(
        reference.estimate_benefit()
    )
    # A fresh compile of the final pool+seeds agrees with the resynced
    # engine — resync is not a distinct state machine.
    fresh = FlatCoverage(pool)
    for v in flat.seeds:
        fresh.add_seed(v)
    assert fresh.influenced_count == flat.influenced_count
    assert fresh.fractional_count == pytest.approx(flat.fractional_count)
