"""Metrics registry tests: gating, counters, gauges, histograms,
edge cases (bucket boundaries, negative increments, reset-after-
snapshot) and the Prometheus text export."""

import pytest

from repro.obs import (
    CATALOG,
    DEFAULT_TIME_BUCKETS,
    metrics,
    session,
    to_prometheus_text,
)

pytestmark = pytest.mark.obs


def test_mutators_are_noops_while_disabled():
    metrics.inc("ghost.counter", 5)
    metrics.set_gauge("ghost.gauge", 1.0)
    metrics.observe("ghost.hist", 0.01)
    snap = metrics.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
    assert metrics.get_counter("ghost.counter") == 0


def test_counters_accumulate_inside_session():
    with session() as recorder:
        metrics.inc("ric.samples.generated", 100)
        metrics.inc("ric.samples.generated", 50)
        metrics.inc("coverage.resyncs")
        assert metrics.get_counter("ric.samples.generated") == 150
    assert recorder.metrics["counters"] == {
        "ric.samples.generated": 150,
        "coverage.resyncs": 1,
    }
    # Session close reset the registry for the next run.
    assert metrics.snapshot()["counters"] == {}


def test_gauges_last_write_wins():
    with session() as recorder:
        metrics.set_gauge("pool.coverage_entries", 10)
        metrics.set_gauge("pool.coverage_entries", 42)
    assert recorder.metrics["gauges"] == {"pool.coverage_entries": 42}


def test_histogram_buckets_fixed_at_first_observation():
    with session() as recorder:
        metrics.observe("t", 0.05, buckets=(0.1, 1.0))
        # Later bucket hints are ignored: the edges stay fixed.
        metrics.observe("t", 0.5, buckets=(99.0,))
        metrics.observe("t", 50.0)  # overflow bucket
    hist = recorder.metrics["histograms"]["t"]
    assert hist["buckets"] == [0.1, 1.0]
    assert hist["counts"] == [1, 1, 1]
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(50.55)


def test_histogram_default_buckets_and_bad_edges():
    with session() as recorder:
        metrics.observe("d", 0.002)
        with pytest.raises(ValueError, match="ascend"):
            metrics.observe("bad", 1.0, buckets=(5.0, 1.0))
    hist = recorder.metrics["histograms"]["d"]
    assert tuple(hist["buckets"]) == DEFAULT_TIME_BUCKETS


def test_snapshot_is_a_deep_enough_copy():
    with session():
        metrics.inc("c")
        metrics.observe("h", 0.01)
        snap = metrics.snapshot()
        snap["counters"]["c"] = 999
        snap["histograms"]["h"]["counts"][0] = 999
        assert metrics.get_counter("c") == 1
        assert metrics.snapshot()["histograms"]["h"]["counts"] != [999] + [
            0
        ] * len(DEFAULT_TIME_BUCKETS)


# ---------------------------------------------------------------------
# Edge cases (bucket boundaries, gauge overwrite, reset, negative inc)
# ---------------------------------------------------------------------


def test_histogram_values_on_bucket_boundaries_are_upper_inclusive():
    # A value exactly equal to an edge counts in that edge's bucket
    # (Prometheus `le` semantics) — pinned for every edge.
    with session() as recorder:
        for edge in (1.0, 2.0, 4.0):
            metrics.observe("edges", edge, buckets=(1.0, 2.0, 4.0))
    hist = recorder.metrics["histograms"]["edges"]
    assert hist["counts"] == [1, 1, 1, 0]


def test_histogram_boundary_value_just_above_edge_moves_up():
    with session() as recorder:
        metrics.observe("edges", 1.0, buckets=(1.0, 2.0))
        metrics.observe("edges", 1.0000001, buckets=(1.0, 2.0))
    assert recorder.metrics["histograms"]["edges"]["counts"] == [1, 1, 0]


def test_gauge_overwrite_keeps_only_last_value_and_allows_regression():
    with session() as recorder:
        metrics.set_gauge("g", 100.0)
        metrics.set_gauge("g", -3.5)  # gauges may go down, unlike counters
    assert recorder.metrics["gauges"] == {"g": -3.5}


def test_reset_after_snapshot_clears_but_snapshot_survives():
    with session():
        metrics.inc("c", 2)
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 0.5, buckets=(1.0,))
        snap = metrics.snapshot()
        metrics.reset()
        assert metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        # The earlier snapshot is an independent copy.
        assert snap["counters"] == {"c": 2}
        assert snap["histograms"]["h"]["count"] == 1
        # The registry is immediately usable again.
        metrics.inc("c")
        assert metrics.get_counter("c") == 1


def test_negative_counter_increment_raises_while_active():
    # Counters are monotone; decrements are a ValueError when the
    # registry is live ...
    with session():
        metrics.inc("c", 2)
        with pytest.raises(ValueError, match="monotone"):
            metrics.inc("c", -1)
        assert metrics.get_counter("c") == 2
    # ... and stay a silent no-op while instrumentation is disabled,
    # like every other mutator.
    metrics.inc("c", -1)
    assert metrics.get_counter("c") == 0


# ---------------------------------------------------------------------
# Prometheus text export
# ---------------------------------------------------------------------


def test_prometheus_export_counters_gauges_histograms():
    with session():
        metrics.inc("ric.samples.generated", 100)
        metrics.set_gauge("pool.bytes", 2048)
        metrics.observe("pool.reach.histogram", 1, buckets=(1, 2, 4))
        metrics.observe("pool.reach.histogram", 3, buckets=(1, 2, 4))
        metrics.observe("pool.reach.histogram", 9, buckets=(1, 2, 4))
        text = to_prometheus_text(metrics.snapshot())
    lines = text.splitlines()
    assert "ric_samples_generated_total 100" in lines
    assert "# TYPE ric_samples_generated_total counter" in lines
    assert "pool_bytes 2048" in lines
    assert "# TYPE pool_bytes gauge" in lines
    # Cumulative buckets: le="1" holds 1, le="2" still 1, le="4" 2,
    # +Inf the full count.
    assert 'pool_reach_histogram_bucket{le="1"} 1' in lines
    assert 'pool_reach_histogram_bucket{le="2"} 1' in lines
    assert 'pool_reach_histogram_bucket{le="4"} 2' in lines
    assert 'pool_reach_histogram_bucket{le="+Inf"} 3' in lines
    assert "pool_reach_histogram_sum 13" in lines
    assert "pool_reach_histogram_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_export_help_text_comes_from_catalog():
    snap = {"counters": {"ric.samples.generated": 7},
            "gauges": {}, "histograms": {}}
    text = to_prometheus_text(snap)
    assert (
        f"# HELP ric_samples_generated_total "
        f"{CATALOG['ric.samples.generated']}" in text
    )
    # Uncatalogued names export without a HELP line but still render.
    text = to_prometheus_text(
        {"counters": {"adhoc.name": 1}, "gauges": {}, "histograms": {}}
    )
    assert "# HELP" not in text
    assert "adhoc_name_total 1" in text


def test_prometheus_export_empty_snapshot_is_empty_string():
    assert to_prometheus_text(
        {"counters": {}, "gauges": {}, "histograms": {}}
    ) == ""
