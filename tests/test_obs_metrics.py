"""Metrics registry tests: gating, counters, gauges, histograms."""

import pytest

from repro.obs import DEFAULT_TIME_BUCKETS, metrics, session

pytestmark = pytest.mark.obs


def test_mutators_are_noops_while_disabled():
    metrics.inc("ghost.counter", 5)
    metrics.set_gauge("ghost.gauge", 1.0)
    metrics.observe("ghost.hist", 0.01)
    snap = metrics.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
    assert metrics.get_counter("ghost.counter") == 0


def test_counters_accumulate_inside_session():
    with session() as recorder:
        metrics.inc("ric.samples.generated", 100)
        metrics.inc("ric.samples.generated", 50)
        metrics.inc("coverage.resyncs")
        assert metrics.get_counter("ric.samples.generated") == 150
    assert recorder.metrics["counters"] == {
        "ric.samples.generated": 150,
        "coverage.resyncs": 1,
    }
    # Session close reset the registry for the next run.
    assert metrics.snapshot()["counters"] == {}


def test_gauges_last_write_wins():
    with session() as recorder:
        metrics.set_gauge("pool.coverage_entries", 10)
        metrics.set_gauge("pool.coverage_entries", 42)
    assert recorder.metrics["gauges"] == {"pool.coverage_entries": 42}


def test_histogram_buckets_fixed_at_first_observation():
    with session() as recorder:
        metrics.observe("t", 0.05, buckets=(0.1, 1.0))
        # Later bucket hints are ignored: the edges stay fixed.
        metrics.observe("t", 0.5, buckets=(99.0,))
        metrics.observe("t", 50.0)  # overflow bucket
    hist = recorder.metrics["histograms"]["t"]
    assert hist["buckets"] == [0.1, 1.0]
    assert hist["counts"] == [1, 1, 1]
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(50.55)


def test_histogram_default_buckets_and_bad_edges():
    with session() as recorder:
        metrics.observe("d", 0.002)
        with pytest.raises(ValueError, match="ascend"):
            metrics.observe("bad", 1.0, buckets=(5.0, 1.0))
    hist = recorder.metrics["histograms"]["d"]
    assert tuple(hist["buckets"]) == DEFAULT_TIME_BUCKETS


def test_snapshot_is_a_deep_enough_copy():
    with session():
        metrics.inc("c")
        metrics.observe("h", 0.01)
        snap = metrics.snapshot()
        snap["counters"]["c"] = 999
        snap["histograms"]["h"]["counts"][0] = 999
        assert metrics.get_counter("c") == 1
        assert metrics.snapshot()["histograms"]["h"]["counts"] != [999] + [
            0
        ] * len(DEFAULT_TIME_BUCKETS)
