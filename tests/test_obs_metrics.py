"""Metrics registry tests: gating, counters, gauges, histograms,
edge cases (bucket boundaries, negative increments, reset-after-
snapshot), snapshot merging (the fleet-aggregation primitive),
histogram quantiles and the Prometheus text export."""

import pytest

from repro.obs import (
    CATALOG,
    DEFAULT_TIME_BUCKETS,
    histogram_quantile,
    metrics,
    session,
    to_prometheus_text,
)
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


def test_mutators_are_noops_while_disabled():
    metrics.inc("ghost.counter", 5)
    metrics.set_gauge("ghost.gauge", 1.0)
    metrics.observe("ghost.hist", 0.01)
    snap = metrics.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
    assert metrics.get_counter("ghost.counter") == 0


def test_counters_accumulate_inside_session():
    with session() as recorder:
        metrics.inc("ric.samples.generated", 100)
        metrics.inc("ric.samples.generated", 50)
        metrics.inc("coverage.resyncs")
        assert metrics.get_counter("ric.samples.generated") == 150
    assert recorder.metrics["counters"] == {
        "ric.samples.generated": 150,
        "coverage.resyncs": 1,
    }
    # Session close reset the registry for the next run.
    assert metrics.snapshot()["counters"] == {}


def test_gauges_last_write_wins():
    with session() as recorder:
        metrics.set_gauge("pool.coverage_entries", 10)
        metrics.set_gauge("pool.coverage_entries", 42)
    assert recorder.metrics["gauges"] == {"pool.coverage_entries": 42}


def test_histogram_buckets_fixed_at_first_observation():
    with session() as recorder:
        metrics.observe("t", 0.05, buckets=(0.1, 1.0))
        # Later bucket hints are ignored: the edges stay fixed.
        metrics.observe("t", 0.5, buckets=(99.0,))
        metrics.observe("t", 50.0)  # overflow bucket
    hist = recorder.metrics["histograms"]["t"]
    assert hist["buckets"] == [0.1, 1.0]
    assert hist["counts"] == [1, 1, 1]
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(50.55)


def test_histogram_default_buckets_and_bad_edges():
    with session() as recorder:
        metrics.observe("d", 0.002)
        with pytest.raises(ValueError, match="ascend"):
            metrics.observe("bad", 1.0, buckets=(5.0, 1.0))
    hist = recorder.metrics["histograms"]["d"]
    assert tuple(hist["buckets"]) == DEFAULT_TIME_BUCKETS


def test_snapshot_is_a_deep_enough_copy():
    with session():
        metrics.inc("c")
        metrics.observe("h", 0.01)
        snap = metrics.snapshot()
        snap["counters"]["c"] = 999
        snap["histograms"]["h"]["counts"][0] = 999
        assert metrics.get_counter("c") == 1
        assert metrics.snapshot()["histograms"]["h"]["counts"] != [999] + [
            0
        ] * len(DEFAULT_TIME_BUCKETS)


# ---------------------------------------------------------------------
# Edge cases (bucket boundaries, gauge overwrite, reset, negative inc)
# ---------------------------------------------------------------------


def test_histogram_values_on_bucket_boundaries_are_upper_inclusive():
    # A value exactly equal to an edge counts in that edge's bucket
    # (Prometheus `le` semantics) — pinned for every edge.
    with session() as recorder:
        for edge in (1.0, 2.0, 4.0):
            metrics.observe("edges", edge, buckets=(1.0, 2.0, 4.0))
    hist = recorder.metrics["histograms"]["edges"]
    assert hist["counts"] == [1, 1, 1, 0]


def test_histogram_boundary_value_just_above_edge_moves_up():
    with session() as recorder:
        metrics.observe("edges", 1.0, buckets=(1.0, 2.0))
        metrics.observe("edges", 1.0000001, buckets=(1.0, 2.0))
    assert recorder.metrics["histograms"]["edges"]["counts"] == [1, 1, 0]


def test_gauge_overwrite_keeps_only_last_value_and_allows_regression():
    with session() as recorder:
        metrics.set_gauge("g", 100.0)
        metrics.set_gauge("g", -3.5)  # gauges may go down, unlike counters
    assert recorder.metrics["gauges"] == {"g": -3.5}


def test_reset_after_snapshot_clears_but_snapshot_survives():
    with session():
        metrics.inc("c", 2)
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 0.5, buckets=(1.0,))
        snap = metrics.snapshot()
        metrics.reset()
        assert metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        # The earlier snapshot is an independent copy.
        assert snap["counters"] == {"c": 2}
        assert snap["histograms"]["h"]["count"] == 1
        # The registry is immediately usable again.
        metrics.inc("c")
        assert metrics.get_counter("c") == 1


def test_negative_counter_increment_raises_while_active():
    # Counters are monotone; decrements are a ValueError when the
    # registry is live ...
    with session():
        metrics.inc("c", 2)
        with pytest.raises(ValueError, match="monotone"):
            metrics.inc("c", -1)
        assert metrics.get_counter("c") == 2
    # ... and stay a silent no-op while instrumentation is disabled,
    # like every other mutator.
    metrics.inc("c", -1)
    assert metrics.get_counter("c") == 0


# ---------------------------------------------------------------------
# merge_snapshot: the fleet-aggregation primitive
# ---------------------------------------------------------------------


def _snap(counters=None, gauges=None, histograms=None):
    return {
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


def _hist(counts, buckets=(0.1, 1.0), total=None):
    return {
        "buckets": list(buckets),
        "counts": list(counts),
        "count": sum(counts),
        "sum": total if total is not None else float(sum(counts)),
    }


def test_merge_snapshot_sums_counters_and_works_with_gate_off():
    # merge_snapshot is deliberately ungated: the router merges scraped
    # replica snapshots into a private registry regardless of whether
    # its own process has an obs session open.
    registry = MetricsRegistry()
    registry.merge_snapshot(_snap(counters={"a": 2, "b": 1}))
    registry.merge_snapshot(_snap(counters={"a": 3}))
    assert registry.snapshot()["counters"] == {"a": 5, "b": 1}


def test_merge_snapshot_gauges_label_per_source_and_never_sum():
    registry = MetricsRegistry()
    registry.merge_snapshot(_snap(gauges={"shards.active": 2}), source="r0")
    registry.merge_snapshot(_snap(gauges={"shards.active": 3}), source="r1")
    # An unlabelled merge (the local layer) is last-write-wins.
    registry.merge_snapshot(_snap(gauges={"local.gauge": 1.0}))
    registry.merge_snapshot(_snap(gauges={"local.gauge": 7.0}))
    gauges = registry.snapshot()["gauges"]
    assert gauges['shards.active{replica="r0"}'] == 2
    assert gauges['shards.active{replica="r1"}'] == 3
    assert "shards.active" not in gauges  # never summed into one value
    assert gauges["local.gauge"] == 7.0


def test_merge_snapshot_histograms_merge_bucket_wise():
    registry = MetricsRegistry()
    registry.merge_snapshot(
        _snap(histograms={"h": _hist([1, 0, 2], total=5.0)})
    )
    registry.merge_snapshot(
        _snap(histograms={"h": _hist([0, 3, 1], total=2.5)})
    )
    hist = registry.snapshot()["histograms"]["h"]
    assert hist["counts"] == [1, 3, 3]
    assert hist["count"] == 7
    assert hist["sum"] == pytest.approx(7.5)
    assert hist["buckets"] == [0.1, 1.0]


def test_merge_snapshot_mismatched_buckets_fail_loudly():
    registry = MetricsRegistry()
    registry.merge_snapshot(_snap(histograms={"h": _hist([1, 0, 0])}))
    with pytest.raises(ValueError, match="bucket"):
        registry.merge_snapshot(
            _snap(histograms={"h": _hist([1, 0, 0], buckets=(0.5, 2.0))})
        )
    with pytest.raises(ValueError, match="counts"):
        registry.merge_snapshot(
            _snap(histograms={"h": _hist([1, 0])})  # counts/edges mismatch
        )
    # Rejected snapshots leave the registry untouched.
    assert registry.snapshot()["histograms"]["h"]["count"] == 1


def test_merge_snapshot_rejects_negative_counters_before_mutating():
    registry = MetricsRegistry()
    registry.merge_snapshot(_snap(counters={"good": 1}))
    with pytest.raises(ValueError, match="negative"):
        registry.merge_snapshot(_snap(counters={"good": 2, "evil": -1}))
    # Validation happens before any mutation: "good" did not absorb the 2.
    assert registry.snapshot()["counters"] == {"good": 1}


def test_histogram_quantile_interpolates_and_clamps():
    hist = _hist([2, 6, 2], buckets=(1.0, 2.0))
    assert histogram_quantile(hist, 0.0) == pytest.approx(0.0)
    # Median: 5th of 10 observations sits mid-bucket (1.0, 2.0].
    assert 1.0 < histogram_quantile(hist, 0.5) < 2.0
    # Quantiles landing in the overflow bucket clamp to the last edge.
    assert histogram_quantile(hist, 0.99) == pytest.approx(2.0)
    assert histogram_quantile({"buckets": [1.0], "counts": [0, 0],
                               "count": 0, "sum": 0.0}, 0.5) == 0.0


# ---------------------------------------------------------------------
# Prometheus text export
# ---------------------------------------------------------------------


def test_prometheus_export_counters_gauges_histograms():
    with session():
        metrics.inc("ric.samples.generated", 100)
        metrics.set_gauge("pool.bytes", 2048)
        metrics.observe("pool.reach.histogram", 1, buckets=(1, 2, 4))
        metrics.observe("pool.reach.histogram", 3, buckets=(1, 2, 4))
        metrics.observe("pool.reach.histogram", 9, buckets=(1, 2, 4))
        text = to_prometheus_text(metrics.snapshot())
    lines = text.splitlines()
    assert "ric_samples_generated_total 100" in lines
    assert "# TYPE ric_samples_generated_total counter" in lines
    assert "pool_bytes 2048" in lines
    assert "# TYPE pool_bytes gauge" in lines
    # Cumulative buckets: le="1" holds 1, le="2" still 1, le="4" 2,
    # +Inf the full count.
    assert 'pool_reach_histogram_bucket{le="1"} 1' in lines
    assert 'pool_reach_histogram_bucket{le="2"} 1' in lines
    assert 'pool_reach_histogram_bucket{le="4"} 2' in lines
    assert 'pool_reach_histogram_bucket{le="+Inf"} 3' in lines
    assert "pool_reach_histogram_sum 13" in lines
    assert "pool_reach_histogram_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_export_renders_labelled_gauges_once_per_family():
    snap = _snap(
        gauges={
            'serving.shards.active{replica="r0"}': 2,
            'serving.shards.active{replica="r1"}': 3,
        }
    )
    text = to_prometheus_text(snap)
    lines = text.splitlines()
    assert 'serving_shards_active{replica="r0"} 2' in lines
    assert 'serving_shards_active{replica="r1"} 3' in lines
    # One TYPE header for the family, not one per labelled sample.
    assert (
        sum(1 for l in lines if l == "# TYPE serving_shards_active gauge")
        == 1
    )


def test_prometheus_export_help_text_comes_from_catalog():
    snap = {"counters": {"ric.samples.generated": 7},
            "gauges": {}, "histograms": {}}
    text = to_prometheus_text(snap)
    assert (
        f"# HELP ric_samples_generated_total "
        f"{CATALOG['ric.samples.generated']}" in text
    )
    # Uncatalogued names export without a HELP line but still render.
    text = to_prometheus_text(
        {"counters": {"adhoc.name": 1}, "gauges": {}, "histograms": {}}
    )
    assert "# HELP" not in text
    assert "adhoc_name_total 1" in text


def test_prometheus_export_empty_snapshot_is_empty_string():
    assert to_prometheus_text(
        {"counters": {}, "gauges": {}, "histograms": {}}
    ) == ""
