"""Clustering coefficient and reciprocity tests."""

import pytest

from repro.graph.analysis import clustering_coefficient, reciprocity
from repro.graph.builders import from_edge_list, from_undirected_edge_list
from repro.graph.digraph import DiGraph
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_graph


def test_clustering_triangle_is_one():
    g = from_undirected_edge_list(3, [(0, 1), (1, 2), (0, 2)])
    assert clustering_coefficient(g) == pytest.approx(1.0)
    assert clustering_coefficient(g, node=0) == pytest.approx(1.0)


def test_clustering_star_is_zero():
    g = from_undirected_edge_list(4, [(0, 1), (0, 2), (0, 3)])
    assert clustering_coefficient(g, node=0) == 0.0
    assert clustering_coefficient(g) == 0.0


def test_clustering_path_middle_node():
    g = from_undirected_edge_list(3, [(0, 1), (1, 2)])
    assert clustering_coefficient(g, node=1) == 0.0


def test_clustering_counts_direction_blind():
    # Directed triangle: symmetrised it is a full triangle.
    g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
    assert clustering_coefficient(g) == pytest.approx(1.0)


def test_clustering_empty_graph():
    assert clustering_coefficient(DiGraph(0)) == 0.0
    assert clustering_coefficient(DiGraph(3)) == 0.0


def test_social_generators_cluster_more_than_er():
    social = barabasi_albert_graph(150, 4, directed=False, seed=1)
    random_graph = erdos_renyi_graph(150, 8 / 149, directed=False, seed=1)
    assert clustering_coefficient(social) > clustering_coefficient(random_graph)


def test_reciprocity_extremes():
    assert reciprocity(DiGraph(2)) == 0.0
    g = from_undirected_edge_list(3, [(0, 1), (1, 2)])
    assert reciprocity(g) == 1.0
    g2 = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0)])
    assert reciprocity(g2) == 0.0


def test_reciprocity_partial():
    g = from_edge_list(3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)])
    assert reciprocity(g) == pytest.approx(2 / 3)


def test_undirected_stand_ins_fully_reciprocal():
    from repro.datasets.registry import load_dataset

    ds = load_dataset("facebook", scale=0.08, seed=2, weighted_cascade=False)
    assert reciprocity(ds.graph) == 1.0
