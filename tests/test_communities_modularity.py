"""Modularity computation tests."""

import pytest

from repro.communities.modularity import modularity, partition_from_blocks
from repro.errors import CommunityError
from repro.graph.builders import from_undirected_edge_list
from repro.graph.digraph import DiGraph


def two_cliques_graph():
    """Two triangles joined by one bridge edge (undirected)."""
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    return from_undirected_edge_list(6, edges)


def test_partition_from_blocks_full_assignment():
    assignment = partition_from_blocks([[0, 1], [3]], 5)
    assert assignment[0] == assignment[1] == 0
    assert assignment[3] == 1
    # Uncovered nodes get fresh singleton labels.
    assert assignment[2] != assignment[4]
    assert assignment[2] not in (0, 1) or assignment[4] not in (0, 1)


def test_partition_from_blocks_rejects_overlap_and_range():
    with pytest.raises(CommunityError):
        partition_from_blocks([[0, 1], [1]], 3)
    with pytest.raises(CommunityError):
        partition_from_blocks([[5]], 3)


def test_modularity_good_partition_positive():
    g = two_cliques_graph()
    good = partition_from_blocks([[0, 1, 2], [3, 4, 5]], 6)
    assert modularity(g, good) > 0.3


def test_modularity_good_beats_bad():
    g = two_cliques_graph()
    good = partition_from_blocks([[0, 1, 2], [3, 4, 5]], 6)
    bad = partition_from_blocks([[0, 3], [1, 4], [2, 5]], 6)
    assert modularity(g, good) > modularity(g, bad)


def test_modularity_single_block_is_zero():
    g = two_cliques_graph()
    whole = [0] * 6
    assert modularity(g, whole) == pytest.approx(0.0)


def test_modularity_empty_graph_zero():
    g = DiGraph(4)
    assert modularity(g, [0, 0, 1, 1]) == 0.0


def test_modularity_wrong_length_raises():
    g = two_cliques_graph()
    with pytest.raises(CommunityError):
        modularity(g, [0, 0, 0])


def test_modularity_bounds():
    g = two_cliques_graph()
    for assignment in ([0] * 6, [0, 0, 0, 1, 1, 1], list(range(6))):
        q = modularity(g, assignment)
        assert -1.0 <= q <= 1.0
