"""LT-model extension tests: live-edge equivalence and LT-mode RIC.

The paper notes its solution "can be easily extended to the Linear
Threshold model" (Section II-A); these tests validate our concrete
extension: the triggering-set live-edge view of LT and the LT-mode RIC
sampler whose estimate matches forward LT simulation.
"""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.framework import solve_imc
from repro.core.maf import MAF
from repro.core.ubg import UBG
from repro.diffusion.linear_threshold import lt_live_edge_graph, simulate_lt
from repro.diffusion.simulator import benefit_of_active_set
from repro.errors import GraphError, SamplingError
from repro.graph.analysis import forward_reachable
from repro.graph.builders import from_edge_list
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.rng import make_rng
from repro.sampling.ric import RICSampler


@pytest.fixture
def lt_graph():
    """Weighted-cascade graph: valid LT weights by construction."""
    g = from_edge_list(
        5, [(0, 2), (1, 2), (2, 3), (0, 3), (3, 4)]
    )
    return assign_weighted_cascade(g)


# ------------------------------------------------------ live-edge view


def test_lt_live_edge_at_most_one_in_edge(lt_graph):
    for s in range(30):
        live = lt_live_edge_graph(lt_graph, seed=s)
        for v in live.nodes():
            assert live.in_degree(v) <= 1


def test_lt_live_edge_rejects_overweight():
    g = from_edge_list(3, [(0, 2, 0.7), (1, 2, 0.7)])
    with pytest.raises(GraphError):
        lt_live_edge_graph(g, seed=1)


def test_lt_live_edge_trigger_distribution():
    g = from_edge_list(3, [(0, 2, 0.3), (1, 2, 0.5)])
    rng = make_rng(9)
    counts = {0: 0, 1: 0, None: 0}
    trials = 30_000
    for _ in range(trials):
        live = lt_live_edge_graph(g, seed=rng)
        sources = live.in_neighbors(2)
        counts[sources[0] if sources else None] += 1
    assert counts[0] / trials == pytest.approx(0.3, abs=0.015)
    assert counts[1] / trials == pytest.approx(0.5, abs=0.015)
    assert counts[None] / trials == pytest.approx(0.2, abs=0.015)


def test_lt_live_edge_equivalence_with_forward_simulation(lt_graph):
    """Pr[v activated] matches between forward LT and live-edge LT."""
    rng_a, rng_b = make_rng(1), make_rng(2)
    trials = 20_000
    seeds = [0]
    target = 4
    forward_hits = sum(
        target in simulate_lt(lt_graph, seeds, seed=rng_a)
        for _ in range(trials)
    )
    live_hits = sum(
        target in forward_reachable(lt_live_edge_graph(lt_graph, seed=rng_b), seeds)
        for _ in range(trials)
    )
    assert forward_hits / trials == pytest.approx(
        live_hits / trials, abs=0.02
    )


# -------------------------------------------------------- LT-mode RIC


def test_ric_lt_mode_validates_model(lt_graph):
    communities = CommunityStructure(
        [Community(members=(3, 4), threshold=1, benefit=1.0)]
    )
    with pytest.raises(SamplingError):
        RICSampler(lt_graph, communities, model="sir")


def test_ric_lt_mode_rejects_overweight_node():
    g = from_edge_list(3, [(0, 2, 0.7), (1, 2, 0.7)])
    communities = CommunityStructure(
        [Community(members=(2,), threshold=1, benefit=1.0)]
    )
    sampler = RICSampler(g, communities, seed=1, model="lt")
    with pytest.raises(SamplingError):
        sampler.sample()


def test_ric_lt_unbiasedness_against_forward_lt(lt_graph):
    """b·E[X_g(S)] under LT-mode RIC matches forward LT Monte Carlo."""
    communities = CommunityStructure(
        [Community(members=(2, 3), threshold=2, benefit=1.0)]
    )
    sampler = RICSampler(lt_graph, communities, seed=3, model="lt")
    trials = 25_000
    for seeds in ([0], [0, 1]):
        hits = sum(
            sampler.sample().is_influenced_by(seeds) for _ in range(trials)
        )
        ric_estimate = communities.total_benefit * hits / trials
        rng = make_rng(11)
        forward = sum(
            benefit_of_active_set(
                simulate_lt(lt_graph, seeds, seed=rng), communities
            )
            for _ in range(trials)
        ) / trials
        assert ric_estimate == pytest.approx(forward, abs=0.02), seeds


def test_ric_lt_reach_sets_are_paths(lt_graph):
    """With one trigger per node, each reach set is a simple backward
    path (plus branching only where multiple nodes share a trigger)."""
    communities = CommunityStructure(
        [Community(members=(4,), threshold=1, benefit=1.0)]
    )
    sampler = RICSampler(lt_graph, communities, seed=4, model="lt")
    for _ in range(50):
        sample = sampler.sample()
        (reach,) = sample.reach_sets
        # Reach set of a single member under LT is a chain: its size is
        # bounded by the longest backward path (4 here).
        assert 1 <= len(reach) <= 5


def test_solve_imc_lt_model_end_to_end():
    graph, blocks = planted_partition_graph(
        [5] * 4, p_in=0.6, p_out=0.05, directed=True, seed=21
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [Community(members=tuple(b), threshold=2, benefit=float(len(b))) for b in blocks]
    )
    result = solve_imc(
        graph,
        communities,
        k=4,
        solver=UBG(),
        seed=22,
        max_samples=3000,
        model="lt",
    )
    assert result.selection.seeds
    # LT spreads less than IC (single trigger), but seeds still earn
    # positive benefit via their own membership.
    assert result.selection.objective > 0


def test_solve_imc_pool_model_wins_over_argument():
    """A supplied pool's model overrides the model argument."""
    graph, blocks = planted_partition_graph(
        [4] * 3, p_in=0.7, p_out=0.05, directed=True, seed=31
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [Community(members=tuple(b), threshold=1, benefit=1.0) for b in blocks]
    )
    from repro.sampling.pool import RICSamplePool

    pool = RICSamplePool(RICSampler(graph, communities, seed=32, model="lt"))
    result = solve_imc(
        graph,
        communities,
        k=2,
        solver=MAF(seed=1),
        seed=33,
        max_samples=2000,
        pool=pool,
        model="ic",  # ignored: the pool is LT
    )
    assert pool.sampler.model == "lt"
    assert result.selection.seeds
