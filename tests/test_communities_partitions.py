"""Random partition and threshold/benefit policy tests."""

import pytest

from repro.communities.random_partition import random_partition
from repro.communities.thresholds import (
    apply_size_cap,
    build_structure,
    constant_thresholds,
    fractional_thresholds,
    population_benefits,
    unit_benefits,
)
from repro.errors import CommunityError


# ------------------------------------------------------ random partition


def test_random_partition_is_partition():
    blocks = random_partition(20, 5, seed=1)
    flat = sorted(v for b in blocks for v in b)
    assert flat == list(range(20))
    assert len(blocks) == 5


def test_random_partition_no_empty_blocks():
    blocks = random_partition(10, 10, seed=2)
    assert all(len(b) == 1 for b in blocks)
    blocks = random_partition(50, 7, seed=3)
    assert all(len(b) >= 1 for b in blocks)


def test_random_partition_deterministic():
    assert random_partition(30, 4, seed=9) == random_partition(30, 4, seed=9)


def test_random_partition_validation():
    with pytest.raises(CommunityError):
        random_partition(5, 6)
    with pytest.raises(CommunityError):
        random_partition(5, 0)


# ------------------------------------------------------------- size cap


def test_apply_size_cap_splits_large_blocks():
    blocks = [list(range(20))]
    capped = apply_size_cap(blocks, 8)
    assert len(capped) == 3  # ceil(20/8)
    assert all(len(b) <= 8 for b in capped)
    assert sorted(v for b in capped for v in b) == list(range(20))


def test_apply_size_cap_balances_pieces():
    capped = apply_size_cap([list(range(20))], 8)
    sizes = sorted(len(b) for b in capped)
    assert max(sizes) - min(sizes) <= 1


def test_apply_size_cap_keeps_small_blocks():
    blocks = [[3, 1, 2], [7, 8]]
    capped = apply_size_cap(blocks, 8)
    assert capped == [[1, 2, 3], [7, 8]]


def test_apply_size_cap_invalid():
    with pytest.raises(CommunityError):
        apply_size_cap([[0]], 0)


# ------------------------------------------------------------- policies


def test_constant_thresholds_clipped_at_size():
    policy = constant_thresholds(2)
    assert policy([1, 2, 3]) == 2
    assert policy([1]) == 1


def test_constant_thresholds_invalid():
    with pytest.raises(CommunityError):
        constant_thresholds(0)


def test_fractional_thresholds_paper_setting():
    policy = fractional_thresholds(0.5)
    assert policy(list(range(8))) == 4
    assert policy([1]) == 1  # never below 1
    assert policy(list(range(3))) == 2  # round(1.5) banker's -> 2


def test_fractional_thresholds_full():
    policy = fractional_thresholds(1.0)
    assert policy(list(range(5))) == 5


def test_fractional_thresholds_invalid():
    for bad in (0.0, 1.5, -0.1):
        with pytest.raises(CommunityError):
            fractional_thresholds(bad)


def test_population_and_unit_benefits():
    assert population_benefits()([1, 2, 3]) == 3.0
    assert population_benefits(2.0)([1, 2]) == 4.0
    assert unit_benefits()([1, 2, 3]) == 1.0
    with pytest.raises(CommunityError):
        population_benefits(0.0)


# ------------------------------------------------------- build_structure


def test_build_structure_defaults_match_paper():
    blocks = [list(range(16)), list(range(16, 20))]
    structure = build_structure(blocks)
    # 16 split into two 8s + one 4 -> r = 3
    assert structure.r == 3
    for community in structure:
        assert community.threshold == max(1, round(0.5 * community.size))
        assert community.benefit == float(community.size)


def test_build_structure_disable_cap():
    structure = build_structure([list(range(30))], size_cap=None)
    assert structure.r == 1
    assert structure[0].size == 30


def test_build_structure_bounded_thresholds():
    structure = build_structure(
        [list(range(10))], size_cap=4, threshold_policy=constant_thresholds(2)
    )
    assert all(c.threshold == 2 for c in structure)


def test_build_structure_skips_empty_blocks():
    structure = build_structure([[0, 1], []], size_cap=None)
    assert structure.r == 1
