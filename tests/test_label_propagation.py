"""Label propagation detector tests."""

import pytest

from repro.communities.label_propagation import label_propagation_communities
from repro.graph.builders import from_undirected_edge_list
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition_graph


def test_empty_graph():
    assert label_propagation_communities(DiGraph(0)) == []


def test_isolated_nodes_stay_singletons():
    blocks = label_propagation_communities(DiGraph(3), seed=1)
    assert sorted(map(tuple, blocks)) == [(0,), (1,), (2,)]


def test_result_is_partition():
    graph, _ = planted_partition_graph(
        [6] * 5, p_in=0.7, p_out=0.02, directed=False, seed=2
    )
    blocks = label_propagation_communities(graph, seed=2)
    flat = sorted(v for b in blocks for v in b)
    assert flat == list(range(graph.num_nodes))


def test_two_cliques_separated():
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    g = from_undirected_edge_list(6, edges)
    blocks = label_propagation_communities(g, seed=3)
    as_sets = {frozenset(b) for b in blocks}
    assert frozenset({0, 1, 2}) in as_sets
    assert frozenset({3, 4, 5}) in as_sets


def test_recovers_most_planted_blocks():
    graph, truth = planted_partition_graph(
        [10] * 4, p_in=0.8, p_out=0.01, directed=False, seed=4
    )
    blocks = label_propagation_communities(graph, seed=4)
    truth_sets = {frozenset(b) for b in truth}
    found_sets = {frozenset(b) for b in blocks}
    assert len(truth_sets & found_sets) >= 3


def test_deterministic_given_seed():
    graph, _ = planted_partition_graph(
        [5] * 4, p_in=0.6, p_out=0.05, directed=False, seed=5
    )
    a = label_propagation_communities(graph, seed=42)
    b = label_propagation_communities(graph, seed=42)
    assert a == b


def test_directed_edges_treated_symmetrically():
    g = DiGraph(4)
    g.add_edge(0, 1, 1.0)  # only one direction present
    g.add_edge(1, 0, 1.0)
    g.add_edge(2, 3, 1.0)
    blocks = label_propagation_communities(g, seed=6)
    as_sets = {frozenset(b) for b in blocks}
    assert frozenset({0, 1}) in as_sets
    assert frozenset({2, 3}) in as_sets


def test_usable_with_build_structure():
    from repro.communities.thresholds import build_structure

    graph, _ = planted_partition_graph(
        [8] * 3, p_in=0.7, p_out=0.02, directed=False, seed=7
    )
    blocks = label_propagation_communities(graph, seed=7)
    structure = build_structure(blocks, size_cap=8)
    structure.validate_against(graph.num_nodes)
    assert structure.r >= 3
