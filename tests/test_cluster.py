"""Cluster tests: rendezvous routing, breakers, failover, supervision.

Unit layers (rendezvous order, :class:`CircuitBreaker` on a fake clock,
:class:`RouterApp` against in-process replicas) run entirely without
subprocesses. The tier-1 smoke spins up a real 2-replica cluster on
ephemeral ports — spawn, health-check, route, drain — with a tiny
synthetic instance injected so no dataset building happens. The
kill-and-failover floor (one replica SIGKILLed under concurrent load,
zero client-visible errors, byte-identical answers, restart within the
backoff bound) lives under ``-m "cluster and slow"``.
"""

from __future__ import annotations

import http.server
import json
import threading
import time

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.errors import ClusterError, ServingError
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.serving import (
    CircuitBreaker,
    ClusterConfig,
    LoadGenerator,
    LoadPhase,
    ReplicaEndpoint,
    RouterApp,
    ScenarioSpec,
    ServingCluster,
    ShardApp,
    ShardStore,
    assign_replica,
    rendezvous_order,
    start_http_server,
)
from repro.serving.router import FORWARD_SITE
from repro.serving.server import GracefulHTTPServer
from repro.utils.faults import Fault, FaultInjector
from repro.utils.retry import RetryPolicy

pytestmark = [pytest.mark.serve, pytest.mark.cluster]


def _instance(seed: int = 17):
    graph, blocks = planted_partition_graph(
        [5] * 6, p_in=0.6, p_out=0.03, directed=True, seed=seed
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph.freeze(), communities


def _spec(name: str = "planted", **kwargs) -> ScenarioSpec:
    defaults = dict(dataset="facebook", seed=99, pool_size=60)
    defaults.update(kwargs)
    return ScenarioSpec(name=name, **defaults)


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ----------------------------------------------------------------------
# Rendezvous hashing
# ----------------------------------------------------------------------


class TestRendezvous:
    def test_order_is_a_permutation_and_deterministic(self):
        ids = ["r0", "r1", "r2", "r3"]
        order = rendezvous_order("alpha", ids)
        assert sorted(order) == sorted(ids)
        assert rendezvous_order("alpha", ids) == order
        # Input order is irrelevant: weights decide, not position.
        assert rendezvous_order("alpha", list(reversed(ids))) == order

    def test_different_keys_spread_across_replicas(self):
        ids = [f"r{i}" for i in range(4)]
        homes = {
            assign_replica(f"scenario-{i}", ids) for i in range(64)
        }
        assert len(homes) > 1  # not everything on one replica

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ClusterError, match="unique"):
            rendezvous_order("alpha", ["r0", "r0"])

    def test_assign_needs_at_least_one_replica(self):
        with pytest.raises(ClusterError, match="zero replicas"):
            assign_replica("alpha", [])


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=1.0)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.allow()  # still closed below the threshold
        assert breaker.record_failure() is True  # the opening transition
        assert breaker.state() == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False  # streak restarted
        assert breaker.state() == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 5.0
        assert breaker.state() == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller refused
        breaker.record_success()
        assert breaker.state() == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_for_a_fresh_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        assert breaker.record_failure() is True  # reopening counts
        assert breaker.state() == "open"
        clock.now = 9.0  # cooldown restarted at t=5
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ClusterError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ClusterError, match="reset_seconds"):
            CircuitBreaker(reset_seconds=-1.0)


# ----------------------------------------------------------------------
# Router (in-process replicas; no subprocesses)
# ----------------------------------------------------------------------


def _serve_replica(spec, instance):
    """One in-process ShardApp server; returns (app, server, port)."""
    store = ShardStore(
        {spec.name: spec},
        instances={spec.name: instance},
        workers=1,
        round_size=spec.pool_size,
    )
    app = ShardApp(store)
    server = start_http_server(app)
    return app, server, server.server_address[1]


class TestRouterApp:
    def test_all_replicas_dead_is_503_with_detail(self):
        dead = ReplicaEndpoint("r0", "127.0.0.1", _free_port(), True)
        router = RouterApp(lambda: [dead], breaker_threshold=3)
        status, body = router.route_solve(
            {"scenario": "planted", "budget": 3}
        )
        assert status == 503
        assert "r0" in json.dumps(json.loads(body))
        assert router.counters["failed"] == 1

    def test_missing_scenario_rejected_before_forwarding(self):
        router = RouterApp(lambda: [])
        with pytest.raises(ServingError, match="scenario"):
            router.route_solve({"budget": 3})

    def test_routes_to_live_replica_and_passes_bytes_through(self):
        spec = _spec()
        app, server, port = _serve_replica(spec, _instance())
        try:
            endpoint = ReplicaEndpoint("r0", "127.0.0.1", port, True)
            router = RouterApp(lambda: [endpoint])
            status, body = router.route_solve(
                {"scenario": "planted", "budget": 3}
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["num_samples"] == spec.pool_size
            assert router.counters == {
                "routed": 1,
                "failovers": 0,
                "failed": 0,
            }
        finally:
            server.shutdown()
            server.server_close()
            app.close()

    def test_failover_to_rendezvous_successor_is_invisible(self):
        spec = _spec()
        app, server, port = _serve_replica(spec, _instance())
        try:
            order = rendezvous_order("planted", ["r0", "r1"])
            # The key's home replica is dead; its successor is live.
            endpoints = [
                ReplicaEndpoint(order[0], "127.0.0.1", _free_port(), True),
                ReplicaEndpoint(order[1], "127.0.0.1", port, True),
            ]
            router = RouterApp(lambda: endpoints)
            status, body = router.route_solve(
                {"scenario": "planted", "budget": 3}
            )
            assert status == 200
            assert json.loads(body)["num_samples"] == spec.pool_size
            assert router.counters["failovers"] == 1
        finally:
            server.shutdown()
            server.server_close()
            app.close()

    def test_consecutive_failures_open_the_breaker(self):
        dead = ReplicaEndpoint("r0", "127.0.0.1", _free_port(), True)
        router = RouterApp(
            lambda: [dead], breaker_threshold=2, breaker_reset_seconds=60.0
        )
        for _ in range(2):
            router.route_solve({"scenario": "planted", "budget": 3})
        assert router.breaker("r0").state() == "open"
        # With the breaker open the replica is skipped during candidate
        # selection, but as the only replica it is still *tried* (the
        # all-unavailable fallback) — refusing without trying is worse.
        status, _ = router.route_solve({"scenario": "planted", "budget": 3})
        assert status == 503

    def test_unhealthy_replicas_are_skipped(self):
        spec = _spec()
        app, server, port = _serve_replica(spec, _instance())
        try:
            order = rendezvous_order("planted", ["r0", "r1"])
            endpoints = [
                # Home replica flagged unhealthy by the supervisor: the
                # router must go straight to the successor, no failover
                # attempt against the dead one.
                ReplicaEndpoint(order[0], "127.0.0.1", _free_port(), False),
                ReplicaEndpoint(order[1], "127.0.0.1", port, True),
            ]
            router = RouterApp(lambda: endpoints)
            status, _ = router.route_solve(
                {"scenario": "planted", "budget": 3}
            )
            assert status == 200
            assert router.counters["failovers"] == 0
        finally:
            server.shutdown()
            server.server_close()
            app.close()

    def test_injected_forward_latency_is_survivable(self):
        spec = _spec()
        app, server, port = _serve_replica(spec, _instance())
        try:
            endpoint = ReplicaEndpoint("r0", "127.0.0.1", port, True)
            injector = FaultInjector(
                [Fault.delay_on(FORWARD_SITE, seconds=0.2, call=0)]
            )
            router = RouterApp(lambda: [endpoint], fault_injector=injector)
            began = time.perf_counter()
            status, _ = router.route_solve(
                {"scenario": "planted", "budget": 3}
            )
            elapsed = time.perf_counter() - began
            assert status == 200
            assert elapsed >= 0.2  # the chaos delay was really injected
        finally:
            server.shutdown()
            server.server_close()
            app.close()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


class _SlowHandler(http.server.BaseHTTPRequestHandler):
    """Answers after a delay, to hold a request in flight mid-drain."""

    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:  # noqa: D102
        pass

    def do_GET(self) -> None:  # noqa: N802
        time.sleep(self.server.delay)  # type: ignore[attr-defined]
        body = b'{"ok": true}'
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class TestGracefulDrain:
    def _start(self, delay: float):
        server = GracefulHTTPServer(("127.0.0.1", 0), _SlowHandler)
        server.delay = delay  # type: ignore[attr-defined]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, server.server_address[1]

    def test_drain_finishes_in_flight_requests(self):
        server, port = self._start(delay=0.4)
        statuses = []

        def client():
            import urllib.request

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/", timeout=30
            ) as response:
                statuses.append(response.status)

        thread = threading.Thread(target=client)
        thread.start()
        for _ in range(200):  # wait until the request is in flight
            if server.in_flight() > 0:
                break
            time.sleep(0.01)
        assert server.in_flight() == 1
        drained = server.drain(timeout=10.0)
        thread.join(timeout=10)
        assert drained  # in-flight request finished before close
        assert statuses == [200]
        assert server.in_flight() == 0

    def test_drain_times_out_on_stuck_handlers(self):
        server, port = self._start(delay=3.0)

        def client():
            import contextlib
            import urllib.request

            with contextlib.suppress(Exception):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/", timeout=30
                )

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        for _ in range(200):
            if server.in_flight() > 0:
                break
            time.sleep(0.01)
        assert server.drain(timeout=0.1) is False  # handler still busy
        thread.join(timeout=10)

    def test_server_close_is_idempotent_after_drain(self):
        server, _ = self._start(delay=0.0)
        assert server.drain(timeout=5.0)
        server.server_close()  # second close must be a no-op


# ----------------------------------------------------------------------
# Tier-1 smoke: a real 2-replica cluster on ephemeral ports
# ----------------------------------------------------------------------


def _cluster_config(scenarios, instance, **overrides) -> ClusterConfig:
    defaults = dict(
        instances={name: instance for name in scenarios},
        replicas=2,
        workers=1,
        round_size=60,
        heartbeat_interval=0.2,
        heartbeat_timeout=1.0,
        restart_policy=RetryPolicy(
            max_attempts=4, base_delay=0.2, max_delay=2.0, jitter=0.0, seed=0
        ),
    )
    defaults.update(overrides)
    specs = {name: _spec(name) for name in scenarios}
    return ClusterConfig(specs, **defaults)


def test_two_replica_cluster_smoke():
    """Spawn 2 replicas, route both scenarios, verify status, drain."""
    config = _cluster_config(("alpha", "beta"), _instance())
    with ServingCluster(config) as cluster:
        host, port = cluster.router_address
        generator = LoadGenerator(host, port)
        result = generator.run_phase(
            LoadPhase(
                "smoke",
                [
                    {"scenario": "alpha", "budget": 3},
                    {"scenario": "beta", "budget": 3},
                    {"scenario": "alpha", "budget": 3},
                ],
                clients=3,
            )
        )
        golden = result.golden()  # zero errors, zero non-200s
        assert len(golden) == 2  # two distinct queries
        for body in golden.values():
            assert json.loads(body)["num_samples"] == 60
        endpoints = cluster.supervisor.endpoints()
        assert len(endpoints) == 2
        assert all(e.healthy for e in endpoints)
        assert len({e.port for e in endpoints}) == 2
        status = cluster.router_app.status()
        assert status["requests"]["routed"] == 3
        assert status["requests"]["failed"] == 0
    # Exiting the context drained the router and reaped the replicas.
    for state in cluster.supervisor._replicas.values():
        assert not state.process.is_alive()


# ----------------------------------------------------------------------
# Kill-and-failover floor (slow lane)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_replica_kill_under_load_is_client_invisible():
    """SIGKILL a replica mid-flood: zero client-visible errors, answers
    byte-identical to the fault-free phase, victim restarted within the
    policy's backoff bound."""
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.2, max_delay=2.0, jitter=0.0, seed=0
    )
    config = _cluster_config(
        ("alpha", "beta"),
        _instance(),
        replicas=3,
        restart_policy=policy,
    )
    queries = [
        {"scenario": ("alpha", "beta")[i % 2], "budget": 3 + (i % 2)}
        for i in range(40)
    ]
    with ServingCluster(config) as cluster:
        supervisor = cluster.supervisor
        host, port = cluster.router_address
        generator = LoadGenerator(host, port)
        victim = assign_replica(
            "alpha", [e.replica_id for e in supervisor.endpoints()]
        )
        clean = generator.run_phase(
            LoadPhase("clean", queries, clients=40)
        )
        killed = generator.run_phase(
            LoadPhase(
                "kill",
                queries,
                clients=40,
                chaos=lambda: supervisor.kill_replica(victim),
                chaos_after=5,
            )
        )
        assert killed.golden() == clean.golden()  # and zero errors
        # The victim must come back within the policy's schedule plus
        # replica startup; poll the supervisor's view until it does.
        bound = sum(policy.delays()) + config.startup_timeout
        deadline = time.monotonic() + bound
        while time.monotonic() < deadline:
            health = {
                e.replica_id: e.healthy for e in supervisor.endpoints()
            }
            if health.get(victim):
                break
            time.sleep(0.1)
        assert health.get(victim), supervisor.restart_log
        entries = [
            e
            for e in supervisor.restart_log
            if e["replica_id"] == victim and e["healthy_at"] is not None
        ]
        assert entries
        final = entries[-1]
        # Backoff honoured: the respawn waited at least its delay.
        assert (
            final["respawn_at"] - final["detected_at"]
            >= policy.delay_for(final["attempt"]) * 0.99
        )
        assert cluster.router_app.counters["failovers"] >= 1
