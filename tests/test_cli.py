"""CLI tests (direct main() invocation with captured stdout)."""

import pytest

from repro.cli import main


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in ("facebook", "wikivote", "epinions", "dblp", "pokec"):
        assert name in out
    assert "Stand-in" in out


def test_table1_command(capsys):
    assert main(["table1", "--scale", "0.05", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Paper nodes" in out
    assert "pokec" in out


def test_solve_command_bounded(capsys):
    code = main(
        [
            "solve",
            "--dataset",
            "facebook",
            "--scale",
            "0.1",
            "--solver",
            "MAF",
            "--k",
            "5",
            "--max-samples",
            "1500",
            "--eval-trials",
            "100",
            "--seed",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "seeds:" in out
    assert "Monte-Carlo c(S)" in out
    assert "stopped_by=" in out


def test_solve_command_lt_model(capsys):
    code = main(
        [
            "solve",
            "--dataset",
            "facebook",
            "--scale",
            "0.08",
            "--solver",
            "UBG",
            "--k",
            "4",
            "--model",
            "lt",
            "--max-samples",
            "1000",
            "--eval-trials",
            "0",
            "--seed",
            "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "pool objective" in out


def test_solve_command_skips_eval_when_zero_trials(capsys):
    main(
        [
            "solve",
            "--scale",
            "0.08",
            "--k",
            "3",
            "--solver",
            "GreedyC",
            "--max-samples",
            "800",
            "--eval-trials",
            "0",
        ]
    )
    out = capsys.readouterr().out
    assert "Monte-Carlo" not in out


def test_figure_fig8(capsys):
    code = main(
        [
            "figure",
            "fig8",
            "--scale",
            "0.08",
            "--pool-size",
            "150",
            "--eval-trials",
            "40",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "fractional" in out and "bounded" in out


def test_figure_fig7(capsys):
    code = main(
        [
            "figure",
            "fig7",
            "--dataset",
            "epinions",
            "--scale",
            "0.06",
            "--pool-size",
            "100",
            "--eval-trials",
            "30",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "MAF" in out and "UBG" in out


def test_unknown_subcommand_exits():
    with pytest.raises(SystemExit):
        main(["teleport"])


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])


def test_bad_dataset_choice_exits():
    with pytest.raises(SystemExit):
        main(["solve", "--dataset", "orkut"])


def test_solve_command_with_report(capsys):
    code = main(
        [
            "solve",
            "--scale",
            "0.08",
            "--k",
            "4",
            "--solver",
            "MAF",
            "--max-samples",
            "800",
            "--eval-trials",
            "60",
            "--report",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Pr[tip]" in out
    assert "total" in out


def test_compare_command_single_trial(capsys):
    code = main(
        [
            "compare",
            "--scale",
            "0.08",
            "--algorithms",
            "MAF,KS",
            "--k",
            "3,6",
            "--pool-size",
            "120",
            "--eval-trials",
            "40",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "MAF" in out and "KS" in out
    assert "runtime (s)" in out
    assert out.count("MAF") >= 2  # one row per k


def test_compare_command_repeated_trials(capsys):
    code = main(
        [
            "compare",
            "--scale",
            "0.08",
            "--algorithms",
            "MAF",
            "--k",
            "4",
            "--pool-size",
            "100",
            "--eval-trials",
            "30",
            "--trials",
            "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "±" in out
    assert "3 trials" in out
