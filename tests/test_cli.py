"""CLI tests (direct main() invocation with captured stdout)."""

import pytest

from repro.cli import main


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in ("facebook", "wikivote", "epinions", "dblp", "pokec"):
        assert name in out
    assert "Stand-in" in out


def test_table1_command(capsys):
    assert main(["table1", "--scale", "0.05", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Paper nodes" in out
    assert "pokec" in out


def test_solve_command_bounded(capsys):
    code = main(
        [
            "solve",
            "--dataset",
            "facebook",
            "--scale",
            "0.1",
            "--solver",
            "MAF",
            "--k",
            "5",
            "--max-samples",
            "1500",
            "--eval-trials",
            "100",
            "--seed",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "seeds:" in out
    assert "Monte-Carlo c(S)" in out
    assert "stopped_by=" in out


def test_solve_command_lt_model(capsys):
    code = main(
        [
            "solve",
            "--dataset",
            "facebook",
            "--scale",
            "0.08",
            "--solver",
            "UBG",
            "--k",
            "4",
            "--model",
            "lt",
            "--max-samples",
            "1000",
            "--eval-trials",
            "0",
            "--seed",
            "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "pool objective" in out


def test_solve_command_skips_eval_when_zero_trials(capsys):
    main(
        [
            "solve",
            "--scale",
            "0.08",
            "--k",
            "3",
            "--solver",
            "GreedyC",
            "--max-samples",
            "800",
            "--eval-trials",
            "0",
        ]
    )
    out = capsys.readouterr().out
    assert "Monte-Carlo" not in out


def test_figure_fig8(capsys):
    code = main(
        [
            "figure",
            "fig8",
            "--scale",
            "0.08",
            "--pool-size",
            "150",
            "--eval-trials",
            "40",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "fractional" in out and "bounded" in out


def test_figure_fig7(capsys):
    code = main(
        [
            "figure",
            "fig7",
            "--dataset",
            "epinions",
            "--scale",
            "0.06",
            "--pool-size",
            "100",
            "--eval-trials",
            "30",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "MAF" in out and "UBG" in out


def test_unknown_subcommand_exits():
    with pytest.raises(SystemExit):
        main(["teleport"])


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])


def test_bad_dataset_choice_exits():
    with pytest.raises(SystemExit):
        main(["solve", "--dataset", "orkut"])


def test_solve_command_with_report(capsys):
    code = main(
        [
            "solve",
            "--scale",
            "0.08",
            "--k",
            "4",
            "--solver",
            "MAF",
            "--max-samples",
            "800",
            "--eval-trials",
            "60",
            "--report",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Pr[tip]" in out
    assert "total" in out


def test_compare_command_single_trial(capsys):
    code = main(
        [
            "compare",
            "--scale",
            "0.08",
            "--algorithms",
            "MAF,KS",
            "--k",
            "3,6",
            "--pool-size",
            "120",
            "--eval-trials",
            "40",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "MAF" in out and "KS" in out
    assert "runtime (s)" in out
    assert out.count("MAF") >= 2  # one row per k


def test_compare_command_repeated_trials(capsys):
    code = main(
        [
            "compare",
            "--scale",
            "0.08",
            "--algorithms",
            "MAF",
            "--k",
            "4",
            "--pool-size",
            "100",
            "--eval-trials",
            "30",
            "--trials",
            "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "±" in out
    assert "3 trials" in out


def test_solve_command_flat_engine_and_freeze_match_default(capsys):
    base_args = [
        "solve",
        "--dataset",
        "facebook",
        "--scale",
        "0.08",
        "--solver",
        "UBG",
        "--k",
        "4",
        "--max-samples",
        "800",
        "--eval-trials",
        "0",
        "--seed",
        "4",
    ]
    assert main(base_args) == 0
    default_out = capsys.readouterr().out
    assert (
        main(base_args + ["--coverage-engine", "flat", "--freeze"]) == 0
    )
    fast_out = capsys.readouterr().out

    # Same seeds and objective: the kernels change speed, not results.
    # The "sampling:" line reports wall-clock throughput, which differs
    # between any two runs; everything else must match byte-for-byte.
    def _without_timing(text):
        return [
            line for line in text.splitlines()
            if not line.startswith("sampling:")
        ]

    assert _without_timing(default_out) == _without_timing(fast_out)


def test_bench_command_records_trajectory(capsys, tmp_path):
    artifact = tmp_path / "BENCH_kernels.json"
    args = [
        "bench",
        "--samples",
        "120",
        "--k",
        "3",
        "--record",
        "--output",
        str(artifact),
        # The test tree is routinely dirty (development checkout); the
        # dirty-tree refusal has its own test in test_obs_integration.
        "--allow-dirty",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "combined:" in out and "vs reference" in out
    assert "recorded entry 1" in out

    from repro.experiments.kernel_bench import SCHEMA, load_trajectory

    data = load_trajectory(str(artifact))
    assert data["schema"] == SCHEMA
    (entry,) = data["trajectory"]
    assert entry["samples"] == 120
    assert entry["recorded_at"].endswith("Z")
    assert set(entry["marginals_per_sec"]) == {"reference", "bitset", "flat"}
    # A second run appends rather than overwrites.
    assert main(args) == 0
    assert "recorded entry 2" in capsys.readouterr().out
    assert len(load_trajectory(str(artifact))["trajectory"]) == 2
