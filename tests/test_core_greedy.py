"""Greedy primitive tests: eager ĉ greedy and CELF ν greedy."""

import itertools

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.greedy import greedy_eager_nu, greedy_maxr, lazy_greedy_nu
from repro.errors import SolverError
from repro.graph.builders import from_edge_list
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler


def _pool_with(samples, num_nodes=10):
    graph = from_edge_list(num_nodes, [])
    members = sorted({m for s in samples for m in s.members})
    communities = CommunityStructure(
        [Community(members=tuple(members), threshold=1, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=1))
    for s in samples:
        pool.add(s)
    return pool


def test_greedy_maxr_k_zero_and_negative():
    pool = _pool_with(
        [RICSample(0, 1, (0,), (frozenset({0}),))]
    )
    assert greedy_maxr(pool, 0) == []
    with pytest.raises(SolverError):
        greedy_maxr(pool, -1)


def test_greedy_maxr_picks_best_cover():
    samples = [
        RICSample(0, 1, (0,), (frozenset({0, 7}),)),
        RICSample(0, 1, (0,), (frozenset({0, 7}),)),
        RICSample(0, 1, (0,), (frozenset({8}),)),
    ]
    pool = _pool_with(samples)
    seeds = greedy_maxr(pool, 2)
    # 7 (or 0) covers two samples; 8 the third.
    assert pool.influenced_count(seeds) == 3


def test_greedy_maxr_tie_break_uses_fractional_progress():
    """With h=2 samples no single node has positive ĉ gain; the
    fractional tie-break should still pick the node covering the most
    members instead of node 0."""
    samples = [
        RICSample(0, 2, (0, 1), (frozenset({0, 5}), frozenset({1, 6}))),
        RICSample(0, 2, (0, 1), (frozenset({0, 5}), frozenset({1, 5}))),
    ]
    pool = _pool_with(samples)
    seeds = greedy_maxr(pool, 2, tie_break_fractional=True)
    assert 5 in seeds  # 5 covers 3 member-slots, most progress
    assert pool.influenced_count(seeds) >= 1


def test_greedy_maxr_respects_candidate_restriction():
    samples = [RICSample(0, 1, (0,), (frozenset({0, 5, 6}),))]
    pool = _pool_with(samples)
    seeds = greedy_maxr(pool, 1, candidates=[6])
    assert seeds == [6]


def test_lazy_greedy_nu_equals_eager():
    """CELF must match eager greedy on the submodular ν objective."""
    samples = [
        RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 4}))),
        RICSample(0, 2, (0, 1), (frozenset({0, 5}), frozenset({1, 6}))),
        RICSample(0, 1, (0,), (frozenset({7}),)),
        RICSample(0, 2, (0, 1), (frozenset({4, 5}), frozenset({6, 7}))),
    ]
    pool = _pool_with(samples)
    for k in range(1, 6):
        lazy = lazy_greedy_nu(pool, k)
        eager = greedy_eager_nu(pool, k)
        assert pool.fractional_count(lazy) == pytest.approx(
            pool.fractional_count(eager)
        ), k


def test_lazy_greedy_nu_on_random_pools():
    """Objective equality lazy vs eager on sampled pools."""
    graph = from_edge_list(
        12,
        [(i, j, 0.4) for i in range(6) for j in range(6, 12) if (i + j) % 3],
    )
    communities = CommunityStructure(
        [
            Community(members=(6, 7, 8), threshold=2, benefit=2.0),
            Community(members=(9, 10, 11), threshold=1, benefit=1.0),
        ]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=5))
    pool.grow(150)
    for k in (1, 3, 5):
        lazy = lazy_greedy_nu(pool, k)
        eager = greedy_eager_nu(pool, k)
        assert pool.fractional_count(lazy) == pytest.approx(
            pool.fractional_count(eager)
        )


def test_greedy_nu_matches_brute_force_on_tiny_pool():
    """Greedy ν achieves >= (1-1/e) of the exhaustive optimum."""
    samples = [
        RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 5}))),
        RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 4}))),
        RICSample(0, 1, (0,), (frozenset({5, 6}),)),
    ]
    pool = _pool_with(samples)
    k = 2
    nodes = pool.touching_nodes()
    best = max(
        pool.fractional_count(combo)
        for combo in itertools.combinations(nodes, k)
    )
    achieved = pool.fractional_count(lazy_greedy_nu(pool, k))
    assert achieved >= (1 - 1 / 2.718281828) * best - 1e-9


def test_greedy_returns_fewer_when_pool_small():
    pool = _pool_with([RICSample(0, 1, (0,), (frozenset({0}),))])
    assert len(greedy_maxr(pool, 5)) <= 1
    assert len(lazy_greedy_nu(pool, 5)) <= 1


def test_lazy_greedy_validates_k():
    pool = _pool_with([RICSample(0, 1, (0,), (frozenset({0}),))])
    with pytest.raises(SolverError):
        lazy_greedy_nu(pool, -2)
    with pytest.raises(SolverError):
        greedy_eager_nu(pool, -2)
