"""Regression tests for the serving-layer concurrency sweep.

Each test pins one of the bugs found while putting a long-lived server
on top of the sampling/coverage/persistence layers:

- ``RICSamplePool.compact()`` under the repeated compact -> add ->
  compact top-up cycle (interning stays canonical, re-seals are
  idempotent, estimates are unaffected);
- coverage engines failing *loudly* when ``resync()`` races a marginal
  evaluation instead of answering from half-built state;
- ``read_jsonl`` racing a live ``JsonlSink`` writer (a partially
  flushed last line must be skipped, never mis-parsed);
- ``Deadline`` re-anchoring its monotonic expiry when pickled to a
  spawned worker process.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.bitset_engine import BitsetCoverage
from repro.core.flat_engine import FlatCoverage
from repro.core.objective import CoverageState
from repro.errors import SolverError
from repro.obs.sinks import JsonlSink, read_jsonl
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler
from repro.utils.retry import Deadline


def _make_pool(seed: int, graph, blocks) -> RICSamplePool:
    communities = CommunityStructure(
        [
            Community(members=tuple(block), threshold=2, benefit=float(len(block)))
            for block in blocks
        ]
    )
    return RICSamplePool(RICSampler(graph, communities, seed=seed))


# ----------------------------------------------------------------------
# Satellite 1: compact -> add -> compact cycle
# ----------------------------------------------------------------------


class TestCompactTopUpCycle:
    def test_estimates_match_never_compacted_pool(self, planted_instance):
        graph, blocks = planted_instance
        cycled = _make_pool(5, graph, blocks)
        plain = _make_pool(5, graph, blocks)
        for _ in range(4):
            cycled.grow(40)
            cycled.compact()
        plain.grow(160)
        seeds = sorted(plain.touching_nodes())[:4]
        assert cycled.estimate_benefit(seeds) == plain.estimate_benefit(seeds)
        assert cycled.estimate_upper_bound(seeds) == plain.estimate_upper_bound(seeds)
        for node in plain.touching_nodes():
            assert list(cycled.coverage_of(node)) == list(plain.coverage_of(node))

    def test_reach_sets_stay_canonical_across_reseals(self, planted_instance):
        graph, blocks = planted_instance
        pool = _make_pool(11, graph, blocks)
        pool.grow(60)
        pool.compact()
        pool.grow(60)  # added after the first seal: interned eagerly
        pool.compact()
        pool.grow(60)
        pool.compact()
        canonical = {}
        for sample in pool.samples:
            for reach in sample.reach_sets:
                # One object per distinct value, pool-wide: every equal
                # frozenset is the *same* object after compaction.
                assert canonical.setdefault(reach, reach) is reach

    def test_recompact_is_idempotent(self, planted_instance):
        graph, blocks = planted_instance
        pool = _make_pool(23, graph, blocks)
        pool.grow(80)
        first = pool.compact()
        again = pool.compact()
        assert again["interned_duplicates"] == 0
        assert again["reach_sets"] == first["reach_sets"]
        assert again["unique_reach_sets"] == first["unique_reach_sets"]
        assert again["coverage_entries"] == first["coverage_entries"]
        # Entries stay sealed (tuples) through a no-op re-compact.
        for node in pool.touching_nodes():
            assert type(pool.coverage_of(node)) is tuple

    def test_stats_account_for_growth_between_seals(self, planted_instance):
        graph, blocks = planted_instance
        pool = _make_pool(31, graph, blocks)
        pool.grow(50)
        pool.compact()
        pool.grow(50)
        stats = pool.compact()
        assert stats["reach_sets"] == sum(
            len(s.reach_sets) for s in pool.samples
        )
        distinct = {r for s in pool.samples for r in s.reach_sets}
        assert stats["unique_reach_sets"] == len(distinct)


# ----------------------------------------------------------------------
# Satellite 2: resync() vs marginal() must fail loudly
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "engine_factory",
    [CoverageState, BitsetCoverage, FlatCoverage],
    ids=["reference", "bitset", "flat"],
)
class TestResyncGuard:
    def test_marginals_raise_mid_resync(self, planted_pool, engine_factory):
        engine = engine_factory(planted_pool)
        node = planted_pool.touching_nodes()[0]
        engine._resyncing = True  # what a concurrent resync() sets
        try:
            with pytest.raises(SolverError, match="mid-resync"):
                engine.gain_pair(node)
            with pytest.raises(SolverError, match="mid-resync"):
                engine.estimate_benefit()
            with pytest.raises(SolverError, match="mid-resync"):
                engine.add_seed(node)
        finally:
            engine._resyncing = False
        # Loud failure, not corruption: the engine still works after.
        assert engine.gain_pair(node) is not None

    def test_reentrant_resync_raises(self, planted_pool, engine_factory):
        engine = engine_factory(planted_pool)
        engine._resyncing = True
        try:
            with pytest.raises(SolverError, match="resync"):
                engine.resync()
        finally:
            engine._resyncing = False

    def test_serialized_resync_still_works(self, planted_pool, engine_factory):
        engine = engine_factory(planted_pool)
        node = planted_pool.touching_nodes()[0]
        engine.add_seed(node)
        before = engine.influenced_count
        planted_pool.grow(25)
        engine.resync()
        assert engine._resyncing is False
        assert engine.influenced_count >= before
        assert engine._synced_samples == len(planted_pool.samples)


# ----------------------------------------------------------------------
# Satellite 3: read_jsonl racing a live JsonlSink writer
# ----------------------------------------------------------------------


class TestReadJsonlLiveTail:
    def test_unterminated_tail_skipped_even_if_prefix_parses(self, tmp_path):
        path = tmp_path / "live.jsonl"
        # The writer's record will be "22" but only "2" has been
        # flushed — the partial line *parses* (as 2), which is exactly
        # why parse-success must not be the completeness test.
        path.write_text('{"a": 1}\n2', encoding="utf-8")
        assert read_jsonl(str(path)) == [{"a": 1}]

    def test_unterminated_garbage_tail_does_not_raise(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text('{"a": 1}\n{"b": ', encoding="utf-8")
        assert read_jsonl(str(path)) == [{"a": 1}]

    def test_tail_promoted_once_newline_lands(self, tmp_path):
        path = tmp_path / "live.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"a": 1}\n{"b": 2')
            fh.flush()
            assert read_jsonl(str(path)) == [{"a": 1}]
            fh.write("2}\n")
            fh.flush()
            assert read_jsonl(str(path)) == [{"a": 1}, {"b": 22}]

    def test_live_sink_reader_sees_complete_prefix(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        with JsonlSink(str(path)) as sink:
            for i in range(5):
                sink.write({"i": i})
                records = read_jsonl(str(path))
                assert records == [{"i": j} for j in range(i + 1)]

    def test_malformed_interior_line_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"b": 2}\n', encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path))


# ----------------------------------------------------------------------
# Satellite 4: Deadline must re-anchor across pickling
# ----------------------------------------------------------------------


class TestDeadlinePickle:
    def test_remaining_budget_survives_roundtrip(self):
        deadline = Deadline(30.0)
        clone = pickle.loads(pickle.dumps(deadline))
        assert 29.0 < clone.remaining() <= 30.0
        assert not clone.expired()

    def test_never_survives_roundtrip(self):
        clone = pickle.loads(pickle.dumps(Deadline.never()))
        assert clone.remaining() == float("inf")
        assert not clone.expired()

    def test_foreign_monotonic_epoch_is_discarded(self):
        # A clock whose epoch is nowhere near this process's
        # time.monotonic stands in for the *other process* in the bug:
        # shipping the raw anchor would make the deadline expire ~1e9
        # seconds in the future (or the past). Re-anchoring must keep
        # only the remaining budget.
        deadline = Deadline(10.0, clock=lambda: 1.0e9)
        clone = pickle.loads(pickle.dumps(deadline))
        assert 9.0 < clone.remaining() <= 10.0

    def test_expired_deadline_stays_expired(self):
        deadline = Deadline(5.0, clock=lambda: 1.0e9)
        deadline._expires_at = 1.0e9 - 1.0  # already 1s past due
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.expired()
        assert clone.remaining() <= -0.9

    @pytest.mark.fault
    def test_roundtrip_into_spawned_worker(self):
        import concurrent.futures
        import multiprocessing

        deadline = Deadline(60.0)
        ctx = multiprocessing.get_context("spawn")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=1, mp_context=ctx
        ) as pool:
            remaining = pool.submit(_remaining_in_worker, deadline).result(
                timeout=60
            )
        # A spawned interpreter has its own monotonic epoch; the
        # re-anchored deadline must still measure ~60s, not the
        # difference of two unrelated clocks.
        assert 0.0 < remaining <= 60.0
        assert remaining > 30.0


def _remaining_in_worker(deadline: Deadline) -> float:
    return deadline.remaining()
