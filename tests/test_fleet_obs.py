"""Fleet observability plane tests: trace propagation across the
router -> replica hop (including failover siblings), header byte-identity,
fleet metrics aggregation, router ``/status`` fleet truth, connection
pooling and the cluster run reporter.

The fast lane runs in-process ShardApp servers behind a RouterApp — no
subprocesses. The slow lane SIGKILLs a real replica mid-flood and
asserts the full plane: 100% traceability, byte-identity, one trace id
across retried forwards, and a reporter that renders the incident.
"""

from __future__ import annotations

import glob
import json
import os
import time

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.obs import (
    EventJournal,
    PARENT_HEADER,
    TRACE_HEADER,
    render_cluster_report,
    session,
    trace,
)
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.sinks import read_jsonl
from repro.serving import (
    LoadGenerator,
    LoadPhase,
    ReplicaEndpoint,
    RouterApp,
    ScenarioSpec,
    ShardApp,
    ShardStore,
    rendezvous_order,
    start_http_server,
)

pytestmark = [pytest.mark.obs, pytest.mark.serve]


def _instance(seed: int = 17):
    graph, blocks = planted_partition_graph(
        [5] * 6, p_in=0.6, p_out=0.03, directed=True, seed=seed
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph.freeze(), communities


def _spec(name: str = "planted", **kwargs) -> ScenarioSpec:
    defaults = dict(dataset="facebook", seed=99, pool_size=60)
    defaults.update(kwargs)
    return ScenarioSpec(name=name, **defaults)


def _app(*names: str) -> ShardApp:
    names = names or ("planted",)
    specs = {name: _spec(name) for name in names}
    instance = _instance()
    store = ShardStore(
        specs,
        instances={name: instance for name in names},
        workers=1,
        round_size=60,
    )
    return ShardApp(store)


def _serve(*names: str):
    app = _app(*names)
    server = start_http_server(app)
    return app, server, server.server_address[1]


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ----------------------------------------------------------------------
# Replica-side trace adoption and response headers
# ----------------------------------------------------------------------


class TestShardAppTraceHeaders:
    def test_solve_mints_a_trace_id_and_phase_breakdown(self):
        app = _app()
        try:
            response, headers = app.handle_solve(
                {"scenario": "planted", "budget": 3}
            )
            assert response["seeds"]
            trace_id = headers[TRACE_HEADER]
            assert len(trace_id) == 32 and int(trace_id, 16) >= 0
            timing = headers["Server-Timing"]
            for phase in ("parse", "batch", "total"):
                assert f"{phase};dur=" in timing
            # The response *body* stays header-free: no trace keys.
            assert "trace_id" not in response
        finally:
            app.close()

    def test_solve_adopts_the_inbound_trace_context(self):
        app = _app()
        try:
            with session() as recorder:
                _, headers = app.handle_solve(
                    {"scenario": "planted", "budget": 3},
                    {TRACE_HEADER: "cafe42", PARENT_HEADER: "dead.01"},
                )
            assert headers[TRACE_HEADER] == "cafe42"  # echoed, not minted
            by_name = {r["name"]: r for r in recorder.spans}
            root = by_name["serving/request"]
            assert root["parent_id"] == "dead.01"  # re-parented remotely
            assert all(
                r["trace_id"] == "cafe42" for r in recorder.spans
            )
            counters = recorder.metrics["counters"]
            assert counters["serving.trace.adopted"] == 1
        finally:
            app.close()

    def test_response_bytes_identical_with_tracing_on_and_off(self):
        # The golden()/byte-identity contract: trace context rides in
        # headers only, so enabling the obs session must not change a
        # single response byte. Two fresh stores (same spec seed) keep
        # cache_hit and num_samples aligned between the two runs.
        query = {"scenario": "planted", "budget": 3}
        plain_app = _app()
        try:
            plain, _ = plain_app.handle_solve(query)
        finally:
            plain_app.close()
        traced_app = _app()
        try:
            with session():
                traced, _ = traced_app.handle_solve(query)
        finally:
            traced_app.close()
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )


# ----------------------------------------------------------------------
# Router-side propagation, failover siblings, aggregation, status
# ----------------------------------------------------------------------


class TestRouterFleetObservability:
    def test_forward_propagates_one_trace_across_the_hop(self):
        app, server, port = _serve()
        endpoint = ReplicaEndpoint("r0", "127.0.0.1", port, True)
        router = RouterApp(lambda: [endpoint])
        try:
            with session() as recorder:
                status, body, headers = router.handle_solve(
                    {"scenario": "planted", "budget": 3}
                )
            assert status == 200
            trace_id = headers[TRACE_HEADER]
            # The router appended its own segment to the replica's
            # Server-Timing breakdown.
            assert "router;dur=" in headers["Server-Timing"]
            assert "total;dur=" in headers["Server-Timing"]
            by_name = {r["name"]: r for r in recorder.spans}
            solve = by_name["router/solve"]
            forward = by_name["router/forward"]
            assert solve["trace_id"] == trace_id
            assert forward["parent_id"] == solve["span_id"]
            assert recorder.metrics["counters"]["router.trace.minted"] == 1
        finally:
            router.close_pools()
            server.drain(5.0)
            app.close()

    def test_failover_forwards_are_sibling_spans_in_one_trace(self):
        # Rendezvous-primary is a dead port: the first forward fails,
        # the retry answers. Both forwards must be children of the same
        # router/solve span, sharing one trace id — the "retries are
        # sibling spans" contract.
        app, server, port = _serve()
        dead_port = _free_port()
        ids = ["r0", "r1"]
        primary = rendezvous_order("planted", ids)[0]
        secondary = ids[0] if primary == ids[1] else ids[1]
        endpoints = [
            ReplicaEndpoint(primary, "127.0.0.1", dead_port, True),
            ReplicaEndpoint(secondary, "127.0.0.1", port, True),
        ]
        router = RouterApp(lambda: endpoints)
        try:
            with session() as recorder:
                status, _, headers = router.handle_solve(
                    {"scenario": "planted", "budget": 3}
                )
            assert status == 200
            forwards = [
                r for r in recorder.spans if r["name"] == "router/forward"
            ]
            assert len(forwards) == 2
            assert {f["attrs"]["replica"] for f in forwards} == {
                primary,
                secondary,
            }
            solve = next(
                r for r in recorder.spans if r["name"] == "router/solve"
            )
            assert all(
                f["parent_id"] == solve["span_id"] for f in forwards
            )
            assert {f["trace_id"] for f in forwards} == {
                headers[TRACE_HEADER]
            }
            assert router.counters["failovers"] == 1
        finally:
            router.close_pools()
            server.drain(5.0)
            app.close()

    def test_inbound_context_is_adopted_not_reminted(self):
        app, server, port = _serve()
        endpoint = ReplicaEndpoint("r0", "127.0.0.1", port, True)
        router = RouterApp(lambda: [endpoint])
        try:
            with session() as recorder:
                _, _, headers = router.handle_solve(
                    {"scenario": "planted", "budget": 3},
                    {TRACE_HEADER: "upstream1"},
                )
            assert headers[TRACE_HEADER] == "upstream1"
            counters = recorder.metrics["counters"]
            assert counters["router.trace.adopted"] == 1
            assert counters.get("router.trace.minted", 0) == 0
        finally:
            router.close_pools()
            server.drain(5.0)
            app.close()

    def test_aggregated_counters_equal_the_sum_of_replica_scrapes(self):
        # In-process "replicas" share one ambient registry, so the
        # HTTP-level sum check lives in the subprocess lanes (the slow
        # chaos floor and bench_cluster); here the scrape layer is
        # canned to pin the aggregation *semantics* exactly.
        from repro.obs.metrics import MetricsRegistry
        from repro.serving import FleetMetricsAggregator

        canned = {
            "r0": {
                "counters": {"serving.requests.total": 2,
                             "serving.requests.failed": 1},
                "gauges": {"serving.shards.active": 1},
                "histograms": {},
            },
            "r1": {
                "counters": {"serving.requests.total": 5},
                "gauges": {"serving.shards.active": 2},
                "histograms": {},
            },
        }
        endpoints = [
            ReplicaEndpoint("r0", "127.0.0.1", 1, True),
            ReplicaEndpoint("r1", "127.0.0.1", 2, True),
            ReplicaEndpoint("r2", "127.0.0.1", 3, True),  # mid-restart
        ]
        aggregator = FleetMetricsAggregator(
            lambda: endpoints, local_registry=MetricsRegistry()
        )
        aggregator.scrape = lambda ep: canned.get(ep.replica_id)
        document = aggregator.aggregate(force=True)
        merged = document["snapshot"]["counters"]
        total = sum(
            snap["counters"].get("serving.requests.total", 0)
            for snap in document["replicas"].values()
        )
        assert merged["serving.requests.total"] == total == 7
        # A replica that fails its scrape degrades, never throws.
        assert document["scrape_failures"] == ["r2"]
        assert aggregator.scrape_age("r0") is not None
        assert aggregator.scrape_age("r2") is None
        # Gauges stay apart under per-replica labels — never summed.
        merged_gauges = document["snapshot"]["gauges"]
        assert merged_gauges['serving.shards.active{replica="r0"}'] == 1
        assert merged_gauges['serving.shards.active{replica="r1"}'] == 2
        assert "serving.shards.active" not in merged_gauges
        # Derived SLO gauges ride the same snapshot.
        assert merged_gauges["cluster.slo.error.rate"] == pytest.approx(
            1 / 7
        )
        assert document["slo"]["cluster.slo.error.rate"] == pytest.approx(
            1 / 7
        )

    def test_status_reports_breaker_pool_and_scrape_age(self):
        app, server, port = _serve()
        endpoint = ReplicaEndpoint("r0", "127.0.0.1", port, True)
        router = RouterApp(lambda: [endpoint])
        try:
            status, _, _ = router.handle_solve(
                {"scenario": "planted", "budget": 3}
            )
            assert status == 200
            router.metrics_json()  # one fleet sweep
            payload = router.status()
            (replica,) = payload["replicas"]
            assert replica["breaker"] == "closed"
            assert replica["pooled_connections"] == 1  # kept alive
            assert replica["last_scrape_age_seconds"] is not None
            assert replica["last_scrape_age_seconds"] < 60.0
            assert payload["connection_pooling"] == {
                "enabled": True,
                "pool_size": 8,
            }
        finally:
            router.close_pools()
            server.drain(5.0)
            app.close()

    def test_pooling_reuses_connections_and_can_be_disabled(self):
        app, server, port = _serve()
        endpoint = ReplicaEndpoint("r0", "127.0.0.1", port, True)
        pooled = RouterApp(lambda: [endpoint])
        unpooled = RouterApp(lambda: [endpoint], pool_connections=False)
        try:
            for _ in range(3):
                status, _ = pooled.route_solve(
                    {"scenario": "planted", "budget": 3}
                )
                assert status == 200
            assert pooled._pool("r0").idle() == 1  # round-tripped, kept
            pooled.close_pools()
            assert pooled._pool("r0").idle() == 0
            status, _ = unpooled.route_solve(
                {"scenario": "planted", "budget": 3}
            )
            assert status == 200
            assert (
                unpooled.status()["replicas"][0]["pooled_connections"] == 0
            )
        finally:
            pooled.close_pools()
            server.drain(5.0)
            app.close()


# ----------------------------------------------------------------------
# Cluster run reporter (synthetic run directory; no subprocesses)
# ----------------------------------------------------------------------


class TestClusterReporter:
    def _rundir(self, tmp_path) -> str:
        rundir = tmp_path / "run"
        rundir.mkdir()
        clock = iter([100.0, 100.5, 103.25, 104.0])
        with EventJournal(
            rundir / "events.jsonl",
            source="cluster",
            clock=lambda: next(clock),
        ) as journal:
            journal.emit("replica.spawned", replica="r0", port=7001)
            journal.emit("cluster.started", router_port=7000, replicas=1)
            journal.emit("replica.killed", replica="r0", child_pid=424242)
            journal.emit("replica.respawned", replica="r0", attempt=1,
                         delay=0.25)
        with session():
            with trace.context("feedbeef" * 4):
                with trace.span("router/solve", scenario="alpha"):
                    with trace.span("router/forward", replica="r0",
                                    attempt=1):
                        time.sleep(0.01)
            spans = trace.snapshot()
        with open(rundir / "router.trace.jsonl", "w",
                  encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span) + "\n")
        write_manifest(
            build_manifest(
                command="cluster",
                config={
                    "router_host": "127.0.0.1",
                    "router_port": 7000,
                    "replicas": [
                        {"replica_id": "r0", "port": 7001, "workers": 2,
                         "scenarios": ["alpha"]},
                    ],
                },
            ),
            str(rundir / "cluster.manifest.json"),
        )
        with open(rundir / "cluster.metrics.json", "w",
                  encoding="utf-8") as handle:
            json.dump(
                {
                    "snapshot": {
                        "counters": {"serving.requests.total": 12},
                        "gauges": {"cluster.slo.p95.seconds": 0.05},
                        "histograms": {},
                    },
                    "slo": {"cluster.slo.p95.seconds": 0.05},
                    "replicas": {},
                    "scrape_failures": [],
                },
                handle,
            )
        return str(rundir)

    def test_report_stitches_timeline_traces_and_metrics(self, tmp_path):
        text = render_cluster_report(self._rundir(tmp_path))
        # Topology from the manifest.
        assert "router: 127.0.0.1:7000" in text
        assert "replica r0: port=7001 workers=2 scenarios=[alpha]" in text
        # The kill -> respawn incident appears on the timeline with
        # relative offsets from the first event.
        assert "replica.killed" in text
        assert "replica.respawned" in text
        assert "+    3.250s" in text
        assert "incidents:" in text and "kills=1" in text
        # Phase timings and the slowest-trace exemplar from the spans.
        assert "router/solve" in text
        assert "router/forward" in text
        # Fleet metrics from the final aggregation document.
        assert "serving.requests.total = 12" in text

    def test_report_refuses_a_directory_with_no_artifacts(self, tmp_path):
        from repro.errors import ObservabilityError

        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ObservabilityError, match="artifact"):
            render_cluster_report(str(empty))
        with pytest.raises(ObservabilityError, match="run directory"):
            render_cluster_report(str(tmp_path / "missing"))


# ----------------------------------------------------------------------
# Full-plane chaos floor (slow lane): SIGKILL under load with run_dir
# ----------------------------------------------------------------------


@pytest.mark.cluster
@pytest.mark.slow
def test_chaos_kill_keeps_every_response_traceable(tmp_path):
    from repro.serving import ClusterConfig, ServingCluster, assign_replica
    from repro.utils.retry import RetryPolicy

    rundir = tmp_path / "run"
    specs = {name: _spec(name) for name in ("alpha", "beta")}
    config = ClusterConfig(
        specs,
        instances={name: _instance() for name in specs},
        replicas=3,
        workers=1,
        round_size=60,
        heartbeat_interval=0.2,
        heartbeat_timeout=1.0,
        restart_policy=RetryPolicy(
            max_attempts=5, base_delay=0.2, max_delay=2.0, jitter=0.0, seed=0
        ),
        run_dir=str(rundir),
    )
    queries = [
        {"scenario": ("alpha", "beta")[i % 2], "budget": 3 + (i % 2)}
        for i in range(40)
    ]
    with ServingCluster(config) as cluster:
        host, port = cluster.router_address
        generator = LoadGenerator(host, port)
        victim = assign_replica(
            "alpha", [e.replica_id for e in cluster.supervisor.endpoints()]
        )
        clean = generator.run_phase(
            LoadPhase("clean", queries, clients=40)
        )
        chaos = generator.run_phase(
            LoadPhase(
                "chaos",
                queries,
                clients=40,
                chaos=lambda: cluster.supervisor.kill_replica(victim),
                chaos_after=10,
            )
        )
        # Every answered request in both phases carries a trace id,
        # and chaos answers are byte-identical to clean ones.
        assert clean.traceability() == 1.0
        assert chaos.traceability() == 1.0
        assert clean.golden() == chaos.golden()
        assert cluster.router_app.counters["failovers"] >= 1
    # Retried forwards are sibling spans inside one trace.
    router_spans = [
        r
        for r in read_jsonl(str(rundir / "router.trace.jsonl"))
        if r.get("type") == "span"
    ]
    by_trace: dict = {}
    for span in router_spans:
        if span["name"] == "router/forward":
            by_trace.setdefault(span["trace_id"], []).append(span)
    retried = [spans for spans in by_trace.values() if len(spans) > 1]
    assert retried, "chaos phase produced no failover retries"
    for spans in retried:
        assert len({s["parent_id"] for s in spans}) == 1
    # The reporter renders the kill -> respawn incident from the run dir.
    text = render_cluster_report(str(rundir))
    assert "replica.killed" in text
    assert "replica.respawned" in text
    assert "cluster.stopped" in text
    # Every replica incarnation left pid-stamped artifacts.
    assert glob.glob(os.path.join(str(rundir), "replica-*-*.trace.jsonl"))
