"""Property-based tests for the synthetic generators.

For arbitrary valid parameters, every generator must produce a
structurally sound graph (ids in range, no self-loops, declared
symmetry honoured, determinism under a fixed seed).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    barabasi_albert_graph,
    copying_model_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    planted_partition_graph,
    stochastic_kronecker_graph,
    watts_strogatz_graph,
)


def _structurally_sound(graph):
    n = graph.num_nodes
    for u, v, w in graph.edges():
        assert 0 <= u < n and 0 <= v < n
        assert u != v
        assert 0.0 <= w <= 1.0
    # in/out views agree.
    assert sum(graph.out_degree(v) for v in graph.nodes()) == graph.num_edges
    assert sum(graph.in_degree(v) for v in graph.nodes()) == graph.num_edges


@given(
    st.integers(2, 40),
    st.floats(0.0, 1.0),
    st.booleans(),
    st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_er_sound(n, p, directed, seed):
    g = erdos_renyi_graph(n, p, directed=directed, seed=seed)
    _structurally_sound(g)
    if not directed:
        for u, v, _ in g.edges():
            assert g.has_edge(v, u)
    assert g == erdos_renyi_graph(n, p, directed=directed, seed=seed)


@given(st.integers(1, 5), st.integers(0, 2**16), st.booleans())
@settings(max_examples=60, deadline=None)
def test_ba_sound(m, seed, directed):
    n = m + 1 + (seed % 30) + 1
    g = barabasi_albert_graph(n, m, directed=directed, seed=seed)
    _structurally_sound(g)
    # Every non-core node contributes exactly m out-links (directed) or
    # m undirected attachments.
    if directed:
        for v in range(m + 1, n):
            assert g.out_degree(v) == m


@given(st.integers(1, 4), st.floats(0.0, 1.0), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_ws_sound(half_k, p, seed):
    k = 2 * half_k
    n = k + 1 + (seed % 20)
    g = watts_strogatz_graph(n, k, p, seed=seed)
    _structurally_sound(g)
    assert g.num_edges == n * k  # edge count invariant under rewiring
    for u, v, _ in g.edges():
        assert g.has_edge(v, u)


@given(
    st.lists(st.integers(1, 8), min_size=1, max_size=5),
    st.floats(0.0, 1.0),
    st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_planted_partition_sound(sizes, p_in, seed):
    p_out = p_in / 2.0
    graph, blocks = planted_partition_graph(
        sizes, p_in=p_in, p_out=p_out, directed=True, seed=seed
    )
    _structurally_sound(graph)
    assert [len(b) for b in blocks] == sizes
    flat = sorted(v for b in blocks for v in b)
    assert flat == list(range(sum(sizes)))


@given(st.integers(1, 40), st.floats(0.0, 0.5), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_forest_fire_sound(n, fwd, seed):
    g = forest_fire_graph(n, forward_probability=fwd, seed=seed)
    _structurally_sound(g)
    for v in range(1, n):
        assert g.out_degree(v) >= 1  # everyone links backward


@given(st.integers(1, 4), st.integers(0, 2**16), st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_copying_model_sound(d, seed, copy_p):
    n = d + 2 + (seed % 25)
    g = copying_model_graph(n, out_degree=d, copy_probability=copy_p, seed=seed)
    _structurally_sound(g)


@given(st.integers(1, 7), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_kronecker_sound(levels, seed):
    g = stochastic_kronecker_graph(levels, seed=seed)
    _structurally_sound(g)
    assert g.num_nodes == 2**levels
