"""Fidelity-report unit tests."""

import pytest

from repro.experiments.fidelity import (
    FidelityRow,
    fidelity_expectations,
    fidelity_report,
)


@pytest.fixture(scope="module")
def rows():
    return fidelity_report(scale=0.1, seed=7)


def test_report_covers_all_datasets(rows):
    assert [r.name for r in rows] == [
        "facebook",
        "wikivote",
        "epinions",
        "dblp",
        "pokec",
    ]


def test_row_fields_sane(rows):
    for row in rows:
        assert row.nodes > 0 and row.edges > 0
        assert row.avg_degree == pytest.approx(row.edges / row.nodes)
        assert row.max_degree_ratio >= 1.0
        assert 0.0 <= row.clustering <= 1.0
        assert 0.0 <= row.reciprocity <= 1.0
        assert row.effective_diameter >= 0.0


def test_directedness_measured_correctly(rows):
    by_name = {r.name: r for r in rows}
    assert by_name["facebook"].reciprocity == 1.0
    assert by_name["dblp"].reciprocity == 1.0
    assert by_name["wikivote"].reciprocity < 0.5
    assert by_name["pokec"].reciprocity < 0.5


def test_expectations_structure(rows):
    checks = fidelity_expectations(rows[0])
    assert set(checks) == {
        "directedness",
        "degree_skew",
        "small_world",
        "density_band",
    }
    assert all(isinstance(v, bool) for v in checks.values())


def test_expectations_flag_fabricated_drift():
    bogus = FidelityRow(
        name="bogus",
        directed=True,
        nodes=100,
        edges=100,
        avg_degree=1.0,
        paper_avg_degree=100.0,  # way off the density band
        max_degree_ratio=1.0,  # no skew
        clustering=0.0,
        reciprocity=1.0,  # "directed" but fully reciprocal
        effective_diameter=50.0,  # not small world
    )
    checks = fidelity_expectations(bogus)
    assert not checks["directedness"]
    assert not checks["degree_skew"]
    assert not checks["small_world"]
    assert not checks["density_band"]


def test_deterministic(rows):
    again = fidelity_report(scale=0.1, seed=7)
    assert [r.edges for r in again] == [r.edges for r in rows]
