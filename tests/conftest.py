"""Shared fixtures: small deterministic graphs, communities and pools."""

from __future__ import annotations

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler


@pytest.fixture
def triangle_graph() -> DiGraph:
    """3-node directed cycle with probability 0.5 edges."""
    g = DiGraph(3)
    g.add_edge(0, 1, 0.5)
    g.add_edge(1, 2, 0.5)
    g.add_edge(2, 0, 0.5)
    return g


@pytest.fixture
def line_graph() -> DiGraph:
    """0 -> 1 -> 2 -> 3 path with deterministic (p=1) edges."""
    g = DiGraph(4)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 3, 1.0)
    return g


@pytest.fixture
def fig2_graph() -> DiGraph:
    """The paper's Fig. 2 non-submodularity gadget.

    Nodes a=0, b=1 feed a 3-node community {2, 3, 4}; every edge has
    weight 0.3 and the community threshold is 2. Structure chosen so
    that c({a,b}) - c({a}) > c({b}) - c({}) (supermodular behaviour):
    a reaches node 2; b reaches nodes 3 and 4.
    """
    g = DiGraph(5)
    g.add_edge(0, 2, 0.3)
    g.add_edge(1, 3, 0.3)
    g.add_edge(1, 4, 0.3)
    return g


@pytest.fixture
def fig2_communities() -> CommunityStructure:
    """Community {2, 3, 4} with threshold 2, unit benefit."""
    return CommunityStructure(
        [Community(members=(2, 3, 4), threshold=2, benefit=1.0)]
    )


@pytest.fixture
def two_communities() -> CommunityStructure:
    """Two communities over 6 nodes with distinct thresholds/benefits."""
    return CommunityStructure(
        [
            Community(members=(0, 1, 2), threshold=2, benefit=3.0),
            Community(members=(3, 4, 5), threshold=1, benefit=1.0),
        ]
    )


@pytest.fixture
def planted_instance():
    """A weighted planted-partition graph with its ground-truth blocks."""
    graph, blocks = planted_partition_graph(
        [5] * 6, p_in=0.6, p_out=0.03, directed=True, seed=17
    )
    assign_weighted_cascade(graph)
    return graph, blocks


@pytest.fixture
def planted_pool(planted_instance):
    """A 400-sample RIC pool over the planted instance (threshold 2)."""
    graph, blocks = planted_instance
    communities = CommunityStructure(
        [
            Community(members=tuple(block), threshold=2, benefit=float(len(block)))
            for block in blocks
        ]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=99))
    pool.grow(400)
    return pool
