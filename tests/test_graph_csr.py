"""FrozenDiGraph: CSR snapshot correctness and kernel equivalence.

The contract under test is strong: freezing a graph must leave every
randomized pipeline *byte-identical* — same RNG draw order, same
samples, same cascades — not merely equal in distribution. The suite
therefore compares frozen-vs-mutable outputs exactly, never
statistically.
"""

import pickle

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.diffusion.independent_cascade import simulate_ic
from repro.diffusion.linear_threshold import simulate_lt
from repro.errors import GraphError
from repro.graph.csr import FrozenDiGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.ric import RICSampler
from repro.sampling.rr import RRSampler


@pytest.fixture(scope="module")
def instance():
    graph, blocks = planted_partition_graph(
        [10] * 5, p_in=0.35, p_out=0.03, directed=True, seed=23
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph, communities


def small_graph():
    graph = DiGraph(5)
    graph.add_edge(0, 1, 0.5)
    graph.add_edge(0, 2, 0.25)
    graph.add_edge(2, 1, 0.75)
    graph.add_edge(3, 4, 1.0)
    graph.add_edge(4, 0, 0.1)
    return graph


def test_frozen_matches_mutable_read_surface():
    graph = small_graph()
    frozen = graph.freeze()
    assert isinstance(frozen, FrozenDiGraph)
    assert frozen.num_nodes == graph.num_nodes
    assert frozen.num_edges == graph.num_edges
    assert len(frozen) == len(graph)
    assert list(frozen.nodes()) == list(graph.nodes())
    for u in graph.nodes():
        assert frozen.out_degree(u) == graph.out_degree(u)
        assert frozen.in_degree(u) == graph.in_degree(u)
        assert frozen.out_neighbors(u) == tuple(graph.out_neighbors(u))
        assert frozen.in_neighbors(u) == tuple(graph.in_neighbors(u))
        out_ids, out_ws = frozen.out_adjacency(u)
        mut_ids, mut_ws = graph.out_adjacency(u)
        assert list(out_ids) == list(mut_ids)
        assert list(out_ws) == pytest.approx(list(mut_ws))
        assert list(frozen.out_edges(u)) == list(graph.out_edges(u))
        assert list(frozen.in_edges(u)) == list(graph.in_edges(u))
    assert list(frozen.edges()) == list(graph.edges())
    assert frozen.has_edge(0, 1) and not frozen.has_edge(1, 0)
    assert frozen.weight(0, 2) == pytest.approx(0.25)
    assert frozen.weight(2, 0) == 0.0
    assert frozen == graph


def test_edge_ranks_are_insertion_order_ids():
    graph = small_graph()
    frozen = graph.freeze()
    for u, v, _ in graph.edges():
        assert frozen.edge_id(u, v) == graph.edge_id(u, v)
    with pytest.raises(GraphError):
        frozen.edge_id(1, 0)


def test_freeze_is_idempotent_and_construction_guarded():
    frozen = small_graph().freeze()
    assert frozen.freeze() is frozen
    with pytest.raises(GraphError):
        FrozenDiGraph()


def test_thaw_round_trip_preserves_edge_ids():
    graph = small_graph()
    thawed = graph.freeze().thaw()
    assert thawed == graph
    for u, v, _ in graph.edges():
        assert thawed.edge_id(u, v) == graph.edge_id(u, v)
    # A re-freeze of the thawed graph is CSR-identical.
    refrozen = thawed.freeze()
    original = graph.freeze()
    assert refrozen.in_neighbor_ids == original.in_neighbor_ids
    assert refrozen.in_edge_ranks == original.in_edge_ranks


def test_pickle_round_trip_matches_and_rebuilds_caches():
    frozen = small_graph().freeze()
    frozen.in_pairs()  # populate the lazy cache on the original
    clone = pickle.loads(pickle.dumps(frozen))
    assert clone == frozen
    assert clone.in_pairs() == frozen.in_pairs()
    assert clone.out_pairs() == frozen.out_pairs()


def test_pair_caches_match_adjacency_order():
    graph = small_graph()
    frozen = graph.freeze()
    in_pairs = frozen.in_pairs()
    out_pairs = frozen.out_pairs()
    assert frozen.in_pairs() is in_pairs  # cached, built once
    for u in graph.nodes():
        sources, weights = graph.in_adjacency(u)
        assert in_pairs[u] == tuple(zip(sources, weights))
        targets, weights = graph.out_adjacency(u)
        assert out_pairs[u] == tuple(zip(targets, weights))


def test_ric_sampling_byte_identical_ic(instance):
    graph, communities = instance
    frozen = graph.freeze()
    mutable = RICSampler(graph, communities, seed=5).sample_many(300)
    fast = RICSampler(frozen, communities, seed=5).sample_many(300)
    assert mutable == fast


def test_ric_sampling_byte_identical_lt(instance):
    graph, communities = instance
    frozen = graph.freeze()
    mutable = RICSampler(
        graph, communities, seed=5, model="lt"
    ).sample_many(200)
    fast = RICSampler(
        frozen, communities, seed=5, model="lt"
    ).sample_many(200)
    assert mutable == fast


def test_rr_sampling_byte_identical(instance):
    graph, _ = instance
    frozen = graph.freeze()
    slow = RRSampler(graph, seed=9)
    fast = RRSampler(frozen, seed=9)
    for _ in range(200):
        assert slow.sample() == fast.sample()


def test_simulations_byte_identical(instance):
    graph, _ = instance
    frozen = graph.freeze()
    for seed in range(20):
        assert simulate_ic(graph, [seed], seed=seed) == simulate_ic(
            frozen, [seed], seed=seed
        )
        assert simulate_lt(graph, [seed], seed=seed) == simulate_lt(
            frozen, [seed], seed=seed
        )


def test_frozen_rejects_out_of_range_nodes():
    frozen = small_graph().freeze()
    for bad in (-1, 5):
        with pytest.raises(GraphError):
            frozen.out_degree(bad)
        with pytest.raises(GraphError):
            frozen.in_adjacency(bad)
