"""Robustness / failure-injection tests.

Degenerate-but-legal inputs the library must handle gracefully: zero
probability edges everywhere, communities nobody can reach, a budget
larger than the useful candidate set, impossible thresholds, pools with
zero influenced samples, and weight extremes.
"""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.bt import BT, MB
from repro.core.framework import solve_imc
from repro.core.maf import MAF
from repro.core.ubg import UBG
from repro.diffusion.simulator import community_benefit_monte_carlo
from repro.graph.builders import from_edge_list
from repro.graph.digraph import DiGraph
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler


@pytest.fixture
def dead_graph():
    """Every edge has probability 0: no influence ever spreads."""
    g = from_edge_list(6, [(i, (i + 1) % 6, 0.0) for i in range(6)])
    return g


@pytest.fixture
def dead_communities():
    return CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=1.0),
            Community(members=(2, 3), threshold=2, benefit=1.0),
        ]
    )


def test_zero_probability_graph_samples_are_members_only(
    dead_graph, dead_communities
):
    sampler = RICSampler(dead_graph, dead_communities, seed=1)
    for _ in range(20):
        sample = sampler.sample()
        for member, reach in zip(sample.members, sample.reach_sets):
            assert reach == frozenset({member})


def test_solvers_on_dead_graph_pick_members(dead_graph, dead_communities):
    pool = RICSamplePool(RICSampler(dead_graph, dead_communities, seed=2))
    pool.grow(100)
    for solver in (UBG(), MAF(seed=1), BT(), MB(seed=1)):
        result = solver.solve(pool, 2)
        # With k=2 the best possible is seeding one full community.
        assert result.objective == pytest.approx(
            pool.estimate_benefit(result.seeds)
        )
        assert len(result.seeds) <= 2


def test_imcaf_on_dead_graph_terminates(dead_graph, dead_communities):
    result = solve_imc(
        dead_graph,
        dead_communities,
        k=2,
        solver=MAF(seed=1),
        seed=3,
        max_samples=1000,
    )
    assert result.stopped_by in ("estimate", "psi", "max_samples")
    benefit = community_benefit_monte_carlo(
        dead_graph, dead_communities, result.selection.seeds, num_trials=200, seed=4
    )
    # Seeding both members of one community earns exactly that benefit.
    assert benefit in (0.0, 1.0)


def test_unreachable_community():
    """A community with no in-edges at all: only self-seeding works."""
    g = from_edge_list(4, [(0, 1, 0.9)])
    communities = CommunityStructure(
        [Community(members=(2, 3), threshold=2, benefit=5.0)]
    )
    pool = RICSamplePool(RICSampler(g, communities, seed=5))
    pool.grow(50)
    result = UBG().solve(pool, 2)
    assert set(result.seeds) == {2, 3}
    assert result.objective == pytest.approx(5.0)


def test_budget_exceeding_candidates():
    """k much larger than the touching-node set: solvers return fewer
    seeds without error."""
    g = DiGraph(20)
    communities = CommunityStructure(
        [Community(members=(0,), threshold=1, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(g, communities, seed=6))
    pool.grow(30)
    result = UBG().solve(pool, 15)
    assert len(result.seeds) <= 15
    assert result.objective == pytest.approx(1.0)


def test_all_weight_one_graph():
    """Deterministic graph: every sample reaches everything upstream."""
    g = from_edge_list(5, [(i, i + 1, 1.0) for i in range(4)])
    communities = CommunityStructure(
        [Community(members=(4,), threshold=1, benefit=1.0)]
    )
    sampler = RICSampler(g, communities, seed=7)
    sample = sampler.sample()
    assert sample.reach_sets[0] == frozenset({0, 1, 2, 3, 4})


def test_single_node_graph():
    g = DiGraph(1)
    communities = CommunityStructure(
        [Community(members=(0,), threshold=1, benefit=2.0)]
    )
    result = solve_imc(
        g, communities, k=1, solver=MAF(seed=1), seed=8, max_samples=500
    )
    assert result.selection.seeds == (0,)
    assert result.selection.objective == pytest.approx(2.0)


def test_extremely_skewed_benefits():
    """One community carries ~all the benefit: rho sampling must still
    occasionally pick the tiny one and solvers must not crash."""
    g = DiGraph(4)
    communities = CommunityStructure(
        [
            Community(members=(0, 1), threshold=1, benefit=1e6),
            Community(members=(2,), threshold=1, benefit=1e-6),
        ]
    )
    pool = RICSamplePool(RICSampler(g, communities, seed=9))
    pool.grow(200)
    result = UBG().solve(pool, 1)
    assert result.seeds[0] in (0, 1)


def test_community_covering_whole_graph():
    g = from_edge_list(4, [(0, 1, 0.5), (2, 3, 0.5)])
    communities = CommunityStructure(
        [Community(members=(0, 1, 2, 3), threshold=4, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(g, communities, seed=10))
    pool.grow(100)
    result = BT(threshold_bound=4, candidate_limit=4).solve(pool, 4)
    # Seeding all four nodes influences every sample.
    assert pool.influenced_count(result.seeds) == 100


def test_pool_with_zero_influenceable_samples():
    """Thresholds unreachable for tiny k: greedy still returns seeds by
    fractional progress; the objective is simply 0."""
    g = DiGraph(6)
    communities = CommunityStructure(
        [Community(members=(0, 1, 2, 3), threshold=4, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(g, communities, seed=11))
    pool.grow(40)
    result = UBG(run_c_greedy=True).solve(pool, 2)
    assert result.objective == 0.0
    assert len(result.seeds) == 2  # fractional tie-break keeps it moving
