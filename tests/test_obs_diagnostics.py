"""Estimator-quality diagnostics tests.

The load-bearing contract: a ConvergenceMonitor is a *pure observer* —
attaching one (without a stopping rule) leaves every ``solve_imc``
result byte-identical for both sampling engines — while attaching a
ConvergenceCriterion turns the same machinery into adaptive sampling
that stops early and records how many samples it actually used.
"""

import math
import statistics

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.framework import solve_imc
from repro.core.ubg import UBG
from repro.errors import ObservabilityError
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.obs import metrics, session
from repro.obs.diagnostics import (
    ActivationTracker,
    ConvergenceCriterion,
    ConvergenceMonitor,
    StreamingMoments,
    bernoulli_sample_variance,
    empirical_bernstein_halfwidth,
    normal_halfwidth,
    observe_pool,
    pool_composition,
    pool_memory_bytes,
)
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def instance():
    graph, blocks = planted_partition_graph(
        [6] * 5, p_in=0.5, p_out=0.03, directed=True, seed=17
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph, communities


@pytest.fixture
def small_pool(instance):
    graph, communities = instance
    pool = RICSamplePool(RICSampler(graph, communities, seed=5))
    pool.grow(120)
    return pool


# ---------------------------------------------------------------------
# StreamingMoments (Welford)
# ---------------------------------------------------------------------


def test_streaming_moments_match_statistics_module():
    values = [0.3, 1.7, -2.2, 4.4, 0.0, 9.1, -0.5]
    acc = StreamingMoments()
    acc.push_many(values)
    assert acc.count == len(values)
    assert acc.mean == pytest.approx(statistics.fmean(values))
    assert acc.variance == pytest.approx(statistics.variance(values))
    assert acc.std == pytest.approx(statistics.stdev(values))
    assert acc.min == min(values)
    assert acc.max == max(values)


def test_streaming_moments_empty_and_single():
    acc = StreamingMoments()
    assert (acc.count, acc.mean, acc.variance, acc.min) == (0, 0.0, 0.0, None)
    acc.push(3.0)
    assert acc.variance == 0.0  # unbiased variance undefined for n=1
    assert acc.as_dict()["count"] == 1


def test_streaming_moments_merge_equals_interleaved_stream():
    left, right, combined = (
        StreamingMoments(),
        StreamingMoments(),
        StreamingMoments(),
    )
    a = [1.0, 2.5, -3.0, 0.25]
    b = [10.0, -7.5, 0.0]
    left.push_many(a)
    right.push_many(b)
    combined.push_many(a + b)
    left.merge(right)
    assert left.count == combined.count
    assert left.mean == pytest.approx(combined.mean)
    assert left.variance == pytest.approx(combined.variance)
    assert left.min == combined.min and left.max == combined.max
    # Merging into an empty accumulator copies the other stream.
    empty = StreamingMoments()
    empty.merge(combined)
    assert empty.as_dict() == combined.as_dict()


# ---------------------------------------------------------------------
# Confidence intervals
# ---------------------------------------------------------------------


def test_normal_halfwidth_matches_hand_computation():
    # 95% CI: z = 1.959963...; V=0.25, n=100 -> 1.96 * 0.05
    hw = normal_halfwidth(0.25, 100, 0.05)
    assert hw == pytest.approx(1.959964 * 0.05, rel=1e-5)
    # Quarter the width at 16x the samples.
    assert normal_halfwidth(0.25, 1600, 0.05) == pytest.approx(hw / 4)


def test_empirical_bernstein_halfwidth_formula_and_edge_cases():
    v, r, n, delta = 0.2, 1.0, 50, 0.05
    expected = math.sqrt(2 * v * math.log(2 / delta) / n) + (
        7 * r * math.log(2 / delta) / (3 * (n - 1))
    )
    assert empirical_bernstein_halfwidth(v, r, n, delta) == pytest.approx(
        expected
    )
    # Bernstein is a conservative finite-sample bound: wider than the
    # CLT interval at modest n.
    assert empirical_bernstein_halfwidth(v, r, n, delta) > normal_halfwidth(
        v, n, delta
    )
    assert empirical_bernstein_halfwidth(v, r, 1, delta) == float("inf")


@pytest.mark.parametrize(
    "call",
    [
        lambda: normal_halfwidth(0.1, 0, 0.05),
        lambda: normal_halfwidth(-0.1, 10, 0.05),
        lambda: normal_halfwidth(0.1, 10, 1.5),
        lambda: empirical_bernstein_halfwidth(0.1, 0.0, 10, 0.05),
        lambda: bernoulli_sample_variance(-1, 10),
        lambda: bernoulli_sample_variance(11, 10),
        lambda: bernoulli_sample_variance(1, 0),
    ],
)
def test_ci_input_validation(call):
    with pytest.raises(ObservabilityError):
        call()


def test_bernoulli_sample_variance_is_welford_closed_form():
    successes, n = 7, 25
    acc = StreamingMoments()
    acc.push_many([1.0] * successes + [0.0] * (n - successes))
    assert bernoulli_sample_variance(successes, n) == pytest.approx(
        acc.variance
    )
    assert bernoulli_sample_variance(1, 1) == 0.0


# ---------------------------------------------------------------------
# ConvergenceCriterion / ActivationTracker
# ---------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"ci_width": 0.0},
        {"ci_width": -0.1},
        {"ci_width": 0.1, "min_samples": 0},
        {"ci_width": 0.1, "delta": 0.0},
        {"ci_width": 0.1, "delta": 1.0},
        {"ci_width": 0.1, "method": "hoeffding"},
    ],
)
def test_convergence_criterion_validation(kwargs):
    with pytest.raises(ObservabilityError):
        ConvergenceCriterion(**kwargs)


def test_convergence_criterion_as_dict_round_trip():
    criterion = ConvergenceCriterion(
        ci_width=0.1, min_samples=50, delta=0.1, method="bernstein"
    )
    assert criterion.as_dict() == {
        "ci_width": 0.1,
        "min_samples": 50,
        "delta": 0.1,
        "method": "bernstein",
    }


def test_activation_tracker_observe_and_bulk_counts():
    tracker = ActivationTracker()
    tracker.observe(0, True)
    tracker.observe(0, False)
    tracker.observe(1, True)
    tracker.add_counts({0: 2, 2: 4}, {0: 2, 2: 1})
    rates = tracker.rates()
    assert rates[0] == {"seen": 4, "influenced": 3, "rate": 0.75}
    assert rates[1] == {"seen": 1, "influenced": 1, "rate": 1.0}
    assert rates[2] == {"seen": 4, "influenced": 1, "rate": 0.25}


# ---------------------------------------------------------------------
# Stopping rule mechanics
# ---------------------------------------------------------------------


def test_monitor_without_criterion_never_stops(small_pool):
    monitor = ConvergenceMonitor()
    monitor.observe_stage(small_pool, [0, 1], len(small_pool))
    assert monitor.should_stop() is False
    assert monitor.converged is False


def test_min_samples_gates_the_stop(small_pool):
    criterion = ConvergenceCriterion(ci_width=0.9, min_samples=10_000)
    monitor = ConvergenceMonitor(criterion)
    monitor.observe_stage(small_pool, [0], 100)
    assert monitor.should_stop() is False  # width fine, n too small
    loose = ConvergenceMonitor(ConvergenceCriterion(ci_width=0.9, min_samples=10))
    loose.observe_stage(small_pool, [0], 100)
    assert loose.should_stop() is True
    assert loose.converged is True


def test_zero_estimate_never_converges(small_pool):
    monitor = ConvergenceMonitor(
        ConvergenceCriterion(ci_width=0.5, min_samples=1)
    )
    monitor.observe_stage(small_pool, [], 0)
    assert monitor.trajectory[-1]["relative_width"] is None
    assert monitor.should_stop() is False


def test_bernstein_method_is_more_conservative(small_pool):
    coverage = small_pool.influenced_count([0, 1, 2])
    normal = ConvergenceMonitor(
        ConvergenceCriterion(ci_width=0.5, min_samples=1)
    )
    bernstein = ConvergenceMonitor(
        ConvergenceCriterion(ci_width=0.5, min_samples=1, method="bernstein")
    )
    normal.observe_stage(small_pool, [0, 1, 2], coverage)
    bernstein.observe_stage(small_pool, [0, 1, 2], coverage)
    assert (
        bernstein.trajectory[-1]["halfwidth"]
        > normal.trajectory[-1]["halfwidth"]
    )


# ---------------------------------------------------------------------
# Byte-identity: monitoring must not perturb results (both engines)
# ---------------------------------------------------------------------


def _result_fingerprint(result):
    return (
        tuple(result.selection.seeds),
        result.selection.objective,
        result.num_samples,
        result.iterations,
        result.stopped_by,
        result.benefit_estimate,
        result.psi,
        result.lambda_threshold,
    )


def test_monitor_is_byte_identical_serial(instance):
    graph, communities = instance
    kwargs = dict(k=3, solver=UBG(), seed=11, max_samples=2000)
    plain = solve_imc(graph, communities, **kwargs)
    monitor = ConvergenceMonitor()
    watched = solve_imc(graph, communities, convergence=monitor, **kwargs)
    assert _result_fingerprint(plain) == _result_fingerprint(watched)
    assert "estimator" not in plain.metadata
    assert watched.metadata["estimator"]["samples"] == watched.num_samples


def test_monitor_is_byte_identical_parallel(instance):
    graph, communities = instance
    kwargs = dict(
        k=3,
        solver=UBG(),
        seed=11,
        max_samples=600,
        engine="parallel",
        workers=2,
    )
    plain = solve_imc(graph, communities, **kwargs)
    watched = solve_imc(
        graph, communities, convergence=ConvergenceMonitor(), **kwargs
    )
    assert _result_fingerprint(plain) == _result_fingerprint(watched)
    # The parallel engine's profile reached the monitor's batch log.
    batches = watched.metadata["estimator"]["batches"]
    assert batches and batches[0]["mode"] == "parallel"


def test_parallel_and_serial_monitored_runs_agree(instance):
    # The two engines draw identical sample streams; the monitor's
    # trajectory must therefore be identical too.
    graph, communities = instance
    kwargs = dict(k=3, solver=UBG(), seed=11, max_samples=600)
    serial = solve_imc(
        graph, communities, convergence=ConvergenceMonitor(), **kwargs
    )
    parallel = solve_imc(
        graph,
        communities,
        convergence=ConvergenceMonitor(),
        engine="parallel",
        workers=2,
        **kwargs,
    )
    assert (
        serial.metadata["estimator"]["trajectory"]
        == parallel.metadata["estimator"]["trajectory"]
    )


# ---------------------------------------------------------------------
# Adaptive sampling
# ---------------------------------------------------------------------


def test_adaptive_mode_stops_early_and_records_usage(instance):
    graph, communities = instance
    max_samples = 50_000
    with session() as recorder:
        result = solve_imc(
            graph,
            communities,
            k=3,
            solver=UBG(),
            seed=11,
            max_samples=max_samples,
            convergence=ConvergenceCriterion(ci_width=0.3, min_samples=50),
        )
    assert result.stopped_by == "converged"
    assert result.num_samples < max_samples
    block = result.metadata["estimator"]
    assert block["converged"] is True
    assert block["samples"] == result.num_samples
    assert block["criterion"]["ci_width"] == 0.3
    assert block["relative_width"] <= 0.3
    gauges = recorder.metrics["gauges"]
    assert gauges["estimator.samples.used"] == result.num_samples
    assert gauges["estimator.samples.used"] < max_samples
    assert recorder.metrics["counters"]["estimator.adaptive.stops"] == 1
    assert "pool.bytes" in gauges
    assert "pool.reach.histogram" in recorder.metrics["histograms"]


def test_criterion_can_be_passed_directly(instance):
    # solve_imc wraps a bare criterion in a fresh monitor.
    graph, communities = instance
    result = solve_imc(
        graph,
        communities,
        k=2,
        solver=UBG(),
        seed=3,
        max_samples=20_000,
        convergence=ConvergenceCriterion(ci_width=0.5, min_samples=10),
    )
    assert result.stopped_by == "converged"
    assert result.metadata["estimator"]["criterion"]["ci_width"] == 0.5


def test_strict_criterion_does_not_stop_the_schedule(instance):
    # An unreachable width target must leave the IMCAF schedule intact.
    graph, communities = instance
    kwargs = dict(k=3, solver=UBG(), seed=11, max_samples=2000)
    plain = solve_imc(graph, communities, **kwargs)
    strict = solve_imc(
        graph,
        communities,
        convergence=ConvergenceCriterion(ci_width=1e-9, min_samples=1),
        **kwargs,
    )
    assert strict.stopped_by == plain.stopped_by != "converged"
    assert _result_fingerprint(plain) == _result_fingerprint(strict)


def test_monitor_summary_structure(instance):
    graph, communities = instance
    monitor = ConvergenceMonitor()
    solve_imc(
        graph,
        communities,
        k=3,
        solver=UBG(),
        seed=11,
        max_samples=2000,
        convergence=monitor,
    )
    block = monitor.summary()
    assert block["criterion"] is None and block["converged"] is False
    assert block["stages"] == len(block["trajectory"]) >= 1
    point = block["trajectory"][0]
    assert set(point) == {
        "samples",
        "influenced",
        "estimate",
        "halfwidth",
        "relative_width",
    }
    assert point["estimate"] == pytest.approx(
        communities.total_benefit * point["influenced"] / point["samples"]
    )
    # Per-community activation rates cover the sources seen in the pool.
    assert block["communities"]
    for stats in block["communities"].values():
        assert 0.0 <= stats["rate"] <= 1.0
    assert block["pool"]["samples"] == block["samples"]
    import json

    json.dumps(block)  # the whole block must be manifest-ready


# ---------------------------------------------------------------------
# Pool composition and footprint
# ---------------------------------------------------------------------


def test_pool_composition_counts_and_ratio(small_pool):
    composition = pool_composition(small_pool)
    total = sum(
        len(sample.reach_sets) for sample in small_pool.samples
    )
    assert composition["samples"] == len(small_pool)
    assert composition["reach_sets"] == total
    assert 0 < composition["unique_ratio"] <= 1.0
    assert composition["reach_size"]["count"] == total
    assert sum(composition["sources"].values()) == len(small_pool)
    assert composition["bytes"] > 0


def test_compact_shrinks_footprint_but_not_composition(small_pool):
    before = pool_composition(small_pool)
    stats = small_pool.compact()
    after = pool_composition(small_pool)
    # Interning rewrites references, not values.
    assert after["unique_ratio"] == before["unique_ratio"]
    assert after["reach_size"] == before["reach_size"]
    assert stats["unique_reach_sets"] == before["unique_reach_sets"]
    # Distinct-object accounting reflects the interning win.
    if stats["interned_duplicates"]:
        assert pool_memory_bytes(small_pool) < before["bytes"]


def test_observe_pool_emits_gated_metrics(small_pool):
    # Outside a session: metrics untouched, composition still returned.
    composition = observe_pool(small_pool)
    assert metrics.snapshot()["histograms"] == {}
    with session() as recorder:
        assert observe_pool(small_pool) == composition
    hists = recorder.metrics["histograms"]
    assert hists["pool.reach.histogram"]["count"] == composition["reach_sets"]
    assert (
        hists["pool.sources.histogram"]["count"]
        == len(composition["sources"])
    )
    assert recorder.metrics["gauges"]["pool.bytes"] == composition["bytes"]


# ---------------------------------------------------------------------
# Overhead floor (slow lane)
# ---------------------------------------------------------------------


@pytest.mark.slow
def test_monitoring_overhead_bounded(instance):
    """Excluded from tier-1 (slow, timing-sensitive): a monitored run
    must stay within a loose multiple of an unmonitored one — the
    monitor folds sizes and trajectory points, it must not re-simulate.
    The disabled path (no convergence argument) adds only None-checks,
    covered by the <3% kernel-bench budget in docs/observability.md."""
    import time

    graph, communities = instance
    kwargs = dict(k=3, solver=UBG(), seed=11, max_samples=2000)
    solve_imc(graph, communities, **kwargs)  # warm caches

    start = time.perf_counter()
    solve_imc(graph, communities, **kwargs)
    bare = time.perf_counter() - start

    start = time.perf_counter()
    solve_imc(graph, communities, convergence=ConvergenceMonitor(), **kwargs)
    monitored = time.perf_counter() - start

    assert monitored < bare * 2.0 + 0.1
