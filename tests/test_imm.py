"""IMM solver tests."""

import pytest

from repro.diffusion.simulator import spread_exact, spread_monte_carlo
from repro.errors import SolverError
from repro.graph.builders import from_edge_list
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import assign_weighted_cascade
from repro.im.imm import IMMResult, imm
from repro.im.ris_im import ris_im


@pytest.fixture
def star_graph():
    return from_edge_list(7, [(0, i, 0.9) for i in range(1, 6)])


def test_imm_picks_hub(star_graph):
    result = imm(star_graph, 1, seed=1, max_samples=20_000)
    assert result.seeds == (0,)
    exact = spread_exact(star_graph, [0], max_edges=10)
    assert result.spread_estimate == pytest.approx(exact, rel=0.25)


def test_imm_result_fields(star_graph):
    result = imm(star_graph, 2, seed=2, max_samples=20_000)
    assert isinstance(result, IMMResult)
    assert len(result.seeds) == 2
    assert result.num_samples > 0
    assert 1.0 <= result.lower_bound <= star_graph.num_nodes


def test_imm_lower_bound_below_achieved_spread(star_graph):
    result = imm(star_graph, 1, seed=3, max_samples=20_000)
    actual = spread_monte_carlo(star_graph, result.seeds, num_trials=3000, seed=4)
    assert result.lower_bound <= actual * 1.3


def test_imm_matches_ris_quality():
    graph = barabasi_albert_graph(100, 2, directed=False, seed=5)
    assign_weighted_cascade(graph)
    imm_result = imm(graph, 5, seed=6, max_samples=30_000)
    ris_seeds, _ = ris_im(graph, 5, seed=6, max_samples=30_000)
    imm_spread = spread_monte_carlo(graph, imm_result.seeds, num_trials=600, seed=7)
    ris_spread = spread_monte_carlo(graph, ris_seeds, num_trials=600, seed=7)
    assert imm_spread >= 0.9 * ris_spread


def test_imm_respects_max_samples(star_graph):
    result = imm(star_graph, 1, seed=8, max_samples=500)
    assert result.num_samples <= 500


def test_imm_tiny_graph_shortcut():
    graph = from_edge_list(1, [])
    result = imm(graph, 1, seed=9)
    assert result.seeds == (0,)


def test_imm_validation(star_graph):
    with pytest.raises(SolverError):
        imm(star_graph, 0)
    with pytest.raises(SolverError):
        imm(star_graph, 1, epsilon=0.0)
    with pytest.raises(SolverError):
        imm(star_graph, 1, ell=0.0)


def test_imm_deterministic(star_graph):
    a = imm(star_graph, 2, seed=11, max_samples=5000)
    b = imm(star_graph, 2, seed=11, max_samples=5000)
    assert a.seeds == b.seeds
    assert a.num_samples == b.num_samples
