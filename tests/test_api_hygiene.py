"""API hygiene: docstrings everywhere, exports resolve, no cycles.

Deliverable-level checks: every public module, class and function in
``repro`` carries a docstring; every ``__all__`` entry exists; the
package imports without circular-import surprises from any entry point.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.communities",
    "repro.diffusion",
    "repro.sampling",
    "repro.core",
    "repro.im",
    "repro.baselines",
    "repro.datasets",
    "repro.experiments",
    "repro.obs",
    "repro.utils",
]


def _all_modules():
    names = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not (
                    method.__doc__ and method.__doc__.strip()
                ):
                    missing.append(f"{name}.{method_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"


@pytest.mark.parametrize("module_name", MODULES)
def test_dunder_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_top_level_all_is_sorted_sections_and_complete():
    # Every name in repro.__all__ is importable from repro.
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert isinstance(repro.__version__, str)
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
