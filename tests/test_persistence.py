"""JSON persistence tests: community structures and experiment runs."""

import json

import pytest

from repro.communities.io import (
    load_structure,
    save_structure,
    structure_from_dict,
    structure_to_dict,
)
from repro.communities.structure import Community, CommunityStructure
from repro.errors import CommunityError, ExperimentError
from repro.experiments.persistence import (
    load_runs,
    records_to_runs,
    runs_to_records,
    save_runs,
)
from repro.experiments.runner import AlgorithmRun


@pytest.fixture
def structure():
    return CommunityStructure(
        [
            Community(members=(0, 1, 2), threshold=2, benefit=3.0),
            Community(members=(5, 7), threshold=1, benefit=1.5),
        ]
    )


def test_structure_round_trip_dict(structure):
    rebuilt = structure_from_dict(structure_to_dict(structure))
    assert rebuilt.r == structure.r
    assert [c.members for c in rebuilt] == [c.members for c in structure]
    assert rebuilt.thresholds() == structure.thresholds()
    assert rebuilt.benefits() == structure.benefits()


def test_structure_round_trip_file(structure, tmp_path):
    path = tmp_path / "communities.json"
    save_structure(structure, path)
    rebuilt = load_structure(path)
    assert [c.members for c in rebuilt] == [c.members for c in structure]
    # The file is plain JSON with the documented schema.
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert len(payload["communities"]) == 2


def test_structure_from_dict_validates():
    with pytest.raises(CommunityError):
        structure_from_dict({"not": "a structure"})
    with pytest.raises(CommunityError):
        structure_from_dict({"version": 99, "communities": []})
    with pytest.raises(CommunityError):
        structure_from_dict(
            {"version": 1, "communities": [{"members": [0]}]}
        )


def test_structure_from_dict_rejects_invalid_community():
    # Overlapping members still rejected through deserialisation.
    payload = {
        "version": 1,
        "communities": [
            {"members": [0, 1], "threshold": 1, "benefit": 1.0},
            {"members": [1, 2], "threshold": 1, "benefit": 1.0},
        ],
    }
    with pytest.raises(CommunityError):
        structure_from_dict(payload)


# ------------------------------------------------------------- run data


@pytest.fixture
def results():
    return {
        "UBG": [
            AlgorithmRun("UBG", 5, (1, 2), 10.0, 0.5),
            AlgorithmRun("UBG", 10, (1, 2, 3), 15.0, 0.9),
        ],
        "KS": [AlgorithmRun("KS", 5, (7,), 3.0, 0.01)],
    }


def test_runs_round_trip_records(results):
    rebuilt = records_to_runs(runs_to_records(results))
    assert rebuilt == results


def test_runs_round_trip_file(results, tmp_path):
    path = tmp_path / "runs.json"
    save_runs(results, path, metadata={"dataset": "facebook"})
    rebuilt = load_runs(path)
    assert rebuilt == results
    payload = json.loads(path.read_text())
    assert payload["metadata"]["dataset"] == "facebook"


def test_records_sorted_by_k():
    records = [
        {"algorithm": "A", "k": 10, "seeds": [1], "benefit": 2.0, "runtime_seconds": 0.1},
        {"algorithm": "A", "k": 5, "seeds": [2], "benefit": 1.0, "runtime_seconds": 0.1},
    ]
    rebuilt = records_to_runs(records)
    assert [r.k for r in rebuilt["A"]] == [5, 10]


def test_records_validation():
    with pytest.raises(ExperimentError):
        records_to_runs([{"algorithm": "A"}])


def test_load_runs_rejects_bad_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 42, "records": []}))
    with pytest.raises(ExperimentError):
        load_runs(path)
