"""Independent Cascade model tests."""

import pytest

from repro.diffusion.independent_cascade import (
    ic_round_trace,
    sample_live_edge_graph,
    simulate_ic,
)
from repro.graph.builders import from_edge_list
from repro.graph.digraph import DiGraph
from repro.rng import make_rng


def test_seeds_always_active(line_graph):
    active = simulate_ic(line_graph, [2], seed=1)
    assert 2 in active


def test_deterministic_edges_spread_fully(line_graph):
    active = simulate_ic(line_graph, [0], seed=1)
    assert active == {0, 1, 2, 3}


def test_zero_weight_edges_never_fire():
    g = from_edge_list(2, [(0, 1, 0.0)])
    for s in range(50):
        assert simulate_ic(g, [0], seed=s) == {0}


def test_no_backward_influence(line_graph):
    assert simulate_ic(line_graph, [3], seed=1) == {3}


def test_empty_seed_set():
    g = from_edge_list(2, [(0, 1, 1.0)])
    assert simulate_ic(g, [], seed=1) == set()


def test_duplicate_seeds_handled(line_graph):
    assert simulate_ic(line_graph, [0, 0, 1], seed=1) == {0, 1, 2, 3}


def test_activation_probability_matches_edge_weight():
    g = from_edge_list(2, [(0, 1, 0.3)])
    rng = make_rng(42)
    trials = 20_000
    hits = sum(1 in simulate_ic(g, [0], seed=rng) for _ in range(trials))
    assert hits / trials == pytest.approx(0.3, abs=0.02)


def test_two_hop_probability_is_product():
    g = from_edge_list(3, [(0, 1, 0.5), (1, 2, 0.5)])
    rng = make_rng(7)
    trials = 20_000
    hits = sum(2 in simulate_ic(g, [0], seed=rng) for _ in range(trials))
    assert hits / trials == pytest.approx(0.25, abs=0.02)


def test_live_edge_view_matches_simulation_distribution():
    """IC and the live-edge (sample graph) formulation agree."""
    g = from_edge_list(3, [(0, 1, 0.4), (0, 2, 0.6), (1, 2, 0.5)])
    rng_a, rng_b = make_rng(1), make_rng(2)
    trials = 20_000
    from repro.graph.analysis import forward_reachable

    ic_hits = sum(
        2 in simulate_ic(g, [0], seed=rng_a) for _ in range(trials)
    )
    live_hits = sum(
        2 in forward_reachable(sample_live_edge_graph(g, seed=rng_b), [0])
        for _ in range(trials)
    )
    assert ic_hits / trials == pytest.approx(live_hits / trials, abs=0.02)


def test_sample_live_edge_graph_edges_subset():
    g = from_edge_list(4, [(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)])
    live = sample_live_edge_graph(g, seed=3)
    for u, v, w in live.edges():
        assert g.has_edge(u, v)
        assert w == 1.0


def test_sample_live_edge_extreme_probabilities():
    g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 0.0)])
    live = sample_live_edge_graph(g, seed=4)
    assert live.has_edge(0, 1)
    assert not live.has_edge(1, 2)


def test_round_trace_structure(line_graph):
    rounds = ic_round_trace(line_graph, [0], seed=5)
    assert rounds[0] == {0}
    assert rounds[1] == {1}
    assert rounds[2] == {2}
    assert rounds[3] == {3}


def test_round_trace_union_equals_simulation_support(line_graph):
    rounds = ic_round_trace(line_graph, [0], seed=6)
    union = set().union(*rounds)
    assert union == {0, 1, 2, 3}


def test_deterministic_with_seed(triangle_graph):
    a = simulate_ic(triangle_graph, [0], seed=99)
    b = simulate_ic(triangle_graph, [0], seed=99)
    assert a == b
