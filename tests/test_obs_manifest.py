"""Manifest tests: hashing, round-trips, atomicity, path conventions."""

import json
import os

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    load_manifest,
    manifest_path_for,
    metrics,
    render_report,
    session,
    trace,
    write_manifest,
)

pytestmark = pytest.mark.obs


def test_config_hash_is_order_independent():
    a = config_hash({"k": 10, "epsilon": 0.2})
    b = config_hash({"epsilon": 0.2, "k": 10})
    assert a == b and len(a) == 64
    assert config_hash({"k": 11, "epsilon": 0.2}) != a


def test_config_hash_tolerates_non_json_values():
    assert config_hash({"path": os}) == config_hash({"path": os})


def test_build_manifest_from_recorder_round_trips(tmp_path):
    with session() as recorder:
        with trace.span("imc/select", stage=1):
            pass
        metrics.inc("ric.samples.generated", 7)
    manifest = build_manifest(
        "solve",
        config={"k": 5, "seed": 9},
        seeds={"seed": 9},
        spans=recorder.spans,
        metrics_snapshot=recorder.metrics,
        artifacts={"trace": "run.jsonl"},
    )
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["config_hash"] == config_hash({"k": 5, "seed": 9})
    assert manifest["phase_timings"]["imc/select"]["count"] == 1
    assert manifest["metrics"]["counters"]["ric.samples.generated"] == 7
    assert "python" in manifest["environment"]

    path = tmp_path / "run.manifest.json"
    assert write_manifest(manifest, str(path)) == str(path)
    loaded = load_manifest(str(path))
    assert loaded == json.loads(json.dumps(manifest, default=str))
    # Atomic discipline: no temp sibling left behind.
    assert not (tmp_path / "run.manifest.json.tmp").exists()


def test_build_manifest_defaults_to_live_state():
    with session():
        with trace.span("live/phase"):
            pass
        manifest = build_manifest("solve")
    assert manifest["phase_timings"]["live/phase"]["count"] == 1
    assert manifest["config"] == {} and manifest["seeds"] == {}


def test_load_manifest_rejects_other_documents(tmp_path):
    path = tmp_path / "not_manifest.json"
    path.write_text('{"schema": "something-else/1"}\n')
    with pytest.raises(ObservabilityError, match="manifest"):
        load_manifest(str(path))


def test_manifest_path_for_conventions():
    assert manifest_path_for("run.jsonl") == "run.manifest.json"
    assert manifest_path_for("out/trace.jsonl") == "out/trace.manifest.json"
    assert manifest_path_for("plain") == "plain.manifest.json"


def test_render_report_on_manifest_and_rejects_garbage(tmp_path):
    manifest = build_manifest("solve", config={"k": 3}, seeds={"seed": 1})
    path = tmp_path / "m.manifest.json"
    write_manifest(manifest, str(path))
    text = render_report(str(path))
    assert manifest["run_id"] in text
    assert "command: solve" in text
    assert "phase timings" in text

    garbage = tmp_path / "garbage.txt"
    garbage.write_text("not json\nat all\n")
    with pytest.raises(ObservabilityError):
        render_report(str(garbage))
