"""Edge-list I/O tests."""

import pytest

from repro.errors import GraphError
from repro.graph.builders import from_edge_list
from repro.graph.io import read_edge_list, write_edge_list


def test_round_trip_exact(tmp_path):
    g = from_edge_list(4, [(0, 1, 0.123456789), (2, 3, 1 / 3)])
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    loaded = read_edge_list(path)
    assert loaded == g
    assert loaded.num_nodes == 4  # header preserves isolated-node count


def test_write_without_weights_uses_default_on_read(tmp_path):
    g = from_edge_list(2, [(0, 1, 0.7)])
    path = tmp_path / "g.txt"
    write_edge_list(g, path, weights=False)
    loaded = read_edge_list(path, default_weight=0.25)
    assert loaded.weight(0, 1) == 0.25


def test_read_infers_node_count_without_header(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 3\n1 2\n")
    g = read_edge_list(path)
    assert g.num_nodes == 4
    assert g.has_edge(0, 3) and g.has_edge(1, 2)


def test_read_explicit_num_nodes_overrides(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# nodes 3\n0 1\n")
    g = read_edge_list(path, num_nodes=10)
    assert g.num_nodes == 10


def test_read_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# a comment\n\n0 1 0.5\n# another\n1 2 0.75\n")
    g = read_edge_list(path)
    assert g.num_edges == 2
    assert g.weight(1, 2) == 0.75


def test_read_rejects_malformed_line(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1 0.5 extra junk\n")
    with pytest.raises(GraphError, match="expected"):
        read_edge_list(path)


def test_write_dot_basic(tmp_path):
    from repro.graph.io import write_dot

    g = from_edge_list(3, [(0, 1, 0.5), (1, 2, 0.25)])
    path = tmp_path / "g.dot"
    write_dot(g, path)
    text = path.read_text()
    assert text.startswith("digraph G {")
    assert "0 -> 1" in text and 'label="0.50"' in text
    assert "1 -> 2" in text and 'label="0.25"' in text


def test_write_dot_with_communities_and_seeds(tmp_path):
    from repro.communities.structure import Community, CommunityStructure
    from repro.graph.io import write_dot

    g = from_edge_list(4, [(0, 1, 0.5)])
    communities = CommunityStructure(
        [
            Community(members=(0, 1), threshold=1, benefit=1.0),
            Community(members=(2,), threshold=1, benefit=1.0),
        ]
    )
    path = tmp_path / "g.dot"
    write_dot(g, path, communities=communities, seeds=[0])
    text = path.read_text()
    assert "doublecircle" in text  # the seed
    assert "lightblue" in text  # community 0 colour
    # Node 3 is in no community: white.
    assert 'fillcolor="white"' in text


def test_write_dot_guards_size(tmp_path):
    from repro.graph.digraph import DiGraph
    from repro.graph.io import write_dot

    with pytest.raises(GraphError, match="refusing"):
        write_dot(DiGraph(5000), tmp_path / "big.dot")
