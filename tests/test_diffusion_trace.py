"""Cascade trace tests."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.diffusion.trace import (
    CascadeTrace,
    average_tipping_profile,
    trace_cascade,
)
from repro.graph.builders import from_edge_list


@pytest.fixture
def chain_instance():
    """0 -> 1 -> 2 -> 3 deterministic; community {1,2} h=2, {3} h=1."""
    graph = from_edge_list(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    communities = CommunityStructure(
        [
            Community(members=(1, 2), threshold=2, benefit=2.0),
            Community(members=(3,), threshold=1, benefit=1.0),
        ]
    )
    return graph, communities


def test_trace_rounds_and_activation(chain_instance):
    graph, communities = chain_instance
    trace = trace_cascade(graph, communities, [0], seed=1)
    assert trace.rounds[0] == frozenset({0})
    assert trace.activation_round == {0: 0, 1: 1, 2: 2, 3: 3}
    assert trace.num_rounds == 4
    assert trace.total_activated == 4


def test_trace_community_tipping_rounds(chain_instance):
    graph, communities = chain_instance
    trace = trace_cascade(graph, communities, [0], seed=1)
    # Community 0 ({1,2}, h=2) tips when node 2 activates at round 2;
    # community 1 ({3}) tips at round 3.
    assert trace.community_tipping == {0: 2, 1: 3}
    assert trace.influenced_benefit == 3.0
    assert trace.tipped_communities() == [0, 1]


def test_trace_seed_round_counts_toward_threshold(chain_instance):
    graph, communities = chain_instance
    trace = trace_cascade(graph, communities, [1, 2], seed=1)
    assert trace.community_tipping[0] == 0  # tipped by the seeds


def test_trace_untipped_community_absent():
    graph = from_edge_list(3, [(0, 1, 0.0)])
    communities = CommunityStructure(
        [Community(members=(1, 2), threshold=2, benefit=5.0)]
    )
    trace = trace_cascade(graph, communities, [0], seed=2)
    assert trace.community_tipping == {}
    assert trace.influenced_benefit == 0.0


def test_trace_is_frozen_dataclass(chain_instance):
    graph, communities = chain_instance
    trace = trace_cascade(graph, communities, [0], seed=3)
    assert isinstance(trace, CascadeTrace)
    with pytest.raises(AttributeError):
        trace.influenced_benefit = 99.0


def test_average_tipping_profile_probabilities():
    # 0 -> 1 with p=0.5; community {1} needs 1 member.
    graph = from_edge_list(2, [(0, 1, 0.5)])
    communities = CommunityStructure(
        [Community(members=(1,), threshold=1, benefit=1.0)]
    )
    profile = average_tipping_profile(
        graph, communities, [0], num_trials=8000, seed=4
    )
    assert profile[0] == pytest.approx(0.5, abs=0.03)


def test_average_tipping_profile_matches_benefit_decomposition(chain_instance):
    graph, communities = chain_instance
    profile = average_tipping_profile(
        graph, communities, [0], num_trials=50, seed=5
    )
    # Deterministic chain: both communities always tip.
    assert profile == {0: 1.0, 1: 1.0}
