"""IMM-style one-shot sample budgeting tests."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.framework import solve_imc
from repro.core.maf import MAF
from repro.core.static_bound import StaticIMCResult, solve_imc_static
from repro.core.ubg import UBG
from repro.diffusion.simulator import community_benefit_monte_carlo
from repro.errors import SolverError
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade


@pytest.fixture(scope="module")
def instance():
    graph, blocks = planted_partition_graph(
        [5] * 6, p_in=0.6, p_out=0.04, directed=True, seed=41
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph, communities


def test_returns_valid_result(instance):
    graph, communities = instance
    result = solve_imc_static(
        graph, communities, k=4, solver=UBG(), seed=1, max_samples=6000
    )
    assert isinstance(result, StaticIMCResult)
    assert 1 <= len(result.selection.seeds) <= 4
    assert result.num_samples >= 1
    assert result.guesses_tried >= 1
    assert 0 < result.lower_bound <= communities.total_benefit


def test_lower_bound_sane_vs_actual_benefit(instance):
    """The data-driven LB never exceeds the achieved benefit by much."""
    graph, communities = instance
    result = solve_imc_static(
        graph, communities, k=6, solver=UBG(), seed=2, max_samples=8000
    )
    achieved = community_benefit_monte_carlo(
        graph, communities, result.selection.seeds, num_trials=2000, seed=3
    )
    assert result.lower_bound <= achieved * 1.5 + 1e-9


def test_quality_comparable_to_imcaf(instance):
    graph, communities = instance
    static = solve_imc_static(
        graph, communities, k=5, solver=MAF(seed=9), seed=4, max_samples=6000
    )
    dynamic = solve_imc(
        graph, communities, k=5, solver=MAF(seed=9), seed=4, max_samples=6000
    )
    static_benefit = community_benefit_monte_carlo(
        graph, communities, static.selection.seeds, num_trials=1500, seed=5
    )
    dynamic_benefit = community_benefit_monte_carlo(
        graph, communities, dynamic.selection.seeds, num_trials=1500, seed=5
    )
    assert static_benefit >= 0.8 * dynamic_benefit


def test_respects_max_samples(instance):
    graph, communities = instance
    result = solve_imc_static(
        graph, communities, k=3, solver=MAF(seed=1), seed=6, max_samples=500
    )
    assert result.num_samples <= 500


def test_validates_arguments(instance):
    graph, communities = instance
    with pytest.raises(SolverError):
        solve_imc_static(graph, communities, k=0, solver=UBG())
    with pytest.raises(SolverError):
        solve_imc_static(graph, communities, k=2, solver=UBG(), epsilon=0.0)


def test_deterministic_given_seed(instance):
    graph, communities = instance
    a = solve_imc_static(
        graph, communities, k=3, solver=MAF(seed=2), seed=11, max_samples=2000
    )
    b = solve_imc_static(
        graph, communities, k=3, solver=MAF(seed=2), seed=11, max_samples=2000
    )
    assert a.selection.seeds == b.selection.seeds
    assert a.num_samples == b.num_samples
