"""Property-based tests of the paper's objective-function lemmas.

- ``ν_R`` is monotone and submodular (Lemma 3's submodularity claim);
- ``ĉ_R ≤ ν_R`` everywhere (Lemma 3);
- ``ĉ_R = ν_R`` when every threshold is 1 (Lemma 4);
- ``ĉ_R`` is monotone (trivially true, but exercised);
- Lemma 5's sandwich on the influenced count.

Pools are generated directly as random collections of RIC samples —
the lemmas hold for *any* collection, not just sampled ones.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.communities.structure import Community, CommunityStructure
from repro.graph.digraph import DiGraph
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler

NUM_NODES = 10


@st.composite
def random_pools(draw, force_unit_thresholds=False):
    """A pool of hand-constructed RIC samples over NUM_NODES nodes."""
    num_communities = draw(st.integers(1, 3))
    communities = []
    next_node = 0
    for _ in range(num_communities):
        size = draw(st.integers(1, 3))
        members = tuple(range(next_node, next_node + size))
        next_node += size
        threshold = 1 if force_unit_thresholds else draw(st.integers(1, size))
        communities.append(
            Community(members=members, threshold=threshold, benefit=1.0)
        )
    structure = CommunityStructure(communities)
    graph = DiGraph(NUM_NODES)
    pool = RICSamplePool(RICSampler(graph, structure, seed=0))
    num_samples = draw(st.integers(1, 6))
    for _ in range(num_samples):
        community_index = draw(st.integers(0, num_communities - 1))
        community = structure[community_index]
        reach_sets = []
        for member in community.members:
            extra = draw(
                st.sets(st.integers(0, NUM_NODES - 1), max_size=4)
            )
            reach_sets.append(frozenset(extra | {member}))
        pool.add(
            RICSample(
                community_index,
                community.threshold,
                community.members,
                tuple(reach_sets),
            )
        )
    return pool


seed_sets = st.sets(st.integers(0, NUM_NODES - 1), max_size=6)


@given(random_pools(), seed_sets, st.integers(0, NUM_NODES - 1))
@settings(max_examples=200, deadline=None)
def test_nu_monotone(pool, seeds, extra):
    assert pool.estimate_upper_bound(seeds | {extra}) >= (
        pool.estimate_upper_bound(seeds) - 1e-12
    )


@given(random_pools(), seed_sets, st.integers(0, NUM_NODES - 1))
@settings(max_examples=200, deadline=None)
def test_c_hat_monotone(pool, seeds, extra):
    assert pool.estimate_benefit(seeds | {extra}) >= (
        pool.estimate_benefit(seeds) - 1e-12
    )


@given(
    random_pools(),
    seed_sets,
    seed_sets,
    st.integers(0, NUM_NODES - 1),
)
@settings(max_examples=200, deadline=None)
def test_nu_submodular(pool, small, big_extra, v):
    """Diminishing returns: gain of v at S <= gain of v at subset T of S."""
    small = frozenset(small)
    big = small | big_extra
    gain_small = pool.fractional_count(small | {v}) - pool.fractional_count(small)
    gain_big = pool.fractional_count(big | {v}) - pool.fractional_count(big)
    assert gain_big <= gain_small + 1e-9


@given(random_pools(), seed_sets)
@settings(max_examples=200, deadline=None)
def test_c_hat_bounded_by_nu(pool, seeds):
    assert pool.estimate_benefit(seeds) <= pool.estimate_upper_bound(seeds) + 1e-12


@given(random_pools(force_unit_thresholds=True), seed_sets)
@settings(max_examples=200, deadline=None)
def test_lemma4_equality_at_unit_thresholds(pool, seeds):
    assert pool.estimate_benefit(seeds) == pytest.approx(
        pool.estimate_upper_bound(seeds)
    )


@given(random_pools(), seed_sets)
@settings(max_examples=200, deadline=None)
def test_objectives_within_range(pool, seeds):
    b = pool.total_benefit
    assert 0.0 <= pool.estimate_benefit(seeds) <= b + 1e-12
    assert 0.0 <= pool.estimate_upper_bound(seeds) <= b + 1e-12


@given(random_pools(), seed_sets)
@settings(max_examples=150, deadline=None)
def test_lemma5_sandwich(pool, seeds):
    """max_u |D(S,u)| <= Σ X_g(S) <= Σ_u |D(S,u)| for u in S."""
    if not seeds:
        return
    influenced = pool.influenced_count(seeds)

    def d_size(u):
        touched = pool.samples_touched_by(u)
        return sum(
            1
            for g_idx in touched
            if pool.samples[g_idx].covered_members(seeds)
            >= pool.samples[g_idx].threshold
        )

    sizes = [d_size(u) for u in seeds]
    assert max(sizes) <= influenced <= sum(sizes)
