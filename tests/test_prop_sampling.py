"""Property-based tests of RIC sampling on random graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.communities.structure import Community, CommunityStructure
from repro.graph.analysis import reverse_reachable
from repro.graph.digraph import DiGraph
from repro.sampling.ric import RICSampler


@st.composite
def graph_with_communities(draw):
    n = draw(st.integers(3, 10))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(st.lists(st.sampled_from(possible), max_size=20, unique=True))
    g = DiGraph(n)
    for u, v in edges:
        g.add_edge(u, v, draw(st.floats(0.1, 1.0, allow_nan=False)))
    # Carve 1-2 disjoint communities out of the node set.
    num_com = draw(st.integers(1, 2))
    nodes = list(range(n))
    communities = []
    idx = 0
    for _ in range(num_com):
        size = draw(st.integers(1, max(1, (n - idx) // num_com)))
        members = tuple(nodes[idx : idx + size])
        idx += size
        if not members:
            break
        communities.append(
            Community(
                members=members,
                threshold=draw(st.integers(1, len(members))),
                benefit=draw(st.floats(0.5, 5.0, allow_nan=False)),
            )
        )
    structure = CommunityStructure(communities)
    seed = draw(st.integers(0, 2**16))
    return g, structure, seed


@given(graph_with_communities())
@settings(max_examples=150, deadline=None)
def test_ric_sample_invariants(args):
    graph, structure, seed = args
    sampler = RICSampler(graph, structure, seed=seed)
    sample = sampler.sample()
    community = structure[sample.community_index]
    # Mirror the source community faithfully.
    assert sample.members == community.members
    assert sample.threshold == community.threshold
    for member, reach in zip(sample.members, sample.reach_sets):
        # u is always in R_g(u).
        assert member in reach
        # Realised reachability is a subset of structural reachability.
        assert reach <= reverse_reachable(graph, [member])


@given(graph_with_communities())
@settings(max_examples=100, deadline=None)
def test_ric_full_seed_set_always_influences(args):
    """Seeding the whole community trivially influences every sample."""
    graph, structure, seed = args
    sampler = RICSampler(graph, structure, seed=seed)
    sample = sampler.sample()
    assert sample.is_influenced_by(sample.members)


@given(graph_with_communities())
@settings(max_examples=100, deadline=None)
def test_ric_empty_seed_set_never_influences(args):
    graph, structure, seed = args
    sampler = RICSampler(graph, structure, seed=seed)
    sample = sampler.sample()
    assert not sample.is_influenced_by([])


@given(graph_with_communities())
@settings(max_examples=100, deadline=None)
def test_ric_deterministic_edges_fully_explored(args):
    """With all-1.0 weights, R_g(u) equals structural reachability."""
    graph, structure, seed = args
    deterministic = DiGraph(graph.num_nodes)
    for u, v, _ in graph.edges():
        deterministic.add_edge(u, v, 1.0)
    sampler = RICSampler(deterministic, structure, seed=seed)
    sample = sampler.sample()
    for member, reach in zip(sample.members, sample.reach_sets):
        assert reach == reverse_reachable(deterministic, [member])
