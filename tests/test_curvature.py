"""Empirical non-submodularity analysis tests."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.curvature import (
    NonSubmodularityProfile,
    probe_nonsubmodularity,
    submodularity_violation_rate,
    supermodularity_violation_rate,
    weak_submodularity_gamma,
)
from repro.errors import SolverError
from repro.graph.digraph import DiGraph
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler


def _unit_threshold_pool():
    """All thresholds 1: ĉ_R is genuinely submodular (Lemma 4)."""
    communities = CommunityStructure(
        [Community(members=(i,), threshold=1, benefit=1.0) for i in range(3)]
    )
    pool = RICSamplePool(RICSampler(DiGraph(8), communities, seed=1))
    pool.add(RICSample(0, 1, (0,), (frozenset({0, 4, 5}),)))
    pool.add(RICSample(1, 1, (1,), (frozenset({1, 5}),)))
    pool.add(RICSample(2, 1, (2,), (frozenset({2, 6}),)))
    return pool


def _lemma2_pool():
    """The Lemma 2 instance: a single h=2 sample — supermodular jump."""
    communities = CommunityStructure(
        [Community(members=(0, 1), threshold=2, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(DiGraph(8), communities, seed=1))
    # Replicated so random probes hit it often; reach sets include
    # helper nodes 4/5 so the probe has enough touching nodes.
    for _ in range(5):
        pool.add(
            RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 5})))
        )
    return pool


def test_unit_thresholds_have_no_submodularity_violations():
    pool = _unit_threshold_pool()
    profile = probe_nonsubmodularity(pool, trials=300, seed=2)
    assert profile.is_effectively_submodular
    assert profile.gamma_lower_bound == 1.0
    assert profile.submodularity_violation_rate == 0.0


def test_lemma2_pool_shows_submodularity_violations():
    pool = _lemma2_pool()
    profile = probe_nonsubmodularity(pool, trials=400, seed=3)
    # gain(v=1 | {0}) = 5 > gain(v=1 | {}) = 0 — violations must appear.
    assert profile.submodularity_violations > 0
    assert profile.gamma_lower_bound < 1.0


def test_c_hat_is_not_supermodular_either():
    """A submodular-looking pool must show supermodularity violations
    (diminishing returns = increasing-returns failures)."""
    pool = _unit_threshold_pool()
    rate = supermodularity_violation_rate(pool, trials=300, seed=4)
    assert rate > 0.0


def test_convenience_wrappers_match_profile():
    pool = _lemma2_pool()
    profile = probe_nonsubmodularity(pool, trials=200, seed=5)
    assert submodularity_violation_rate(pool, trials=200, seed=5) == (
        profile.submodularity_violation_rate
    )
    assert weak_submodularity_gamma(pool, trials=200, seed=5) == (
        profile.gamma_lower_bound
    )


def test_profile_counters_consistent():
    pool = _lemma2_pool()
    profile = probe_nonsubmodularity(pool, trials=150, seed=6)
    assert isinstance(profile, NonSubmodularityProfile)
    assert 0 <= profile.submodularity_violations <= profile.trials
    assert 0 <= profile.supermodularity_violations <= profile.trials
    assert 0.0 <= profile.gamma_lower_bound <= 1.0


def test_validation():
    pool = _lemma2_pool()
    with pytest.raises(SolverError):
        probe_nonsubmodularity(pool, trials=0)
    with pytest.raises(SolverError):
        probe_nonsubmodularity(pool, trials=10, max_set_size=0)
    tiny = RICSamplePool(
        RICSampler(
            DiGraph(2),
            CommunityStructure(
                [Community(members=(0,), threshold=1, benefit=1.0)]
            ),
            seed=1,
        )
    )
    tiny.add(RICSample(0, 1, (0,), (frozenset({0}),)))
    with pytest.raises(SolverError, match="3 touching nodes"):
        probe_nonsubmodularity(tiny, trials=10)


def test_bounded_thresholds_less_violating_than_fractional():
    """The Fig. 8 story, measured directly: smaller thresholds produce
    fewer diminishing-returns violations."""
    from repro.graph.generators import planted_partition_graph
    from repro.graph.weights import assign_weighted_cascade
    from repro.communities.thresholds import (
        build_structure,
        constant_thresholds,
        fractional_thresholds,
    )

    graph, blocks = planted_partition_graph(
        [8] * 4, p_in=0.5, p_out=0.03, directed=True, seed=7
    )
    assign_weighted_cascade(graph)
    rates = {}
    for label, policy in (
        ("bounded", constant_thresholds(2)),
        ("fractional", fractional_thresholds(0.5)),
    ):
        communities = build_structure(
            blocks, size_cap=8, threshold_policy=policy
        )
        pool = RICSamplePool(RICSampler(graph, communities, seed=8))
        pool.grow(200)
        rates[label] = submodularity_violation_rate(pool, trials=250, seed=9)
    assert rates["bounded"] <= rates["fractional"] + 0.02
