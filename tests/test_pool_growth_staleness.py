"""Regression tests: coverage engines vs. a pool that grows under them.

Both engines snapshot the pool at construction. Before the fix, growing
the pool afterwards made a reused engine either IndexError on new sample
indices or silently ignore the new samples in gains — corrupting the
very doubling loop IMCAF relies on. Now every accessor fails fast with
SolverError and ``resync()`` reconciles the engine with the grown pool.
"""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.bitset_engine import BitsetCoverage
from repro.core.objective import CoverageState
from repro.errors import SolverError
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

ENGINES = [CoverageState, BitsetCoverage]


@pytest.fixture
def pool():
    graph, blocks = planted_partition_graph(
        [5] * 4, p_in=0.6, p_out=0.05, directed=True, seed=23
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    result = RICSamplePool(RICSampler(graph, communities, seed=23))
    result.grow(120)
    return result


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_stale_engine_fails_fast_after_growth(pool, engine_cls):
    state = engine_cls(pool)
    node = pool.touching_nodes()[0]
    state.add_seed(node)
    pool.grow(40)
    probe = pool.touching_nodes()[1]
    with pytest.raises(SolverError, match="grew"):
        state.add_seed(probe)
    with pytest.raises(SolverError, match="grew"):
        state.gain_influenced(probe)
    with pytest.raises(SolverError, match="grew"):
        state.gain_fractional(probe)
    with pytest.raises(SolverError, match="grew"):
        state.gain_pair(probe)
    with pytest.raises(SolverError, match="grew"):
        state.estimate_benefit()
    with pytest.raises(SolverError, match="grew"):
        state.estimate_upper_bound()


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_resync_matches_fresh_engine(pool, engine_cls):
    """After resync, counters and every marginal equal those of an
    engine built from scratch on the grown pool with the same seeds."""
    seeds = sorted(pool.touching_nodes())[:3]
    state = engine_cls(pool)
    for node in seeds:
        state.add_seed(node)
    pool.grow(80)
    state.resync()

    fresh = engine_cls(pool)
    for node in seeds:
        fresh.add_seed(node)

    assert state.influenced_count == fresh.influenced_count
    assert state.fractional_count == pytest.approx(fresh.fractional_count)
    assert state.estimate_benefit() == pytest.approx(fresh.estimate_benefit())
    assert state.estimate_upper_bound() == pytest.approx(
        fresh.estimate_upper_bound()
    )
    for node in sorted(pool.touching_nodes()):
        assert state.gain_pair(node)[0] == fresh.gain_pair(node)[0]
        assert state.gain_pair(node)[1] == pytest.approx(
            fresh.gain_pair(node)[1]
        )


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_resync_without_growth_is_noop(pool, engine_cls):
    state = engine_cls(pool)
    node = pool.touching_nodes()[0]
    state.add_seed(node)
    before = (state.influenced_count, state.fractional_count)
    state.resync()
    assert (state.influenced_count, state.fractional_count) == before


@pytest.mark.parametrize("engine_cls", ENGINES)
def test_resynced_engine_keeps_working_incrementally(pool, engine_cls):
    state = engine_cls(pool)
    nodes = sorted(pool.touching_nodes())
    state.add_seed(nodes[0])
    pool.grow(40)
    state.resync()
    state.add_seed(nodes[1])

    fresh = engine_cls(pool)
    fresh.add_seed(nodes[0])
    fresh.add_seed(nodes[1])
    assert state.influenced_count == fresh.influenced_count
    assert state.fractional_count == pytest.approx(fresh.fractional_count)


def test_cross_engine_agreement_after_resync(pool):
    seeds = sorted(pool.touching_nodes())[:2]
    reference = CoverageState(pool)
    bitset = BitsetCoverage(pool)
    for node in seeds:
        reference.add_seed(node)
        bitset.add_seed(node)
    pool.grow(60)
    reference.resync()
    bitset.resync()
    assert reference.influenced_count == bitset.influenced_count
    assert reference.fractional_count == pytest.approx(
        bitset.fractional_count
    )
    for node in sorted(pool.touching_nodes()):
        ref_c, ref_nu = reference.gain_pair(node)
        bit_c, bit_nu = bitset.gain_pair(node)
        assert ref_c == bit_c
        assert ref_nu == pytest.approx(bit_nu)
