"""CoverageState tests: incremental bookkeeping and marginal gains."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.objective import CoverageState
from repro.errors import SolverError
from repro.graph.builders import from_edge_list
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler


@pytest.fixture
def manual_pool():
    graph = from_edge_list(6, [])
    communities = CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=1.0),
            Community(members=(2,), threshold=1, benefit=1.0),
        ]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=1))
    pool.add(RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 5}))))
    pool.add(RICSample(1, 1, (2,), (frozenset({2, 4}),)))
    return pool


def test_initial_state_is_zero(manual_pool):
    state = CoverageState(manual_pool)
    assert state.influenced_count == 0
    assert state.fractional_count == 0.0
    assert state.estimate_benefit() == 0.0
    assert state.estimate_upper_bound() == 0.0


def test_add_seed_updates_counts(manual_pool):
    state = CoverageState(manual_pool)
    state.add_seed(4)  # half of sample 0, all of sample 1
    assert state.influenced_count == 1
    assert state.fractional_count == pytest.approx(0.5 + 1.0)
    state.add_seed(5)  # completes sample 0
    assert state.influenced_count == 2
    assert state.fractional_count == pytest.approx(2.0)


def test_add_seed_idempotent_coverage(manual_pool):
    state = CoverageState(manual_pool)
    state.add_seed(4)
    state.add_seed(0)  # covers member 0 of sample 0, already covered by 4
    assert state.fractional_count == pytest.approx(1.5)


def test_duplicate_seed_rejected(manual_pool):
    state = CoverageState(manual_pool)
    state.add_seed(4)
    with pytest.raises(SolverError):
        state.add_seed(4)


def test_gains_match_actual_deltas(manual_pool):
    state = CoverageState(manual_pool)
    for node in (4, 5, 0, 1, 2):
        gain_c = state.gain_influenced(node)
        gain_nu = state.gain_fractional(node)
        pair = state.gain_pair(node)
        assert pair == (gain_c, pytest.approx(gain_nu))
        before_c = state.influenced_count
        before_nu = state.fractional_count
        state.add_seed(node)
        assert state.influenced_count - before_c == gain_c
        assert state.fractional_count - before_nu == pytest.approx(gain_nu)


def test_gain_of_existing_seed_is_zero(manual_pool):
    state = CoverageState(manual_pool)
    state.add_seed(4)
    assert state.gain_influenced(4) == 0
    assert state.gain_fractional(4) == 0.0
    assert state.gain_pair(4) == (0, 0.0)


def test_gain_threshold_jump(manual_pool):
    """A node covering BOTH members of an h=2 sample gains 1 at once."""
    pool = manual_pool
    pool.add(
        RICSample(0, 2, (0, 1), (frozenset({0, 3}), frozenset({1, 3})))
    )
    state = CoverageState(pool)
    assert state.gain_influenced(3) == 1
    state.add_seed(3)
    assert state.influenced_count == 1


def test_estimates_match_pool_formulas(manual_pool):
    state = CoverageState(manual_pool)
    state.add_seed(4)
    state.add_seed(5)
    assert state.estimate_benefit() == pytest.approx(
        manual_pool.estimate_benefit([4, 5])
    )
    assert state.estimate_upper_bound() == pytest.approx(
        manual_pool.estimate_upper_bound([4, 5])
    )
