"""NMI / ARI partition metric tests."""

import pytest

from repro.communities.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    partition_agreement,
)
from repro.errors import CommunityError

A = [[0, 1, 2], [3, 4, 5]]
SHUFFLED = [[3, 4, 5], [0, 1, 2]]  # same partition, different order
CROSS = [[0, 3], [1, 4], [2, 5]]
SINGLETONS = [[0], [1], [2], [3], [4], [5]]
WHOLE = [[0, 1, 2, 3, 4, 5]]


def test_identical_partitions_score_one():
    assert normalized_mutual_information(A, A) == pytest.approx(1.0)
    assert adjusted_rand_index(A, A) == pytest.approx(1.0)


def test_label_permutation_invariance():
    assert normalized_mutual_information(A, SHUFFLED) == pytest.approx(1.0)
    assert adjusted_rand_index(A, SHUFFLED) == pytest.approx(1.0)


def test_orthogonal_partitions_score_low():
    nmi = normalized_mutual_information(A, CROSS)
    ari = adjusted_rand_index(A, CROSS)
    assert nmi == pytest.approx(0.0, abs=1e-9)
    assert ari <= 0.0 + 1e-9


def test_refinement_scores_between():
    nmi = normalized_mutual_information(A, SINGLETONS)
    assert 0.0 < nmi < 1.0


def test_degenerate_whole_partitions():
    assert normalized_mutual_information(WHOLE, WHOLE) == 1.0
    assert adjusted_rand_index(WHOLE, WHOLE) == 1.0
    assert adjusted_rand_index(SINGLETONS, SINGLETONS) == 1.0


def test_symmetry():
    assert normalized_mutual_information(A, CROSS) == pytest.approx(
        normalized_mutual_information(CROSS, A)
    )
    assert adjusted_rand_index(A, SINGLETONS) == pytest.approx(
        adjusted_rand_index(SINGLETONS, A)
    )


def test_mismatched_node_sets_rejected():
    with pytest.raises(CommunityError):
        normalized_mutual_information(A, [[0, 1, 2]])
    with pytest.raises(CommunityError):
        adjusted_rand_index(A, [[0, 1], [2, 99, 4, 5]])


def test_duplicate_nodes_rejected():
    with pytest.raises(CommunityError):
        normalized_mutual_information([[0, 1], [1, 2]], A)


def test_partition_agreement_dict():
    scores = partition_agreement(A, SHUFFLED)
    assert scores == {"nmi": pytest.approx(1.0), "ari": pytest.approx(1.0)}


def test_louvain_recovers_planted_blocks_by_nmi():
    from repro.communities.louvain import louvain_communities
    from repro.graph.generators import planted_partition_graph

    graph, truth = planted_partition_graph(
        [10] * 4, p_in=0.7, p_out=0.01, directed=False, seed=3
    )
    detected = louvain_communities(graph, seed=3)
    assert normalized_mutual_information(truth, detected) > 0.9
    assert adjusted_rand_index(truth, detected) > 0.85
