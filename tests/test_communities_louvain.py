"""Louvain community detection tests."""

import pytest

from repro.communities.louvain import louvain_communities
from repro.communities.modularity import modularity, partition_from_blocks
from repro.graph.builders import from_undirected_edge_list
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition_graph


def test_empty_graph():
    assert louvain_communities(DiGraph(0)) == []


def test_isolated_nodes_stay_singletons():
    g = DiGraph(4)
    blocks = louvain_communities(g, seed=1)
    assert sorted(map(tuple, blocks)) == [(0,), (1,), (2,), (3,)]


def test_result_is_a_partition():
    graph, _ = planted_partition_graph(
        [8] * 5, p_in=0.6, p_out=0.05, directed=False, seed=2
    )
    blocks = louvain_communities(graph, seed=2)
    flat = [v for block in blocks for v in block]
    assert sorted(flat) == list(range(graph.num_nodes))


def test_two_cliques_separated():
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    g = from_undirected_edge_list(6, edges)
    blocks = louvain_communities(g, seed=3)
    as_sets = {frozenset(b) for b in blocks}
    assert frozenset({0, 1, 2}) in as_sets
    assert frozenset({3, 4, 5}) in as_sets


def test_recovers_planted_partition():
    graph, truth = planted_partition_graph(
        [10] * 4, p_in=0.7, p_out=0.01, directed=False, seed=4
    )
    blocks = louvain_communities(graph, seed=4)
    truth_sets = {frozenset(b) for b in truth}
    found_sets = {frozenset(b) for b in blocks}
    # At least 3 of the 4 planted blocks recovered exactly.
    assert len(truth_sets & found_sets) >= 3


def test_positive_modularity_on_modular_graph():
    graph, _ = planted_partition_graph(
        [10] * 4, p_in=0.6, p_out=0.02, directed=True, seed=5
    )
    blocks = louvain_communities(graph, seed=5)
    assignment = partition_from_blocks(blocks, graph.num_nodes)
    assert modularity(graph, assignment) > 0.4


def test_deterministic_given_seed():
    graph, _ = planted_partition_graph(
        [6] * 5, p_in=0.5, p_out=0.05, directed=False, seed=6
    )
    a = louvain_communities(graph, seed=123)
    b = louvain_communities(graph, seed=123)
    assert a == b


def test_blocks_sorted_by_first_member():
    graph, _ = planted_partition_graph(
        [5] * 4, p_in=0.8, p_out=0.02, directed=False, seed=7
    )
    blocks = louvain_communities(graph, seed=7)
    firsts = [block[0] for block in blocks]
    assert firsts == sorted(firsts)
    for block in blocks:
        assert block == sorted(block)


def test_louvain_beats_random_partition_modularity():
    from repro.communities.random_partition import random_partition

    graph, _ = planted_partition_graph(
        [8] * 5, p_in=0.6, p_out=0.05, directed=True, seed=8
    )
    louvain_blocks = louvain_communities(graph, seed=8)
    random_blocks = random_partition(graph.num_nodes, len(louvain_blocks), seed=8)
    q_louvain = modularity(
        graph, partition_from_blocks(louvain_blocks, graph.num_nodes)
    )
    q_random = modularity(
        graph, partition_from_blocks(random_blocks, graph.num_nodes)
    )
    assert q_louvain > q_random + 0.2


def test_directed_input_handled():
    # Purely directed cycle: symmetrisation makes it a ring.
    g = DiGraph(6)
    for i in range(6):
        g.add_edge(i, (i + 1) % 6, 1.0)
    blocks = louvain_communities(g, seed=9)
    flat = sorted(v for b in blocks for v in b)
    assert flat == list(range(6))
