"""Campaign grid-runner tests."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.campaign import (
    CampaignCell,
    best_algorithm_per_cell,
    campaign_records,
    run_campaign,
)
from repro.experiments.config import ExperimentConfig

TINY = ExperimentConfig(
    dataset="facebook", scale=0.08, pool_size=100, eval_trials=30, seed=5
)


@pytest.fixture(scope="module")
def cells():
    return run_campaign(
        TINY,
        algorithms=["MAF", "KS"],
        k_values=[3, 5],
        datasets=("facebook",),
        thresholds=("fractional", "bounded"),
        formations=("louvain",),
    )


def test_grid_size_and_identity(cells):
    assert len(cells) == 2
    assert {(c.dataset, c.threshold) for c in cells} == {
        ("facebook", "fractional"),
        ("facebook", "bounded"),
    }
    for cell in cells:
        assert isinstance(cell, CampaignCell)
        assert set(cell.runs) == {"MAF", "KS"}
        assert [r.k for r in cell.runs["MAF"]] == [3, 5]


def test_campaign_records_flat(cells):
    records = campaign_records(cells)
    # 2 cells x 2 algorithms x 2 k values.
    assert len(records) == 8
    for record in records:
        assert set(record) == {
            "dataset",
            "threshold",
            "formation",
            "algorithm",
            "k",
            "benefit",
            "runtime_seconds",
            "seeds",
        }
        assert record["benefit"] >= 0


def test_best_algorithm_per_cell(cells):
    winners = best_algorithm_per_cell(cells, k=5)
    assert set(winners) == {
        ("facebook", "fractional", "louvain"),
        ("facebook", "bounded", "louvain"),
    }
    assert all(name in ("MAF", "KS") for name in winners.values())


def test_best_algorithm_missing_k_raises(cells):
    with pytest.raises(ExperimentError):
        best_algorithm_per_cell(cells, k=99)


def test_progress_callback_invoked():
    calls = []
    run_campaign(
        TINY,
        algorithms=["KS"],
        k_values=[2],
        thresholds=("fractional",),
        progress=lambda *args: calls.append(args),
    )
    assert calls == [(0, 1, "facebook", "fractional", "louvain")]


def test_empty_arguments_rejected():
    with pytest.raises(ExperimentError):
        run_campaign(TINY, algorithms=[], k_values=[3])
    with pytest.raises(ExperimentError):
        run_campaign(TINY, algorithms=["KS"], k_values=[])
