"""Event journal tests: roundtrip, vocabulary enforcement, append
semantics across incarnations, torn-tail tolerance, multi-log merge and
the close-then-emit shutdown race."""

import json
import os

import pytest

from repro.obs import (
    EVENT_TYPES,
    EventJournal,
    merge_event_logs,
    read_events,
    session,
)
from repro.obs import metrics

pytestmark = pytest.mark.obs


def test_emit_roundtrips_with_envelope_and_attrs(tmp_path):
    path = tmp_path / "events.jsonl"
    clock = iter([100.0, 101.5])
    with EventJournal(path, source="cluster", clock=lambda: next(clock)) as j:
        j.emit("replica.spawned", replica="r0", port=1234)
        j.emit("replica.healthy", replica="r0")
    events = read_events(str(path))
    assert [e["event"] for e in events] == [
        "replica.spawned",
        "replica.healthy",
    ]
    first = events[0]
    assert first["ts"] == 100.0
    assert first["pid"] == os.getpid()
    assert first["source"] == "cluster"
    assert first["replica"] == "r0"
    assert first["port"] == 1234


def test_unknown_event_type_raises_and_writes_nothing(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventJournal(path) as journal:
        with pytest.raises(ValueError, match="unknown event type"):
            journal.emit("replica.abducted")
    assert read_events(str(path)) == []


def test_journal_appends_across_incarnations(tmp_path):
    # A restarted supervisor (or replica) re-opens the same path; append
    # mode keeps one continuous log instead of truncating history.
    path = tmp_path / "events.jsonl"
    with EventJournal(path, source="a") as journal:
        journal.emit("server.started")
    with EventJournal(path, source="b") as journal:
        journal.emit("server.drain.begin")
    events = read_events(str(path))
    assert [(e["event"], e["source"]) for e in events] == [
        ("server.started", "a"),
        ("server.drain.begin", "b"),
    ]


def test_torn_tail_line_is_skipped(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventJournal(path) as journal:
        journal.emit("replica.killed", replica="r1")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "event", "event": "replica.resp')  # SIGKILL
    events = read_events(str(path))
    assert [e["event"] for e in events] == ["replica.killed"]


def test_emit_after_close_is_a_silent_noop(tmp_path):
    path = tmp_path / "events.jsonl"
    journal = EventJournal(path)
    journal.emit("cluster.started")
    journal.close()
    journal.emit("cluster.stopped")  # late drain-thread event: dropped
    journal.close()  # idempotent
    assert [e["event"] for e in read_events(str(path))] == ["cluster.started"]


def test_merge_event_logs_orders_by_wall_clock(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    clock_a = iter([10.0, 30.0])
    clock_b = iter([20.0])
    with EventJournal(a, source="a", clock=lambda: next(clock_a)) as journal:
        journal.emit("replica.spawned", replica="r0")
        journal.emit("replica.stopped", replica="r0")
    with EventJournal(b, source="b", clock=lambda: next(clock_b)) as journal:
        journal.emit("server.started")
    merged = merge_event_logs([str(a), str(b)])
    assert [e["event"] for e in merged] == [
        "replica.spawned",
        "server.started",
        "replica.stopped",
    ]


def test_emit_counts_into_the_metrics_registry(tmp_path):
    with session() as recorder:
        with EventJournal(tmp_path / "events.jsonl") as journal:
            journal.emit("breaker.opened", replica="r2")
            journal.emit("breaker.closed", replica="r2")
    assert recorder.metrics["counters"]["cluster.events.recorded"] == 2


def test_journal_is_not_gated_by_the_obs_session(tmp_path):
    # Lifecycle journalling is explicit configuration, not ambient
    # instrumentation: it records even with no session open (but the
    # gated counter stays silent).
    path = tmp_path / "events.jsonl"
    with EventJournal(path) as journal:
        journal.emit("shard.evicted", scenario="alpha")
    assert len(read_events(str(path))) == 1
    assert metrics.get_counter("cluster.events.recorded") == 0


def test_every_event_type_is_documented_in_the_catalogue():
    assert all(isinstance(v, str) and v for v in EVENT_TYPES.values())
    # The serialized form is sorted for stable diffs.
    assert json.dumps(dict(EVENT_TYPES), sort_keys=True)
