"""RR-set sampler tests (classic RIS for the IM baseline)."""

import pytest

from repro.diffusion.simulator import spread_exact
from repro.errors import SamplingError
from repro.graph.builders import from_edge_list
from repro.graph.digraph import DiGraph
from repro.sampling.rr import RRSampler


def test_rr_set_contains_root():
    g = from_edge_list(3, [(0, 1, 0.5)])
    sampler = RRSampler(g, seed=1)
    for _ in range(20):
        rr = sampler.sample(root=1)
        assert 1 in rr


def test_rr_set_only_reverse_reachable():
    g = from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
    sampler = RRSampler(g, seed=2)
    rr = sampler.sample(root=1)
    assert rr <= {0, 1}
    rr3 = sampler.sample(root=3)
    assert rr3 <= {2, 3}


def test_rr_deterministic_edges_fully_included():
    g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0)])
    sampler = RRSampler(g, seed=3)
    assert sampler.sample(root=2) == {0, 1, 2}


def test_empty_graph_rejected():
    with pytest.raises(SamplingError):
        RRSampler(DiGraph(0))


def test_spread_identity_borgs_et_al():
    """sigma(S) = n * Pr[RR ∩ S != {}] — validated against exact spread."""
    g = from_edge_list(3, [(0, 1, 0.5), (1, 2, 0.5)])
    sampler = RRSampler(g, seed=4)
    trials = 40_000
    seeds = {0}
    hits = sum(bool(sampler.sample() & seeds) for _ in range(trials))
    estimate = g.num_nodes * hits / trials
    assert estimate == pytest.approx(spread_exact(g, [0]), abs=0.05)


def test_sample_many():
    g = from_edge_list(2, [(0, 1, 0.5)])
    sampler = RRSampler(g, seed=5)
    assert len(sampler.sample_many(30)) == 30
    with pytest.raises(SamplingError):
        sampler.sample_many(-2)
