"""DiGraph core structure tests."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph, Edge


def test_empty_graph():
    g = DiGraph(0)
    assert g.num_nodes == 0
    assert g.num_edges == 0
    assert list(g.edges()) == []


def test_negative_node_count_rejected():
    with pytest.raises(GraphError):
        DiGraph(-1)


def test_add_edge_and_query():
    g = DiGraph(3)
    g.add_edge(0, 1, 0.4)
    assert g.has_edge(0, 1)
    assert not g.has_edge(1, 0)
    assert g.weight(0, 1) == 0.4
    assert g.weight(1, 0) == 0.0  # paper convention: w=0 for absent edges
    assert g.num_edges == 1


def test_add_edge_overwrites_weight_both_directions_of_storage():
    g = DiGraph(2)
    g.add_edge(0, 1, 0.2)
    g.add_edge(0, 1, 0.9)
    assert g.num_edges == 1
    assert g.weight(0, 1) == 0.9
    # In-adjacency mirrors the update.
    sources, weights = g.in_adjacency(1)
    assert sources == [0] and weights == [0.9]


def test_self_loop_rejected():
    g = DiGraph(2)
    with pytest.raises(GraphError):
        g.add_edge(1, 1, 0.5)


def test_invalid_weight_rejected():
    g = DiGraph(2)
    with pytest.raises(GraphError):
        g.add_edge(0, 1, 1.5)
    with pytest.raises(GraphError):
        g.add_edge(0, 1, -0.1)


def test_invalid_node_rejected():
    g = DiGraph(2)
    with pytest.raises(GraphError):
        g.add_edge(0, 2, 0.5)
    with pytest.raises(GraphError):
        g.add_edge(-1, 0, 0.5)


def test_set_weight_requires_existing_edge():
    g = DiGraph(2)
    with pytest.raises(GraphError):
        g.set_weight(0, 1, 0.3)
    g.add_edge(0, 1, 0.2)
    g.set_weight(0, 1, 0.7)
    assert g.weight(0, 1) == 0.7


def test_neighbors_and_degrees():
    g = DiGraph(4)
    g.add_edge(0, 1, 1.0)
    g.add_edge(0, 2, 1.0)
    g.add_edge(3, 0, 1.0)
    assert sorted(g.out_neighbors(0)) == [1, 2]
    assert g.in_neighbors(0) == [3]
    assert g.out_degree(0) == 2
    assert g.in_degree(0) == 1
    assert g.out_degree(3) == 1
    assert g.in_degree(1) == 1


def test_out_edges_and_in_edges_are_edge_tuples():
    g = DiGraph(3)
    g.add_edge(0, 1, 0.25)
    (edge,) = list(g.out_edges(0))
    assert edge == Edge(0, 1, 0.25)
    (edge_in,) = list(g.in_edges(1))
    assert edge_in == Edge(0, 1, 0.25)


def test_edges_iterates_all():
    g = DiGraph(3)
    g.add_edge(0, 1, 0.1)
    g.add_edge(1, 2, 0.2)
    g.add_edge(2, 0, 0.3)
    assert {(u, v) for u, v, _ in g.edges()} == {(0, 1), (1, 2), (2, 0)}


def test_add_node_and_add_nodes():
    g = DiGraph(1)
    new = g.add_node()
    assert new == 1
    g.add_nodes(3)
    assert g.num_nodes == 5
    g.add_edge(4, 0, 0.5)
    assert g.has_edge(4, 0)
    with pytest.raises(GraphError):
        g.add_nodes(-1)


def test_reversed_flips_all_edges():
    g = DiGraph(3)
    g.add_edge(0, 1, 0.3)
    g.add_edge(1, 2, 0.6)
    rev = g.reversed()
    assert rev.has_edge(1, 0) and rev.weight(1, 0) == 0.3
    assert rev.has_edge(2, 1) and rev.weight(2, 1) == 0.6
    assert not rev.has_edge(0, 1)


def test_copy_is_deep_structural():
    g = DiGraph(2)
    g.add_edge(0, 1, 0.4)
    clone = g.copy()
    clone.add_edge(1, 0, 0.9)
    assert not g.has_edge(1, 0)
    assert clone.has_edge(0, 1)


def test_equality_structural():
    a = DiGraph(2)
    a.add_edge(0, 1, 0.5)
    b = DiGraph(2)
    b.add_edge(0, 1, 0.5)
    assert a == b
    b.set_weight(0, 1, 0.6)
    assert a != b


def test_edge_id_dense_and_stable():
    g = DiGraph(3)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 1.0)
    assert g.edge_id(0, 1) == 0
    assert g.edge_id(1, 2) == 1
    g.add_edge(2, 0, 1.0)
    assert g.edge_id(0, 1) == 0  # stable after growth
    assert g.edge_id(2, 0) == 2
    with pytest.raises(GraphError):
        g.edge_id(0, 2)


def test_len_and_repr():
    g = DiGraph(7)
    assert len(g) == 7
    assert "n=7" in repr(g)


def test_adjacency_views_are_parallel():
    g = DiGraph(3)
    g.add_edge(0, 2, 0.1)
    g.add_edge(1, 2, 0.9)
    sources, weights = g.in_adjacency(2)
    assert list(zip(sources, weights)) == [(0, 0.1), (1, 0.9)]
    targets, weights_out = g.out_adjacency(0)
    assert list(zip(targets, weights_out)) == [(2, 0.1)]
