"""Benefit evaluation tests (Monte Carlo + exact ground truth)."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.diffusion.simulator import (
    BenefitEvaluator,
    benefit_of_active_set,
    community_benefit_exact,
    community_benefit_monte_carlo,
    influenced_communities,
    spread_exact,
    spread_monte_carlo,
)
from repro.errors import EstimationError
from repro.graph.builders import from_edge_list


def test_influenced_communities_threshold_semantics(two_communities):
    # Community 0 needs 2 of {0,1,2}; community 1 needs 1 of {3,4,5}.
    assert influenced_communities({0}, two_communities) == []
    assert influenced_communities({0, 1}, two_communities) == [0]
    assert influenced_communities({3}, two_communities) == [1]
    assert influenced_communities({0, 1, 5}, two_communities) == [0, 1]
    assert influenced_communities({9, 10}, two_communities) == []


def test_benefit_of_active_set(two_communities):
    assert benefit_of_active_set({0, 1}, two_communities) == 3.0
    assert benefit_of_active_set({0, 1, 3}, two_communities) == 4.0
    assert benefit_of_active_set(set(), two_communities) == 0.0


def test_exact_benefit_on_fig2_instance(fig2_graph, fig2_communities):
    """Hand-computable values of the paper's Fig. 2 style gadget.

    Seeding {0}: only node 2 can be influenced (p=0.3) and the
    community needs 2 members -> c = 0. Seeding {1}: nodes 3 and 4 each
    with p=0.3 -> both with p=0.09 -> c = 0.09. Seeding {0,1}: at least
    two of {2,3,4} active: P = 3*0.09*0.7 + 0.027 = 0.216... computed
    exactly below.
    """
    assert community_benefit_exact(fig2_graph, fig2_communities, [0]) == pytest.approx(0.0)
    assert community_benefit_exact(fig2_graph, fig2_communities, [1]) == pytest.approx(0.09)
    p = 0.3
    # Members activated: 2 (via a, prob .3), 3 and 4 (via b, prob .3 each).
    # Need >= 2 of the three.
    exact = (
        p * p * (1 - p) * 3  # exactly two of three
        + p**3  # all three
    )
    assert community_benefit_exact(
        fig2_graph, fig2_communities, [0, 1]
    ) == pytest.approx(exact)


def test_fig2_supermodular_behaviour(fig2_graph, fig2_communities):
    """The non-submodularity witness: marginal of b given a exceeds
    marginal of b alone (Section II-B)."""
    c_empty = 0.0
    c_a = community_benefit_exact(fig2_graph, fig2_communities, [0])
    c_b = community_benefit_exact(fig2_graph, fig2_communities, [1])
    c_ab = community_benefit_exact(fig2_graph, fig2_communities, [0, 1])
    assert c_ab - c_a > c_b - c_empty


def test_monte_carlo_matches_exact(fig2_graph, fig2_communities):
    exact = community_benefit_exact(fig2_graph, fig2_communities, [0, 1])
    mc = community_benefit_monte_carlo(
        fig2_graph, fig2_communities, [0, 1], num_trials=30_000, seed=5
    )
    assert mc == pytest.approx(exact, abs=0.01)


def test_monte_carlo_lt_model_runs(fig2_graph, fig2_communities):
    value = community_benefit_monte_carlo(
        fig2_graph, fig2_communities, [0, 1], num_trials=500, model="lt", seed=6
    )
    assert 0.0 <= value <= fig2_communities.total_benefit


def test_monte_carlo_validates_args(fig2_graph, fig2_communities):
    with pytest.raises(EstimationError):
        community_benefit_monte_carlo(
            fig2_graph, fig2_communities, [0], num_trials=0
        )
    with pytest.raises(EstimationError):
        community_benefit_monte_carlo(
            fig2_graph, fig2_communities, [0], model="nope"
        )


def test_spread_exact_line():
    g = from_edge_list(3, [(0, 1, 0.5), (1, 2, 0.5)])
    # sigma({0}) = 1 + 0.5 + 0.25
    assert spread_exact(g, [0]) == pytest.approx(1.75)


def test_spread_monte_carlo_matches_exact():
    g = from_edge_list(3, [(0, 1, 0.5), (1, 2, 0.5)])
    mc = spread_monte_carlo(g, [0], num_trials=30_000, seed=3)
    assert mc == pytest.approx(1.75, abs=0.02)


def test_exact_guards_edge_count():
    g = from_edge_list(30, [(i, i + 1, 0.5) for i in range(25)])
    structure = CommunityStructure(
        [Community(members=(0,), threshold=1, benefit=1.0)]
    )
    with pytest.raises(EstimationError):
        community_benefit_exact(g, structure, [0], max_edges=10)
    with pytest.raises(EstimationError):
        spread_exact(g, [0], max_edges=10)


def test_benefit_evaluator_reusable(fig2_graph, fig2_communities):
    evaluate = BenefitEvaluator(
        fig2_graph, fig2_communities, num_trials=5000, seed=9
    )
    exact = community_benefit_exact(fig2_graph, fig2_communities, [0, 1])
    assert evaluate([0, 1]) == pytest.approx(exact, abs=0.03)
    # Second call works (fresh child stream) and stays close.
    assert evaluate([0, 1]) == pytest.approx(exact, abs=0.03)


def test_benefit_evaluator_validates(fig2_graph, fig2_communities):
    with pytest.raises(EstimationError):
        BenefitEvaluator(fig2_graph, fig2_communities, model="bad")
