"""Classic IM solver tests (RIS and CELF Monte-Carlo)."""

import pytest

from repro.diffusion.simulator import spread_exact, spread_monte_carlo
from repro.errors import SolverError
from repro.graph.builders import from_edge_list
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import assign_weighted_cascade
from repro.im.celf import celf_im
from repro.im.ris_im import ris_im, rr_greedy_cover
from repro.sampling.pool import RRSamplePool
from repro.sampling.rr import RRSampler


@pytest.fixture
def star_graph():
    """Hub 0 -> leaves 1..5 with p = 0.9; node 6 isolated."""
    g = from_edge_list(7, [(0, i, 0.9) for i in range(1, 6)])
    return g


def test_rr_greedy_cover_picks_hub(star_graph):
    pool = RRSamplePool(RRSampler(star_graph, seed=1))
    pool.grow(400)
    seeds = rr_greedy_cover(pool, 1)
    assert seeds == [0]


def test_rr_greedy_cover_multiple_seeds(star_graph):
    pool = RRSamplePool(RRSampler(star_graph, seed=2))
    pool.grow(400)
    seeds = rr_greedy_cover(pool, 2)
    assert 0 in seeds
    assert len(seeds) == 2


def test_ris_im_returns_hub_and_spread_estimate(star_graph):
    seeds, spread = ris_im(star_graph, 1, seed=3, max_samples=5000)
    assert seeds == [0]
    exact = spread_exact(star_graph, [0], max_edges=10)
    assert spread == pytest.approx(exact, rel=0.25)


def test_ris_im_validates(star_graph):
    with pytest.raises(SolverError):
        ris_im(star_graph, 0)
    with pytest.raises(SolverError):
        ris_im(star_graph, 1, epsilon=0.0)


def test_ris_im_near_optimal_on_scale_free():
    graph = barabasi_albert_graph(120, 2, directed=False, seed=4)
    assign_weighted_cascade(graph)
    seeds, _ = ris_im(graph, 5, seed=5, max_samples=20_000)
    ours = spread_monte_carlo(graph, seeds, num_trials=800, seed=6)
    # Compare to the high-degree heuristic — RIS should match or beat it.
    from repro.baselines.degree import high_degree_seeds

    hd = spread_monte_carlo(
        graph, high_degree_seeds(graph, 5), num_trials=800, seed=6
    )
    assert ours >= 0.9 * hd


def test_celf_im_matches_ris_on_small_graph(star_graph):
    celf_seeds = celf_im(star_graph, 1, num_trials=300, seed=7)
    assert celf_seeds == [0]


def test_celf_im_k_seeds_distinct(star_graph):
    seeds = celf_im(star_graph, 3, num_trials=100, seed=8)
    assert len(seeds) == len(set(seeds)) == 3


def test_celf_im_validates(star_graph):
    with pytest.raises(SolverError):
        celf_im(star_graph, 0)
    with pytest.raises(SolverError):
        celf_im(star_graph, 1, num_trials=0)
