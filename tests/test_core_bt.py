"""BT (Alg. 4), BT^(d) and MB solver tests."""

import itertools
import math

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.bt import BT, MB, _Collection
from repro.errors import SolverError
from repro.graph.builders import from_edge_list
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler


def _pool_with(samples, communities, num_nodes=12):
    graph = from_edge_list(num_nodes, [])
    pool = RICSamplePool(RICSampler(graph, communities, seed=1))
    for s in samples:
        pool.add(s)
    return pool


@pytest.fixture
def bounded_communities():
    return CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=1.0),
            Community(members=(2, 3), threshold=2, benefit=1.0),
        ]
    )


@pytest.fixture
def bounded_pool(bounded_communities):
    samples = [
        RICSample(0, 2, (0, 1), (frozenset({0, 6}), frozenset({1, 7}))),
        RICSample(0, 2, (0, 1), (frozenset({0, 6}), frozenset({1, 6}))),
        RICSample(1, 2, (2, 3), (frozenset({2, 6}), frozenset({3, 7}))),
    ]
    return _pool_with(samples, bounded_communities)


# ----------------------------------------------------------- _Collection


def test_collection_from_pool(bounded_pool):
    col = _Collection.from_pool(bounded_pool)
    assert len(col) == 3
    assert col.max_threshold() == 2
    assert col.auto_influenced == 0


def test_collection_reduce_by(bounded_pool):
    col = _Collection.from_pool(bounded_pool)
    reduced = col.reduce_by(6)
    # 6 touches all three samples.
    assert len(reduced) == 3
    # Sample 1: both members reached by 6 -> threshold 0 (auto).
    assert reduced.auto_influenced == 1
    # Samples 0 and 2: one member removed, threshold 1 left.
    assert sorted(reduced.thresholds) == [0, 1, 1]


def test_collection_influenced_count_includes_auto(bounded_pool):
    col = _Collection.from_pool(bounded_pool)
    reduced = col.reduce_by(6)
    # 7 covers the remaining member of samples 0 and 2.
    assert reduced.influenced_count([7]) == 3
    assert reduced.influenced_count([]) == 1  # just the auto one


def test_collection_touched_by(bounded_pool):
    col = _Collection.from_pool(bounded_pool)
    assert col.touched_by(6) == [0, 1, 2]
    assert col.touched_by(7) == [0, 2]
    assert col.touched_by(99) == []


# -------------------------------------------------------------------- BT


def test_bt_finds_optimal_pair(bounded_pool):
    result = BT().solve(bounded_pool, 2)
    # {6, 7} influences all 3 samples.
    assert set(result.seeds) == {6, 7}
    assert bounded_pool.influenced_count(result.seeds) == 3


def test_bt_theorem4_guarantee(bounded_pool):
    k = 2
    result = BT().solve(bounded_pool, k)
    best = max(
        bounded_pool.estimate_benefit(combo)
        for combo in itertools.combinations(range(12), k)
    )
    guarantee = (1 - 1 / math.e) / k
    assert result.objective >= guarantee * best - 1e-9


def test_bt_rejects_overbound_thresholds():
    communities = CommunityStructure(
        [Community(members=(0, 1, 2), threshold=3, benefit=1.0)]
    )
    samples = [
        RICSample(
            0,
            3,
            (0, 1, 2),
            (frozenset({0}), frozenset({1}), frozenset({2})),
        )
    ]
    pool = _pool_with(samples, communities)
    with pytest.raises(SolverError, match="max threshold 3"):
        BT(threshold_bound=2).solve(pool, 2)


def test_bt_d3_handles_threshold_3():
    communities = CommunityStructure(
        [Community(members=(0, 1, 2), threshold=3, benefit=1.0)]
    )
    samples = [
        RICSample(
            0,
            3,
            (0, 1, 2),
            (frozenset({0, 5}), frozenset({1, 5}), frozenset({2, 6})),
        ),
    ]
    pool = _pool_with(samples, communities)
    result = BT(threshold_bound=3).solve(pool, 2)
    # {5, 6} covers all three members.
    assert pool.influenced_count(result.seeds) == 1


def test_bt_alpha_formula(bounded_pool):
    assert BT(threshold_bound=2).alpha(bounded_pool, 4) == pytest.approx(
        (1 - 1 / math.e) / 4
    )
    assert BT(threshold_bound=3).alpha(bounded_pool, 4) == pytest.approx(
        (1 - 1 / math.e) / 16
    )


def test_bt_candidate_limit_still_returns(bounded_pool):
    result = BT(candidate_limit=1).solve(bounded_pool, 2)
    assert len(result.seeds) >= 1


def test_bt_invalid_config():
    with pytest.raises(SolverError):
        BT(threshold_bound=0)


def test_bt_validates_k(bounded_pool):
    with pytest.raises(SolverError):
        BT().solve(bounded_pool, 0)


def test_bt_k1(bounded_pool):
    result = BT().solve(bounded_pool, 1)
    assert len(result.seeds) == 1
    # 6 alone fully influences sample 1.
    assert result.objective > 0


# -------------------------------------------------------------------- MB


def test_mb_best_of_both(bounded_pool):
    result = MB(seed=2).solve(bounded_pool, 2)
    assert result.solver == "MB"
    assert result.metadata["arm"] in ("MAF", "BT")
    assert result.objective >= result.metadata["value_maf"] - 1e-12
    assert result.objective >= result.metadata["value_bt"] - 1e-12


def test_mb_theorem5_guarantee(bounded_pool):
    k = 2
    result = MB(seed=3).solve(bounded_pool, k)
    best = max(
        bounded_pool.estimate_benefit(combo)
        for combo in itertools.combinations(range(12), k)
    )
    r = 2
    guarantee = math.sqrt((1 - 1 / math.e) * (k // 2) / (k * r))
    assert result.objective >= guarantee * best - 1e-9


def test_mb_alpha(bounded_pool):
    alpha = MB().alpha(bounded_pool, 4)
    assert alpha == pytest.approx(math.sqrt((1 - 1 / math.e) * 2 / (4 * 2)))


def test_paper_s2_counterexample_mb_still_guarantees():
    """The Theorem 3 discussion's counterexample where top-appearance
    nodes (S2) alone score 0; MB must still do well via its other arms."""
    communities = CommunityStructure(
        [
            Community(members=tuple(range(3 * i, 3 * i + 3)), threshold=2, benefit=1.0)
            for i in range(6)
        ]
    )
    u, v = 18, 19
    samples = []
    for i in range(6):
        members = tuple(range(3 * i, 3 * i + 3))
        hub = u if i < 3 else v
        reaches = tuple(
            frozenset({m, hub}) if j == 0 else frozenset({m})
            for j, m in enumerate(members)
        )
        samples.append(RICSample(i, 2, members, reaches))
    pool = _pool_with(samples, communities, num_nodes=20)
    # S2 = {u, v} influences nothing:
    assert pool.influenced_count([u, v]) == 0
    result = MB(seed=4).solve(pool, 2)
    # MB picks 2 members of one community instead (1 sample influenced).
    assert pool.influenced_count(result.seeds) >= 1
