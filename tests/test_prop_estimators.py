"""Property-based estimator tests.

The Dagum stopping rule and the LT live-edge equivalence, checked over
randomly drawn parameters (coarse tolerances keep runtime modest).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.estimators import (
    dagum_stopping_rule,
    stopping_rule_threshold,
)
from repro.rng import make_rng


@given(
    st.floats(0.05, 0.95),
    st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_dagum_estimates_bernoulli_within_band(p, seed):
    rng = make_rng(seed)
    result = dagum_stopping_rule(
        lambda: 1.0 if rng.random() < p else 0.0, epsilon=0.2, delta=0.1
    )
    assert result.converged
    # ε=0.2, δ=0.1: allow a generous 2ε band so the property test never
    # trips on the permitted δ-probability tail.
    assert result.value == pytest.approx(p, rel=0.4)


@given(st.floats(0.05, 0.6), st.floats(0.02, 0.4))
@settings(max_examples=30, deadline=None)
def test_threshold_monotonicity(epsilon, delta):
    base = stopping_rule_threshold(epsilon, delta)
    assert base > 1.0
    # Tightening either parameter raises the threshold.
    assert stopping_rule_threshold(epsilon / 2, delta) > base
    assert stopping_rule_threshold(epsilon, delta / 2) > base


@given(
    st.floats(0.05, 0.95),
    st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_dagum_trials_scale_inversely_with_mean(p, seed):
    """Smaller means need proportionally more trials (multiplicative
    guarantee), which the stopping rule achieves automatically."""
    rng = make_rng(seed)
    result = dagum_stopping_rule(
        lambda: 1.0 if rng.random() < p else 0.0, epsilon=0.25, delta=0.2
    )
    threshold = stopping_rule_threshold(0.25, 0.2)
    # T must be ~ threshold / p; check the right order of magnitude.
    assert result.trials >= threshold - 1
    assert result.trials <= 8 * threshold / p


@given(
    st.lists(st.floats(0.05, 1.0), min_size=1, max_size=6),
    st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_lt_live_edge_in_degree_invariant(weights, seed):
    """For any valid LT weighting, every live-edge draw keeps at most
    one in-edge per node."""
    from repro.diffusion.linear_threshold import lt_live_edge_graph
    from repro.graph.digraph import DiGraph

    total = sum(weights)
    normalized = [w / max(total, 1.0) for w in weights]
    n = len(weights) + 1
    g = DiGraph(n)
    for i, w in enumerate(normalized):
        g.add_edge(i, n - 1, min(1.0, w))
    live = lt_live_edge_graph(g, seed=seed)
    assert live.in_degree(n - 1) <= 1
