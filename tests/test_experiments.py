"""Experiment harness tests: config, runner, reporting, figure drivers."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ALGORITHMS, ExperimentConfig
from repro.experiments.reporting import ascii_table, format_series
from repro.experiments.runner import (
    AlgorithmRun,
    build_instance,
    make_pool,
    run_algorithm,
    run_suite,
)
from repro.experiments.tables import table1_datasets, table1_text

FAST = dict(
    dataset="facebook", scale=0.08, pool_size=150, eval_trials=60, seed=5
)


# ---------------------------------------------------------------- config


def test_config_defaults_match_paper():
    config = ExperimentConfig()
    assert config.size_cap == 8
    assert config.epsilon == config.delta == 0.2
    assert config.formation == "louvain"


def test_config_validation():
    with pytest.raises(ExperimentError):
        ExperimentConfig(formation="kmeans")
    with pytest.raises(ExperimentError):
        ExperimentConfig(threshold="half")
    with pytest.raises(ExperimentError):
        ExperimentConfig(scale=-1)
    with pytest.raises(ExperimentError):
        ExperimentConfig(pool_size=0)


def test_config_with_overrides():
    config = ExperimentConfig(**FAST)
    other = config.with_overrides(threshold="bounded", size_cap=4)
    assert other.threshold == "bounded"
    assert other.size_cap == 4
    assert other.dataset == config.dataset


def test_algorithm_registry_contains_paper_lineup():
    for name in ("UBG", "MAF", "BT", "MB", "HBC", "KS", "IM"):
        assert name in ALGORITHMS


# ---------------------------------------------------------------- runner


def test_build_instance_louvain():
    graph, communities = build_instance(ExperimentConfig(**FAST))
    assert graph.num_nodes > 0
    assert communities.r >= 2
    communities.validate_against(graph.num_nodes)
    assert all(c.size <= 8 for c in communities)


def test_build_instance_random_formation():
    config = ExperimentConfig(**FAST).with_overrides(
        formation="random", random_communities=10
    )
    graph, communities = build_instance(config)
    # size cap 8 may split the 10 random blocks further
    assert communities.r >= 10


def test_build_instance_bounded_thresholds():
    config = ExperimentConfig(**FAST).with_overrides(threshold="bounded")
    _, communities = build_instance(config)
    assert communities.max_threshold <= 2


def test_build_instance_deterministic():
    a_graph, a_com = build_instance(ExperimentConfig(**FAST))
    b_graph, b_com = build_instance(ExperimentConfig(**FAST))
    assert a_graph == b_graph
    assert [c.members for c in a_com] == [c.members for c in b_com]


def test_make_pool_size():
    config = ExperimentConfig(**FAST)
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config, size=37)
    assert len(pool) == 37


@pytest.mark.parametrize("name", ["UBG", "MAF", "HBC", "KS", "Degree", "Random"])
def test_run_algorithm_each(name):
    config = ExperimentConfig(**FAST)
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config)
    run = run_algorithm(name, graph, communities, 5, config, pool=pool)
    assert isinstance(run, AlgorithmRun)
    assert run.algorithm == name
    assert 0 <= len(run.seeds) <= max(5, communities.max_threshold * communities.r)
    assert run.benefit >= 0.0
    assert run.runtime_seconds >= 0.0


def test_run_algorithm_unknown():
    config = ExperimentConfig(**FAST)
    graph, communities = build_instance(config)
    with pytest.raises(ExperimentError):
        run_algorithm("Oracle", graph, communities, 3, config)


def test_run_suite_shares_pool_and_returns_all():
    config = ExperimentConfig(**FAST)
    results = run_suite(config, ["MAF", "KS"], [3, 6])
    assert set(results) == {"MAF", "KS"}
    assert [r.k for r in results["MAF"]] == [3, 6]


def test_run_suite_quality_orders_sensibly():
    """Our solvers should beat the naive KS baseline at moderate k."""
    config = ExperimentConfig(**FAST).with_overrides(
        pool_size=400, eval_trials=150
    )
    results = run_suite(config, ["UBG", "KS"], [10])
    assert results["UBG"][0].benefit >= results["KS"][0].benefit


# ------------------------------------------------------------- reporting


def test_ascii_table_alignment():
    text = ascii_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert "2.500" in text  # floats get 3 decimals
    assert set(lines[1]) <= {"-", "+"}


def test_format_series():
    text = format_series("k", [5, 10], {"UBG": [1.0, 2.0], "MAF": [0.5, 1.5]})
    assert "k" in text and "UBG" in text and "MAF" in text
    assert "10" in text


# ---------------------------------------------------------------- tables


def test_table1_rows_and_text():
    rows = table1_datasets(scale=0.05, seed=3)
    assert len(rows) == 5
    text = table1_text(scale=0.05, seed=3)
    for name in ("facebook", "wikivote", "epinions", "dblp", "pokec"):
        assert name in text
