"""Property-based tests for partitions, size caps and policies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.communities.random_partition import random_partition
from repro.communities.thresholds import (
    apply_size_cap,
    build_structure,
    constant_thresholds,
    fractional_thresholds,
)


@given(st.integers(1, 60), st.integers(1, 20), st.integers(0, 2**16))
@settings(max_examples=150, deadline=None)
def test_random_partition_always_valid(n, r, seed):
    if r > n:
        r = n
    blocks = random_partition(n, r, seed=seed)
    assert len(blocks) == r
    flat = sorted(v for b in blocks for v in b)
    assert flat == list(range(n))
    assert all(blocks[i] == sorted(blocks[i]) for i in range(r))
    assert all(len(b) >= 1 for b in blocks)


@st.composite
def block_lists(draw):
    n = draw(st.integers(1, 50))
    nodes = list(range(n))
    blocks = []
    idx = 0
    while idx < n:
        size = draw(st.integers(1, min(15, n - idx)))
        blocks.append(nodes[idx : idx + size])
        idx += size
    return blocks


@given(block_lists(), st.integers(1, 12))
@settings(max_examples=150, deadline=None)
def test_size_cap_preserves_membership_and_respects_cap(blocks, cap):
    capped = apply_size_cap(blocks, cap)
    original = sorted(v for b in blocks for v in b)
    result = sorted(v for b in capped for v in b)
    assert original == result
    assert all(1 <= len(b) <= cap for b in capped)


@given(block_lists(), st.integers(1, 12))
@settings(max_examples=100, deadline=None)
def test_size_cap_piece_count_matches_ceiling(blocks, cap):
    import math

    capped = apply_size_cap(blocks, cap)
    expected = sum(math.ceil(len(b) / cap) for b in blocks)
    assert len(capped) == expected


@given(block_lists(), st.integers(1, 10), st.floats(0.1, 1.0))
@settings(max_examples=100, deadline=None)
def test_build_structure_valid_for_any_policy(blocks, cap, fraction):
    structure = build_structure(
        blocks,
        size_cap=cap,
        threshold_policy=fractional_thresholds(fraction),
    )
    for community in structure:
        assert 1 <= community.threshold <= community.size
        assert community.benefit == float(community.size)
    covered = sorted(
        v for community in structure for v in community.members
    )
    assert covered == sorted(v for b in blocks for v in b)


@given(block_lists(), st.integers(1, 5))
@settings(max_examples=100, deadline=None)
def test_bounded_thresholds_never_exceed_bound(blocks, bound):
    structure = build_structure(
        blocks, size_cap=None, threshold_policy=constant_thresholds(bound)
    )
    assert structure.max_threshold <= bound
