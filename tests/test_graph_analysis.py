"""Graph analysis tests: reachability, components, degrees."""

import pytest

from repro.graph.analysis import (
    average_degree,
    degree_histogram,
    forward_reachable,
    max_degree_nodes,
    reverse_reachable,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.builders import from_edge_list
from repro.graph.digraph import DiGraph


@pytest.fixture
def dag():
    # 0 -> 1 -> 3, 0 -> 2 -> 3, 4 isolated
    return from_edge_list(5, [(0, 1), (1, 3), (0, 2), (2, 3)])


def test_forward_reachable(dag):
    assert forward_reachable(dag, [0]) == {0, 1, 2, 3}
    assert forward_reachable(dag, [1]) == {1, 3}
    assert forward_reachable(dag, [4]) == {4}
    assert forward_reachable(dag, [1, 2]) == {1, 2, 3}


def test_forward_reachable_empty_sources(dag):
    assert forward_reachable(dag, []) == set()


def test_reverse_reachable(dag):
    assert reverse_reachable(dag, [3]) == {0, 1, 2, 3}
    assert reverse_reachable(dag, [0]) == {0}
    assert reverse_reachable(dag, [1, 2]) == {0, 1, 2}


def test_weakly_connected_components(dag):
    comps = weakly_connected_components(dag)
    assert len(comps) == 2
    assert comps[0] == {0, 1, 2, 3}  # largest first
    assert comps[1] == {4}


def test_scc_cycle_plus_tail():
    g = from_edge_list(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    comps = strongly_connected_components(g)
    as_sets = sorted(comps, key=lambda s: (-len(s), min(s)))
    assert as_sets[0] == {0, 1, 2}
    assert {3} in comps and {4} in comps


def test_scc_all_singletons_in_dag(dag):
    comps = strongly_connected_components(dag)
    assert sorted(len(c) for c in comps) == [1, 1, 1, 1, 1]


def test_scc_reverse_topological_order():
    g = from_edge_list(3, [(0, 1), (1, 2)])
    comps = strongly_connected_components(g)
    # Tarjan emits sinks first: 2 before 1 before 0.
    order = [min(c) for c in comps]
    assert order == [2, 1, 0]


def test_scc_deep_path_no_recursion_error():
    n = 5000
    g = DiGraph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, 1.0)
    comps = strongly_connected_components(g)
    assert len(comps) == n


def test_degree_histogram(dag):
    out_hist = degree_histogram(dag, "out")
    assert out_hist == {2: 1, 1: 2, 0: 2}
    in_hist = degree_histogram(dag, "in")
    assert in_hist == {0: 2, 1: 2, 2: 1}
    with pytest.raises(ValueError):
        degree_histogram(dag, "sideways")


def test_average_degree(dag):
    assert average_degree(dag) == pytest.approx(4 / 5)
    assert average_degree(DiGraph(0)) == 0.0


def test_max_degree_nodes(dag):
    assert max_degree_nodes(dag, 1, "out") == [0]
    assert max_degree_nodes(dag, 2, "in") == [3, 1]  # ties by id
    with pytest.raises(ValueError):
        max_degree_nodes(dag, 1, "bad")
