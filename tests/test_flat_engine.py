"""FlatCoverage engine and pool compaction unit tests.

The flat engine must be behaviourally indistinguishable from
``CoverageState``/``BitsetCoverage`` (the hypothesis suite cross-checks
random pools; here we pin the engine-specific mechanics: compilation,
sync guards, resync after growth, and the compaction contract).
"""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.bitset_engine import BitsetCoverage
from repro.core.flat_engine import FlatCoverage
from repro.core.objective import CoverageState, evaluate_benefit
from repro.core.ubg import UBG
from repro.errors import SolverError
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler


def build_pool(samples=120, seed=3):
    graph, blocks = planted_partition_graph(
        [8] * 4, p_in=0.4, p_out=0.03, directed=True, seed=13
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    pool = RICSamplePool(RICSampler(graph.freeze(), communities, seed=seed))
    pool.grow(samples)
    return pool


def tiny_pool():
    communities = CommunityStructure(
        [Community(members=(0, 1), threshold=2, benefit=3.0)]
    )
    pool = RICSamplePool(RICSampler(DiGraph(6), communities, seed=0))
    pool.add(
        RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 4})))
    )
    pool.add(
        RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 4})))
    )
    return pool


def test_flat_matches_reference_on_every_gain():
    pool = build_pool()
    reference = CoverageState(pool)
    flat = FlatCoverage(pool)
    nodes = pool.touching_nodes()
    for _ in range(4):
        for v in nodes:
            assert flat.gain_pair(v) == reference.gain_pair(v)
        best = max(
            (v for v in nodes if v not in reference.seeds),
            key=lambda v: reference.gain_pair(v),
        )
        reference.add_seed(best)
        flat.add_seed(best)
        assert flat.influenced_count == reference.influenced_count
        assert flat.fractional_count == pytest.approx(
            reference.fractional_count
        )
        assert flat.estimate_benefit() == pytest.approx(
            reference.estimate_benefit()
        )
        assert flat.estimate_upper_bound() == pytest.approx(
            reference.estimate_upper_bound()
        )


def test_flat_rejects_duplicate_seed_and_unknown_node_is_zero():
    pool = build_pool(samples=40)
    flat = FlatCoverage(pool)
    node = pool.touching_nodes()[0]
    flat.add_seed(node)
    with pytest.raises(SolverError):
        flat.add_seed(node)
    assert flat.gain_pair(node) == (0, 0.0)
    # A node touching no sample gains nothing (and is not an error).
    untouched = max(pool.touching_nodes()) + 1
    assert flat.gain_pair(untouched) == (0, 0.0)
    assert flat.gain_influenced(untouched) == 0
    assert flat.gain_fractional(untouched) == 0.0


def test_flat_stale_pool_guard_and_resync():
    pool = build_pool(samples=60)
    flat = FlatCoverage(pool)
    node = pool.touching_nodes()[0]
    flat.add_seed(node)
    pool.grow(40)
    with pytest.raises(SolverError):
        flat.gain_pair(node)
    with pytest.raises(SolverError):
        flat.estimate_benefit()
    flat.resync()
    fresh = CoverageState(pool)
    fresh.add_seed(node)
    assert flat.influenced_count == fresh.influenced_count
    for v in pool.touching_nodes():
        assert flat.gain_pair(v) == fresh.gain_pair(v)
    flat.resync()  # no-op when already synced


def test_flat_on_empty_pool():
    communities = CommunityStructure(
        [Community(members=(0,), threshold=1, benefit=1.0)]
    )
    pool = RICSamplePool(RICSampler(DiGraph(2), communities, seed=0))
    flat = FlatCoverage(pool)
    assert flat.estimate_benefit() == 0.0
    assert flat.estimate_upper_bound() == 0.0
    assert flat.gain_pair(0) == (0, 0.0)


def test_compact_interns_duplicate_reach_sets():
    pool = tiny_pool()
    first, second = pool.samples
    assert first.reach_sets[0] is not second.reach_sets[0]
    stats = pool.compact()
    assert stats["reach_sets"] == 4
    assert stats["unique_reach_sets"] == 2
    assert stats["interned_duplicates"] == 2
    first, second = pool.samples
    assert first.reach_sets[0] is second.reach_sets[0]
    assert first.reach_sets[1] is second.reach_sets[1]
    # Idempotent: a second pass finds nothing left to intern.
    again = pool.compact()
    assert again["interned_duplicates"] == 0


def test_compact_seals_coverage_then_add_thaws():
    pool = tiny_pool()
    pool.compact()
    assert isinstance(pool.coverage_of(0), tuple)
    snapshot = pool.influenced_count([0, 1])
    pool.add(
        RICSample(0, 2, (0, 1), (frozenset({0}), frozenset({1})))
    )
    assert pool.influenced_count([0, 1]) == snapshot + 1
    # The thawed entry is a list again and indexes the new sample.
    assert pool.coverage_of(0)[-1] == (2, 0)


def test_compact_preserves_objectives_and_selection():
    pool = build_pool(samples=150)
    seeds_before = UBG().solve(pool, 4).seeds
    benefit_before = pool.estimate_benefit(seeds_before)
    pool.compact()
    assert UBG().solve(pool, 4).seeds == seeds_before
    assert pool.estimate_benefit(seeds_before) == benefit_before


def test_evaluate_benefit_identical_across_engines():
    pool = build_pool(samples=100)
    seeds = pool.touching_nodes()[:5]
    reference = evaluate_benefit(pool, seeds, "reference")
    assert evaluate_benefit(pool, seeds, "bitset") == reference
    assert evaluate_benefit(pool, seeds, "flat") == reference
    assert evaluate_benefit(pool, [], "flat") == 0.0
    with pytest.raises(SolverError):
        evaluate_benefit(pool, seeds, "warp-drive")


def test_solvers_accept_flat_engine():
    pool = build_pool(samples=120)
    default = UBG().solve(pool, 5)
    flat = UBG(engine="flat").solve(pool, 5)
    assert flat.seeds == default.seeds
    assert flat.objective == pytest.approx(default.objective)
    with pytest.raises(SolverError):
        UBG(engine="nope").solve(pool, 5)


def test_bitset_and_flat_agree_after_interleaved_growth():
    pool = build_pool(samples=80)
    bitset = BitsetCoverage(pool)
    flat = FlatCoverage(pool)
    for round_idx in range(3):
        pool.grow(30)
        bitset.resync()
        flat.resync()
        for v in pool.touching_nodes():
            assert flat.gain_pair(v) == bitset.gain_pair(v)
        seed = pool.touching_nodes()[round_idx * 3]
        if seed not in flat.seeds:
            bitset.add_seed(seed)
            flat.add_seed(seed)
    assert flat.influenced_count == bitset.influenced_count
