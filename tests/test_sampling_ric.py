"""RIC sampling tests (Algorithm 1), including unbiasedness (Lemma 1)."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.diffusion.simulator import community_benefit_exact
from repro.errors import SamplingError
from repro.graph.builders import from_edge_list
from repro.rng import make_rng
from repro.sampling.ric import RICSample, RICSampler


@pytest.fixture
def small_instance():
    """4-node graph: 0 -> 2, 1 -> 3, 2 -> 3; community {2, 3}, h=2."""
    graph = from_edge_list(4, [(0, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)])
    communities = CommunityStructure(
        [Community(members=(2, 3), threshold=2, benefit=1.0)]
    )
    return graph, communities


# -------------------------------------------------------------- RICSample


def test_ric_sample_validation():
    with pytest.raises(SamplingError):
        RICSample(0, 1, members=(1, 2), reach_sets=(frozenset({1}),))
    with pytest.raises(SamplingError):
        RICSample(0, 3, members=(1, 2), reach_sets=(frozenset(), frozenset()))


def test_ric_sample_covered_and_influenced():
    sample = RICSample(
        community_index=0,
        threshold=2,
        members=(10, 11),
        reach_sets=(frozenset({10, 1}), frozenset({11, 2})),
    )
    assert sample.covered_members([1]) == 1
    assert sample.covered_members([1, 2]) == 2
    assert not sample.is_influenced_by([1])
    assert sample.is_influenced_by([1, 2])
    assert sample.is_influenced_by([10, 11])
    assert not sample.is_influenced_by([])


def test_ric_sample_touched_nodes():
    sample = RICSample(
        community_index=0,
        threshold=1,
        members=(5,),
        reach_sets=(frozenset({5, 7, 9}),),
    )
    assert sample.touched_nodes() == {5, 7, 9}


# -------------------------------------------------------------- sampler


def test_member_always_in_own_reach_set(small_instance):
    graph, communities = small_instance
    sampler = RICSampler(graph, communities, seed=1)
    for _ in range(20):
        sample = sampler.sample()
        for member, reach in zip(sample.members, sample.reach_sets):
            assert member in reach


def test_reach_sets_only_contain_reverse_reachable_nodes(small_instance):
    graph, communities = small_instance
    sampler = RICSampler(graph, communities, seed=2)
    # Structurally, only {0, 2} can ever reach 2, and {0, 1, 2, 3} can reach 3.
    for _ in range(50):
        sample = sampler.sample()
        reach_2 = sample.reach_sets[sample.members.index(2)]
        reach_3 = sample.reach_sets[sample.members.index(3)]
        assert reach_2 <= {0, 2}
        assert reach_3 <= {0, 1, 2, 3}


def test_forced_source_community(small_instance):
    graph, communities = small_instance
    sampler = RICSampler(graph, communities, seed=3)
    sample = sampler.sample(community_index=0)
    assert sample.community_index == 0
    assert sample.threshold == communities[0].threshold
    assert sample.members == communities[0].members


def test_source_distribution_follows_benefits():
    graph = from_edge_list(4, [])
    communities = CommunityStructure(
        [
            Community(members=(0,), threshold=1, benefit=3.0),
            Community(members=(1,), threshold=1, benefit=1.0),
        ]
    )
    sampler = RICSampler(graph, communities, seed=4)
    counts = [0, 0]
    trials = 20_000
    for _ in range(trials):
        counts[sampler.sample().community_index] += 1
    assert counts[0] / trials == pytest.approx(0.75, abs=0.02)


def test_edge_memoization_consistency():
    """A shared edge must have ONE realisation per sample: reach sets of
    different members never disagree about the same edge."""
    # 0 -> 1 and 0 -> 2; community {1, 2}. If 0 in R(1) it's because edge
    # (0,1) realised — independent of (0,2). Build a diamond where the
    # same edge feeds both members: 3 -> 0, 0 -> 1, 0 -> 2.
    graph = from_edge_list(4, [(3, 0, 0.5), (0, 1, 0.5), (0, 2, 0.5)])
    communities = CommunityStructure(
        [Community(members=(1, 2), threshold=1, benefit=1.0)]
    )
    sampler = RICSampler(graph, communities, seed=5)
    for _ in range(200):
        sample = sampler.sample()
        reach_1, reach_2 = sample.reach_sets
        # If 0 reaches both members, the (3,0) coin is shared: node 3
        # must appear in both reach sets or in neither.
        if 0 in reach_1 and 0 in reach_2:
            assert (3 in reach_1) == (3 in reach_2)


def test_unbiasedness_lemma1(small_instance):
    """Lemma 1: c(S) = b * E[X_g(S)], validated against exact enumeration."""
    graph, communities = small_instance
    sampler = RICSampler(graph, communities, seed=6)
    trials = 30_000
    for seeds in ([0, 1], [2], [1, 2], [0, 1, 2]):
        exact = community_benefit_exact(graph, communities, seeds)
        hits = sum(
            sampler.sample().is_influenced_by(seeds) for _ in range(trials)
        )
        estimate = communities.total_benefit * hits / trials
        assert estimate == pytest.approx(exact, abs=0.015), seeds


def test_unbiasedness_multiple_communities():
    graph = from_edge_list(
        5, [(0, 1, 0.4), (0, 2, 0.6), (3, 4, 0.5)]
    )
    communities = CommunityStructure(
        [
            Community(members=(1, 2), threshold=1, benefit=2.0),
            Community(members=(4,), threshold=1, benefit=1.0),
        ]
    )
    sampler = RICSampler(graph, communities, seed=7)
    trials = 40_000
    for seeds in ([0], [3], [0, 3]):
        exact = community_benefit_exact(graph, communities, seeds)
        hits = sum(
            sampler.sample().is_influenced_by(seeds) for _ in range(trials)
        )
        estimate = communities.total_benefit * hits / trials
        assert estimate == pytest.approx(exact, abs=0.03), seeds


def test_sample_many(small_instance):
    graph, communities = small_instance
    sampler = RICSampler(graph, communities, seed=8)
    samples = sampler.sample_many(25)
    assert len(samples) == 25
    with pytest.raises(SamplingError):
        sampler.sample_many(-1)


def test_sampler_validates_community_node_ids():
    graph = from_edge_list(2, [(0, 1, 0.5)])
    communities = CommunityStructure(
        [Community(members=(5,), threshold=1, benefit=1.0)]
    )
    from repro.errors import CommunityError

    with pytest.raises(CommunityError):
        RICSampler(graph, communities, seed=1)


def test_sampler_deterministic_with_seed(small_instance):
    graph, communities = small_instance
    a = RICSampler(graph, communities, seed=11).sample_many(10)
    b = RICSampler(graph, communities, seed=11).sample_many(10)
    assert a == b


# ------------------------------------------- zero-benefit source regression


class _FixedRng:
    """Stub RNG whose random() returns a fixed value (regression probe)."""

    def __init__(self, value):
        self.value = value

    def random(self):
        return self.value


def test_zero_benefit_community_never_picked_at_draw_zero():
    """rng.random() == 0.0 used to select a zero-benefit community whose
    CDF entry duplicated its predecessor's; they are now excluded from
    the cumulative table entirely."""
    graph = from_edge_list(3, [])
    communities = CommunityStructure(
        [
            Community(members=(0,), threshold=1, benefit=0.0),
            Community(members=(1,), threshold=1, benefit=2.0),
            Community(members=(2,), threshold=1, benefit=0.0),
        ]
    )
    sampler = RICSampler(graph, communities, seed=1)
    assert sampler._pick_source(_FixedRng(0.0)) == 1
    # The boundary shared with a zero-benefit successor is also safe.
    for value in (0.0, 0.25, 0.5, 0.999999):
        assert sampler._pick_source(_FixedRng(value)) == 1


def test_zero_benefit_interior_community_skipped():
    graph = from_edge_list(4, [])
    communities = CommunityStructure(
        [
            Community(members=(0,), threshold=1, benefit=1.0),
            Community(members=(1,), threshold=1, benefit=0.0),
            Community(members=(2,), threshold=1, benefit=1.0),
            Community(members=(3,), threshold=1, benefit=2.0),
        ]
    )
    sampler = RICSampler(graph, communities, seed=2)
    picked = {sampler.sample().community_index for _ in range(2000)}
    assert 1 not in picked
    assert picked == {0, 2, 3}


def test_all_zero_benefits_rejected():
    graph = from_edge_list(2, [])
    communities = CommunityStructure(
        [
            Community(members=(0,), threshold=1, benefit=0.0),
            Community(members=(1,), threshold=1, benefit=0.0),
        ]
    )
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        RICSampler(graph, communities, seed=1)


# ------------------------------------------- per-sample child streams


def test_sample_from_seed_is_pure(small_instance):
    graph, communities = small_instance
    sampler = RICSampler(graph, communities, seed=17)
    child = sampler.next_sample_seed()
    first = sampler.sample_from_seed(child)
    # Repeated materialisation is identical and does not advance the
    # master stream.
    assert sampler.sample_from_seed(child) == first
    replay = RICSampler(graph, communities, seed=17)
    assert replay.sample() == first


def test_predrawn_seeds_replay_sample_many(small_instance):
    graph, communities = small_instance
    sampler = RICSampler(graph, communities, seed=29)
    seeds = [sampler.next_sample_seed() for _ in range(15)]
    materialised = [sampler.sample_from_seed(s) for s in seeds]
    assert materialised == RICSampler(
        graph, communities, seed=29
    ).sample_many(15)
