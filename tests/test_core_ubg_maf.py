"""UBG (Alg. 2) and MAF (Alg. 3) solver tests."""

import math

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.maf import MAF
from repro.core.ubg import UBG, GreedyC
from repro.errors import SolverError
from repro.graph.builders import from_edge_list
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler


def _pool_with(samples, communities, num_nodes=12):
    graph = from_edge_list(num_nodes, [])
    pool = RICSamplePool(RICSampler(graph, communities, seed=1))
    for s in samples:
        pool.add(s)
    return pool


@pytest.fixture
def simple_communities():
    return CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=2.0),
            Community(members=(2, 3), threshold=1, benefit=1.0),
        ]
    )


@pytest.fixture
def simple_pool(simple_communities):
    samples = [
        RICSample(0, 2, (0, 1), (frozenset({0, 6}), frozenset({1, 6}))),
        RICSample(0, 2, (0, 1), (frozenset({0, 6}), frozenset({1, 7}))),
        RICSample(1, 1, (2, 3), (frozenset({2, 8}), frozenset({3}))),
        RICSample(1, 1, (2, 3), (frozenset({2, 8}), frozenset({3, 6}))),
    ]
    return _pool_with(samples, simple_communities)


# ------------------------------------------------------------------ UBG


def test_ubg_returns_selection_with_metadata(simple_pool):
    result = UBG().solve(simple_pool, 2)
    assert result.solver == "UBG"
    assert 0 < len(result.seeds) <= 2
    assert result.objective == pytest.approx(
        simple_pool.estimate_benefit(result.seeds)
    )
    meta = result.metadata
    assert 0.0 <= meta["sandwich_ratio"] <= 1.0 + 1e-9
    assert meta["arm"] in ("c-greedy", "nu-greedy")
    assert meta["num_samples"] == 4


def test_ubg_beats_or_matches_each_arm(simple_pool):
    result = UBG().solve(simple_pool, 2)
    assert result.objective >= result.metadata["value_nu_arm"] - 1e-12
    if result.metadata["value_c_arm"] is not None:
        assert result.objective >= result.metadata["value_c_arm"] - 1e-12


def test_ubg_single_node_influences_h2_sample(simple_pool):
    # Node 6 covers both members of the first sample.
    result = UBG().solve(simple_pool, 1)
    assert result.objective > 0


def test_ubg_nu_only_variant(simple_pool):
    result = UBG(run_c_greedy=False).solve(simple_pool, 2)
    assert result.metadata["arm"] == "nu-greedy"
    assert result.metadata["value_c_arm"] is None


def test_ubg_eager_matches_lazy(simple_pool):
    lazy = UBG(lazy=True).solve(simple_pool, 2)
    eager = UBG(lazy=False).solve(simple_pool, 2)
    assert lazy.objective == pytest.approx(eager.objective)


def test_ubg_alpha_is_one_minus_inv_e(simple_pool):
    assert UBG().alpha(simple_pool, 3) == pytest.approx(1 - 1 / math.e)


def test_ubg_validates_k(simple_pool):
    with pytest.raises(SolverError):
        UBG().solve(simple_pool, 0)


def test_ubg_callable(simple_pool):
    assert UBG()(simple_pool, 1).solver == "UBG"


def test_ubg_sandwich_guarantee_on_sampled_instance():
    """UBG's data-dependent guarantee holds against brute force:
    ĉ(S_UBG) >= ratio * (1-1/e) * ĉ(OPT)."""
    import itertools

    graph = from_edge_list(
        10, [(i, j, 0.5) for i in range(4) for j in range(4, 10) if (i * j) % 2 == 0]
    )
    communities = CommunityStructure(
        [
            Community(members=(4, 5, 6), threshold=2, benefit=1.0),
            Community(members=(7, 8, 9), threshold=2, benefit=1.0),
        ]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=3))
    pool.grow(200)
    k = 2
    result = UBG().solve(pool, k)
    best = max(
        pool.estimate_benefit(combo)
        for combo in itertools.combinations(range(10), k)
    )
    ratio = result.metadata["sandwich_ratio"]
    assert result.objective >= ratio * (1 - 1 / math.e) * best - 1e-9


# ------------------------------------------------------------------ MAF


def test_maf_result_structure(simple_pool):
    result = MAF(seed=2).solve(simple_pool, 2)
    assert result.solver == "MAF"
    assert result.metadata["arm"] in ("S1-communities", "S2-nodes")
    assert result.objective == pytest.approx(
        simple_pool.estimate_benefit(result.seeds)
    )


def test_maf_s1_prefers_frequent_communities(simple_communities):
    # Community 0 is the source of 3 of 4 samples.
    samples = [
        RICSample(0, 2, (0, 1), (frozenset({0}), frozenset({1}))),
        RICSample(0, 2, (0, 1), (frozenset({0}), frozenset({1}))),
        RICSample(0, 2, (0, 1), (frozenset({0}), frozenset({1}))),
        RICSample(1, 1, (2, 3), (frozenset({2}), frozenset({3}))),
    ]
    pool = _pool_with(samples, simple_communities)
    solver = MAF(seed=3)
    s1 = solver._build_s1(pool, 2)
    assert set(s1) == {0, 1}  # threshold-2 community fully seeded


def test_maf_s2_is_top_touch_count(simple_pool):
    solver = MAF(seed=4)
    s2 = solver._build_s2(simple_pool, 2)
    # Node 6 touches 3 samples; nodes 0/1/2/3/8 tie at 2 and the
    # smallest id wins the tie.
    assert s2 == [6, 0]


def test_maf_returns_better_arm(simple_pool):
    result = MAF(seed=5).solve(simple_pool, 2)
    assert result.objective >= result.metadata["value_s1"] - 1e-12
    assert result.objective >= result.metadata["value_s2"] - 1e-12


def test_maf_theorem3_guarantee_brute_force():
    """ĉ(S_MAF) >= (⌊k/h⌋/r)·ĉ(OPT) on an exhaustive tiny instance."""
    import itertools

    communities = CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=1.0),
            Community(members=(2, 3), threshold=2, benefit=1.0),
        ]
    )
    samples = [
        RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 4}))),
        RICSample(1, 2, (2, 3), (frozenset({2, 5}), frozenset({3}))),
        RICSample(0, 2, (0, 1), (frozenset({0}), frozenset({1}))),
    ]
    pool = _pool_with(samples, communities, num_nodes=8)
    k = 2
    result = MAF(seed=6).solve(pool, k)
    best = max(
        pool.estimate_benefit(combo)
        for combo in itertools.combinations(range(8), k)
    )
    h = communities.max_threshold
    guarantee = (k // h) / communities.r
    assert result.objective >= guarantee * best - 1e-9


def test_maf_alpha(simple_pool):
    solver = MAF()
    # h=2, r=2 -> floor(4/2)/2 = 1.
    assert solver.alpha(simple_pool, 4) == pytest.approx(1.0)
    assert solver.alpha(simple_pool, 1) == 0.0  # k < h


def test_maf_deterministic_given_seed(simple_pool):
    a = MAF(seed=9).solve(simple_pool, 2)
    b = MAF(seed=9).solve(simple_pool, 2)
    assert a.seeds == b.seeds


def test_maf_validates_k(simple_pool):
    with pytest.raises(SolverError):
        MAF().solve(simple_pool, 0)


# -------------------------------------------------------------- GreedyC


def test_greedy_c_standalone(simple_pool):
    result = GreedyC().solve(simple_pool, 2)
    assert result.solver == "GreedyC"
    assert result.objective > 0
    assert GreedyC().alpha(simple_pool, 2) > 0
