"""Integration tests: the full IMC pipeline end to end."""

import itertools

import pytest

from repro.baselines import hbc_seeds, im_seeds, ks_seeds
from repro.communities.louvain import louvain_communities
from repro.communities.structure import Community, CommunityStructure
from repro.communities.thresholds import build_structure, constant_thresholds
from repro.core.bt import BT, MB
from repro.core.framework import solve_imc
from repro.core.maf import MAF
from repro.core.ubg import UBG
from repro.diffusion.simulator import (
    BenefitEvaluator,
    community_benefit_monte_carlo,
    spread_monte_carlo,
)
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.im.ris_im import ris_im
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler


@pytest.fixture(scope="module")
def pipeline_instance():
    graph, blocks = planted_partition_graph(
        [6] * 8, p_in=0.5, p_out=0.02, directed=True, seed=3
    )
    assign_weighted_cascade(graph)
    detected = louvain_communities(graph, seed=3)
    communities = build_structure(
        detected, size_cap=8, threshold_policy=constant_thresholds(2)
    )
    return graph, communities


@pytest.mark.parametrize(
    "solver_factory",
    [
        lambda: UBG(),
        lambda: MAF(seed=1),
        lambda: BT(candidate_limit=20),
        lambda: MB(candidate_limit=20, seed=1),
    ],
    ids=["UBG", "MAF", "BT", "MB"],
)
def test_imcaf_with_every_solver(pipeline_instance, solver_factory):
    graph, communities = pipeline_instance
    result = solve_imc(
        graph,
        communities,
        k=6,
        solver=solver_factory(),
        seed=9,
        max_samples=4000,
    )
    assert 1 <= len(result.selection.seeds) <= 6
    evaluator = BenefitEvaluator(graph, communities, num_trials=400, seed=11)
    benefit = evaluator(result.selection.seeds)
    # Sanity: positive and consistent with the pool estimate (loose band).
    assert benefit > 0
    assert benefit <= communities.total_benefit
    assert result.selection.objective == pytest.approx(benefit, rel=0.5)


def test_solvers_beat_naive_baselines(pipeline_instance):
    graph, communities = pipeline_instance
    k = 8
    evaluator = BenefitEvaluator(graph, communities, num_trials=500, seed=21)
    ubg = solve_imc(
        graph, communities, k=k, solver=UBG(), seed=5, max_samples=4000
    )
    ubg_benefit = evaluator(ubg.selection.seeds)
    ks_benefit = evaluator(ks_seeds(communities, k))
    assert ubg_benefit >= ks_benefit * 0.95  # UBG ~matches or beats KS


def test_imc_beats_plain_im_on_community_objective(pipeline_instance):
    """The paper's central claim: community-aware seeding wins on c(S)."""
    graph, communities = pipeline_instance
    k = 8
    evaluator = BenefitEvaluator(graph, communities, num_trials=600, seed=31)
    ubg = solve_imc(
        graph, communities, k=k, solver=UBG(), seed=6, max_samples=6000
    )
    im = im_seeds(graph, k, seed=6, max_samples=6000)
    assert evaluator(ubg.selection.seeds) >= 0.95 * evaluator(im)


def test_im_special_case_reduction():
    """IMC with singleton communities and h=1 IS classic IM: the UBG
    solution's spread must be close to the RIS-IM solution's spread."""
    graph, _ = planted_partition_graph(
        [5] * 6, p_in=0.5, p_out=0.05, directed=True, seed=8
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=(v,), threshold=1, benefit=1.0)
            for v in range(graph.num_nodes)
        ]
    )
    k = 5
    result = solve_imc(
        graph, communities, k=k, solver=UBG(), seed=9, max_samples=8000
    )
    im, _ = ris_im(graph, k, seed=9, max_samples=8000)
    ours = spread_monte_carlo(graph, result.selection.seeds, num_trials=800, seed=10)
    theirs = spread_monte_carlo(graph, im, num_trials=800, seed=10)
    assert ours >= 0.9 * theirs
    # And c(S) == sigma(S) in this reduction (unit benefit per node).
    c_value = community_benefit_monte_carlo(
        graph, communities, result.selection.seeds, num_trials=800, seed=10
    )
    assert c_value == pytest.approx(ours, rel=0.1)


def test_tiny_instance_exhaustive_cross_check():
    """On a tiny instance all solvers stay within their guarantees of
    the exhaustively optimal pool objective."""
    graph, blocks = planted_partition_graph(
        [3] * 3, p_in=0.8, p_out=0.1, directed=True, seed=12
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [Community(members=tuple(b), threshold=2, benefit=1.0) for b in blocks]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=13))
    pool.grow(300)
    k = 2
    best = max(
        pool.estimate_benefit(c)
        for c in itertools.combinations(range(graph.num_nodes), k)
    )
    for solver in (UBG(), MAF(seed=2), BT(), MB(seed=2)):
        value = solver.solve(pool, k).objective
        assert value >= 0.4 * best, solver.name  # all far above worst case


def test_full_pipeline_louvain_to_seeds(pipeline_instance):
    """Smoke the exact quickstart pipeline: graph -> Louvain ->
    structure -> IMCAF -> evaluation, all deterministic under seeds."""
    graph, communities = pipeline_instance
    first = solve_imc(
        graph, communities, k=4, solver=MAF(seed=3), seed=14, max_samples=3000
    )
    second = solve_imc(
        graph, communities, k=4, solver=MAF(seed=3), seed=14, max_samples=3000
    )
    assert first.selection.seeds == second.selection.seeds


def test_hbc_runs_on_pipeline_instance(pipeline_instance):
    graph, communities = pipeline_instance
    seeds = hbc_seeds(graph, communities, 5)
    assert len(seeds) == 5
    evaluator = BenefitEvaluator(graph, communities, num_trials=200, seed=15)
    assert evaluator(seeds) > 0
