"""End-to-end instrumentation tests through the CLI and solve_imc.

The contract under test: instrumentation is opt-in, changes no result
(byte-identical solver output), and when opted in leaves a complete
artifact set — streaming span trace, metrics dump, and a run manifest —
that ``python -m repro report`` can render.
"""

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.obs import enable, disable, read_jsonl, load_manifest, session

pytestmark = pytest.mark.obs

SOLVE_ARGS = [
    "solve",
    "--dataset",
    "facebook",
    "--scale",
    "0.08",
    "--solver",
    "UBG",
    "--k",
    "3",
    "--max-samples",
    "600",
    "--eval-trials",
    "0",
    "--seed",
    "4",
]


def _result_lines(text):
    """The lines that must be invariant under instrumentation (drop
    throughput and artifact-path reporting)."""
    return [
        line
        for line in text.splitlines()
        if not line.startswith(("sampling:", "manifest:"))
    ]


def test_solve_trace_out_produces_full_artifact_set(capsys, tmp_path):
    trace_path = tmp_path / "run.jsonl"
    metrics_path = tmp_path / "run.metrics.jsonl"
    code = main(
        SOLVE_ARGS
        + ["--trace-out", str(trace_path), "--metrics-out", str(metrics_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "seeds:" in out
    assert f"manifest: {tmp_path / 'run.manifest.json'}" in out

    # The streamed trace covers sampling, selection and evaluation.
    records = read_jsonl(str(trace_path))
    names = {r["name"] for r in records if r.get("type") == "span"}
    assert "ric/sample_many" in names
    assert "imc/select" in names
    assert "imc/evaluate" in names
    assert {"ubg/nu_arm", "ubg/c_arm"} <= names

    # The metrics dump carries the sampling counter.
    metric_records = read_jsonl(str(metrics_path))
    counters = {
        r["name"]: r["value"]
        for r in metric_records
        if r["type"] == "counter"
    }
    assert counters["ric.samples.generated"] > 0

    # The manifest binds it together: command, seeds, phases, artifacts.
    manifest = load_manifest(str(tmp_path / "run.manifest.json"))
    assert manifest["command"] == "solve"
    assert manifest["seeds"] == {"seed": 4}
    assert manifest["config"]["solver"] == "UBG"
    assert manifest["phase_timings"]["imc/select"]["count"] >= 1
    assert manifest["artifacts"] == {
        "trace": str(trace_path),
        "metrics": str(metrics_path),
    }


def test_instrumentation_does_not_change_results(capsys, tmp_path):
    assert main(SOLVE_ARGS) == 0
    plain = capsys.readouterr().out
    assert (
        main(SOLVE_ARGS + ["--trace-out", str(tmp_path / "t.jsonl")]) == 0
    )
    traced = capsys.readouterr().out
    assert _result_lines(plain) == _result_lines(traced)


def test_report_renders_manifest_and_trace(capsys, tmp_path):
    trace_path = tmp_path / "run.jsonl"
    assert main(SOLVE_ARGS + ["--trace-out", str(trace_path)]) == 0
    capsys.readouterr()

    assert main(["report", str(tmp_path / "run.manifest.json")]) == 0
    report = capsys.readouterr().out
    assert "command: solve" in report
    assert "phase timings" in report
    assert "imc/select" in report

    assert main(["report", str(trace_path)]) == 0
    trace_report = capsys.readouterr().out
    assert "spans" in trace_report
    assert "ric/sample_many" in trace_report


def test_report_on_missing_file_is_a_cli_error(capsys, tmp_path):
    assert main(["report", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_sessions_do_not_nest():
    with session():
        with pytest.raises(ObservabilityError, match="already active"):
            enable()
    with pytest.raises(ObservabilityError, match="no instrumentation"):
        disable()


def test_compare_trace_out_writes_manifest(capsys, tmp_path):
    trace_path = tmp_path / "cmp.jsonl"
    code = main(
        [
            "compare",
            "--scale",
            "0.08",
            "--algorithms",
            "MAF",
            "--k",
            "3",
            "--pool-size",
            "100",
            "--eval-trials",
            "20",
            "--trace-out",
            str(trace_path),
        ]
    )
    assert code == 0
    names = {
        r["name"]
        for r in read_jsonl(str(trace_path))
        if r.get("type") == "span"
    }
    assert "experiment/run_algorithm" in names
    assert "experiment/evaluate" in names
    manifest = load_manifest(str(tmp_path / "cmp.manifest.json"))
    assert manifest["command"] == "compare"


def test_cli_adaptive_solve_records_estimator_everywhere(capsys, tmp_path):
    """--ci-width stops early on an easy instance; the manifest gains
    the estimator block, the metrics dump records samples.used below
    the configured cap, and report renders the trajectory."""
    metrics_path = tmp_path / "run.metrics.jsonl"
    code = main(
        SOLVE_ARGS
        + [
            "--ci-width",
            "0.3",
            "--min-samples",
            "50",
            "--max-samples",
            "50000",
            "--metrics-out",
            str(metrics_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "adaptive sampling converged" in out
    assert "estimator: ĉ(S) =" in out

    gauges = {
        r["name"]: r["value"]
        for r in read_jsonl(str(metrics_path))
        if r["type"] == "gauge"
    }
    assert 0 < gauges["estimator.samples.used"] < 50_000

    manifest = load_manifest(str(tmp_path / "run.metrics.manifest.json"))
    block = manifest["estimator"]
    assert block["converged"] is True
    assert block["samples"] == gauges["estimator.samples.used"]
    assert block["criterion"]["ci_width"] == 0.3

    assert main(["report", str(tmp_path / "run.metrics.manifest.json")]) == 0
    report = capsys.readouterr().out
    assert "estimator:" in report
    assert "trajectory:" in report
    assert "converged" in report


def test_cli_monitor_flag_is_byte_identical(capsys):
    assert main(SOLVE_ARGS) == 0
    plain = capsys.readouterr().out
    assert main(SOLVE_ARGS + ["--monitor"]) == 0
    monitored = capsys.readouterr().out
    # The monitored run prints one extra estimator line; everything
    # else — seeds, stop reason, objective — is identical.
    extra = [
        line
        for line in _result_lines(monitored)
        if line not in _result_lines(plain)
    ]
    assert all(line.startswith("estimator:") for line in extra)
    assert [
        line
        for line in _result_lines(monitored)
        if not line.startswith("estimator:")
    ] == _result_lines(plain)


def test_cli_metrics_format_prom(capsys, tmp_path):
    prom_path = tmp_path / "run.prom"
    code = main(
        SOLVE_ARGS
        + ["--metrics-out", str(prom_path), "--metrics-format", "prom"]
    )
    assert code == 0
    text = prom_path.read_text()
    assert "# TYPE ric_samples_generated_total counter" in text
    assert "ric_samples_generated_total" in text


def test_report_renders_metrics_dump_with_bucket_tables(capsys, tmp_path):
    metrics_path = tmp_path / "run.metrics.jsonl"
    assert (
        main(
            SOLVE_ARGS
            + ["--monitor", "--metrics-out", str(metrics_path)]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["report", str(metrics_path)]) == 0
    report = capsys.readouterr().out
    assert report.startswith("metrics:")
    assert "ric.samples.generated" in report
    assert "pool.reach.histogram" in report
    assert "<= 1" in report  # the per-bucket table rows


def test_bench_record_refuses_dirty_tree(capsys, tmp_path, monkeypatch):
    import repro.obs.environment as environment

    monkeypatch.setattr(environment, "working_tree_dirty", lambda cwd=None: True)
    args = [
        "bench",
        "--samples",
        "60",
        "--k",
        "2",
        "--record",
        "--output",
        str(tmp_path / "bench.json"),
    ]
    assert main(args) == 2
    assert "dirty working tree" in capsys.readouterr().err
    assert not (tmp_path / "bench.json").exists()
    # --allow-dirty overrides the refusal.
    assert main(args + ["--allow-dirty"]) == 0
    assert (tmp_path / "bench.json").exists()
