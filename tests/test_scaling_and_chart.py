"""Scaling-study driver and ascii_chart tests."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ascii_chart
from repro.experiments.scaling import ScalePoint, scaling_study


def test_ascii_chart_basic():
    chart = ascii_chart(["a", "bb"], [1.0, 2.0], width=10)
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[1].count("█") == 10  # max value fills the width
    assert lines[0].count("█") == 5
    assert "2.000" in lines[1]


def test_ascii_chart_zero_values():
    chart = ascii_chart(["x", "y"], [0.0, 0.0])
    assert "(empty chart)" not in chart
    assert "█" not in chart


def test_ascii_chart_empty():
    assert ascii_chart([], []) == "(empty chart)"


def test_ascii_chart_validation():
    with pytest.raises(ValueError):
        ascii_chart(["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        ascii_chart(["a"], [-1.0])


def test_scaling_study_points():
    config = ExperimentConfig(
        dataset="facebook", scale=0.1, pool_size=100, eval_trials=40, seed=3
    )
    points = scaling_study(config, scales=(0.06, 0.12), k=4)
    assert len(points) == 2
    assert all(isinstance(p, ScalePoint) for p in points)
    assert points[0].num_nodes < points[1].num_nodes
    assert all(p.sampling_seconds >= 0 for p in points)
    assert all(p.ubg_benefit >= 0 and p.maf_benefit >= 0 for p in points)
