"""Repeated-trial statistics tests."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_instance
from repro.experiments.stats import (
    AggregatedCell,
    collect_samples,
    repeat_suite,
    win_rate,
)

FAST = ExperimentConfig(
    dataset="facebook", scale=0.08, pool_size=120, eval_trials=40, seed=11
)


def test_repeat_suite_aggregates_cells():
    cells = repeat_suite(FAST, ["MAF", "KS"], [4], trials=3)
    assert len(cells) == 2
    for cell in cells:
        assert isinstance(cell, AggregatedCell)
        assert cell.trials == 3
        assert cell.mean_benefit >= 0
        assert cell.ci_half_width >= 0
        assert cell.mean_runtime >= 0
        assert cell.k == 4


def test_repeat_suite_validates_trials():
    with pytest.raises(ExperimentError):
        repeat_suite(FAST, ["MAF"], [3], trials=0)


def test_collect_samples_shape():
    samples = collect_samples(FAST, ["MAF", "KS"], [3, 5], trials=2)
    assert set(samples) == {("MAF", 3), ("MAF", 5), ("KS", 3), ("KS", 5)}
    assert all(len(v) == 2 for v in samples.values())


def test_win_rate_bounds_and_reflexivity():
    samples = collect_samples(FAST, ["MAF", "KS"], [5], trials=3)
    rate = win_rate(samples, "MAF", "KS")
    assert 0.0 <= rate <= 1.0
    # An algorithm never strictly beats itself.
    assert win_rate(samples, "KS", "KS") == 0.0


def test_win_rate_requires_comparable_data():
    with pytest.raises(ExperimentError):
        win_rate({("A", 1): [1.0]}, "A", "B")


def test_greedy_modularity_formation_builds():
    config = FAST.with_overrides(formation="greedy-modularity")
    graph, communities = build_instance(config)
    communities.validate_against(graph.num_nodes)
    assert communities.r >= 1


def test_invalid_formation_rejected():
    with pytest.raises(ExperimentError):
        ExperimentConfig(formation="metis")
