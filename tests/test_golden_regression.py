"""Golden regression tests: seeded pipelines produce stable outputs.

These pin down concrete outputs of fully seeded runs so that refactors
that accidentally change behaviour (RNG consumption order, tie-breaking,
index order) are caught immediately. If a change is *intentional* (and
verified to be correct), update the golden values here deliberately.
"""

import pytest

from repro.communities.louvain import louvain_communities
from repro.communities.structure import Community, CommunityStructure
from repro.communities.thresholds import build_structure, constant_thresholds
from repro.core.maf import MAF
from repro.core.ubg import UBG
from repro.datasets.registry import load_dataset
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler


@pytest.fixture(scope="module")
def golden_instance():
    graph, blocks = planted_partition_graph(
        [5] * 5, p_in=0.6, p_out=0.05, directed=True, seed=1234
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=1234))
    pool.grow(300)
    return graph, communities, pool


def test_golden_planted_graph_shape(golden_instance):
    graph, communities, pool = golden_instance
    assert graph.num_nodes == 25
    assert graph.num_edges == 79
    assert communities.r == 5


def test_golden_pool_statistics(golden_instance):
    # Golden values refreshed when RIC sampling moved to per-sample
    # child RNG streams (the scheme the parallel engine's determinism
    # guarantee rests on); verified against the unbiasedness suite.
    _, _, pool = golden_instance
    assert len(pool) == 300
    assert pool.community_counts() == {0: 62, 1: 64, 2: 68, 3: 54, 4: 52}


def test_golden_ubg_seeds(golden_instance):
    _, _, pool = golden_instance
    result = UBG().solve(pool, 4)
    assert result.seeds == (4, 22, 5, 11)
    assert result.objective == pytest.approx(20.916666666, abs=1e-6)


def test_golden_maf_seeds(golden_instance):
    _, _, pool = golden_instance
    result = MAF(seed=99).solve(pool, 4)
    assert result.seeds == (4, 2, 22, 20)
    assert result.objective == pytest.approx(16.916666666, abs=1e-6)


def test_golden_dataset_fingerprint():
    dataset = load_dataset("facebook", scale=0.1, seed=7)
    assert dataset.num_nodes == 75
    assert dataset.num_edges == 568
    # Weighted cascade: a stable probe edge weight.
    graph = dataset.graph
    some_edge = next(iter(graph.edges()))
    assert some_edge.weight == pytest.approx(
        1.0 / graph.in_degree(some_edge.target)
    )


def test_golden_louvain_on_dataset():
    dataset = load_dataset("dblp", scale=0.05, seed=7)
    blocks = louvain_communities(dataset.graph, seed=7)
    structure = build_structure(
        blocks, size_cap=8, threshold_policy=constant_thresholds(2)
    )
    # Pin the aggregate shape, not every block (robust to minor moves).
    assert 25 <= structure.r <= 45
    assert structure.covered_nodes == dataset.num_nodes
