"""The README quickstart runs verbatim.

Documentation that silently rots is worse than none: this test extracts
the README's python block and executes it exactly as a reader would
paste it (≈10 s — acceptable for the confidence it buys).
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"


@pytest.fixture(scope="module")
def quickstart_block():
    text = README.read_text()
    match = re.search(r"```python\n(.*?)```", text, re.S)
    assert match, "README has no python code block"
    return match.group(1)


def test_quickstart_block_compiles(quickstart_block):
    compile(quickstart_block, "README-quickstart", "exec")


def test_quickstart_block_runs_verbatim(quickstart_block, capsys):
    namespace = {}
    exec(compile(quickstart_block, "README-quickstart", "exec"), namespace)
    out = capsys.readouterr().out
    assert "seeds:" in out
    assert "stopped by:" in out
    assert "c(S)" in out
    # The run reaches a statistically accepted stop on this instance.
    result = namespace["result"]
    assert result.stopped_by in ("estimate", "psi", "max_samples")
    assert 1 <= len(result.selection.seeds) <= 10


def test_readme_mentions_all_examples():
    text = README.read_text()
    examples_dir = Path(__file__).parent.parent / "examples"
    for example in examples_dir.glob("*.py"):
        if example.name == "quickstart.py":
            continue
        assert example.name in text, f"README does not mention {example.name}"
