"""Graph builder tests."""

import pytest

from repro.errors import GraphError
from repro.graph.builders import (
    from_edge_list,
    from_labeled_edges,
    from_undirected_edge_list,
    induced_subgraph,
    symmetrized,
)


def test_from_edge_list_with_and_without_weights():
    g = from_edge_list(3, [(0, 1), (1, 2, 0.25)], default_weight=0.5)
    assert g.weight(0, 1) == 0.5
    assert g.weight(1, 2) == 0.25
    assert g.num_edges == 2


def test_from_edge_list_rejects_malformed():
    with pytest.raises(GraphError):
        from_edge_list(3, [(0, 1, 0.5, 9)])


def test_from_undirected_creates_both_directions():
    g = from_undirected_edge_list(3, [(0, 1, 0.4)])
    assert g.weight(0, 1) == 0.4
    assert g.weight(1, 0) == 0.4
    assert g.num_edges == 2


def test_from_undirected_rejects_malformed():
    with pytest.raises(GraphError):
        from_undirected_edge_list(2, [(0,)])


def test_from_labeled_edges_directed():
    g, mapping = from_labeled_edges([("alice", "bob"), ("bob", "carol")])
    assert set(mapping) == {"alice", "bob", "carol"}
    assert g.num_nodes == 3
    assert g.has_edge(mapping["alice"], mapping["bob"])
    assert not g.has_edge(mapping["bob"], mapping["alice"])


def test_from_labeled_edges_undirected_and_self_loop_skipped():
    g, mapping = from_labeled_edges(
        [("a", "b"), ("a", "a")], directed=False
    )
    assert g.has_edge(mapping["a"], mapping["b"])
    assert g.has_edge(mapping["b"], mapping["a"])
    assert g.num_edges == 2  # self loop dropped


def test_induced_subgraph_keeps_internal_edges_only():
    g = from_edge_list(4, [(0, 1, 0.5), (1, 2, 0.6), (2, 3, 0.7)])
    sub, mapping = induced_subgraph(g, [1, 2])
    assert sub.num_nodes == 2
    assert sub.weight(mapping[1], mapping[2]) == 0.6
    assert sub.num_edges == 1


def test_induced_subgraph_deduplicates_nodes():
    g = from_edge_list(3, [(0, 1, 0.5)])
    sub, mapping = induced_subgraph(g, [0, 1, 0])
    assert sub.num_nodes == 2
    assert len(mapping) == 2


def test_symmetrized_mirrors_and_max_weight_wins():
    g = from_edge_list(2, [(0, 1, 0.3)])
    sym = symmetrized(g)
    assert sym.weight(0, 1) == 0.3
    assert sym.weight(1, 0) == 0.3
    g2 = from_edge_list(2, [(0, 1, 0.3), (1, 0, 0.8)])
    sym2 = symmetrized(g2)
    assert sym2.weight(0, 1) == 0.8
    assert sym2.weight(1, 0) == 0.8
