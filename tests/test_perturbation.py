"""Perturbation robustness tests."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.errors import ExperimentError
from repro.experiments.perturbation import (
    PerturbationResult,
    perturb_weights,
    perturbation_study,
)
from repro.graph.builders import from_edge_list


@pytest.fixture
def instance():
    graph = from_edge_list(
        5, [(0, 1, 0.6), (0, 2, 0.4), (3, 4, 0.5)]
    )
    communities = CommunityStructure(
        [
            Community(members=(1, 2), threshold=1, benefit=2.0),
            Community(members=(4,), threshold=1, benefit=1.0),
        ]
    )
    return graph, communities


def test_perturb_weights_structure_preserved(instance):
    graph, _ = instance
    perturbed = perturb_weights(graph, 0.3, seed=1)
    assert perturbed.num_nodes == graph.num_nodes
    assert perturbed.num_edges == graph.num_edges
    for u, v, w in graph.edges():
        assert perturbed.has_edge(u, v)
        assert 0.0 <= perturbed.weight(u, v) <= 1.0


def test_perturb_weights_within_band(instance):
    graph, _ = instance
    delta = 0.25
    perturbed = perturb_weights(graph, delta, seed=2)
    for u, v, w in graph.edges():
        assert perturbed.weight(u, v) <= min(1.0, w * (1 + delta)) + 1e-12
        assert perturbed.weight(u, v) >= w * (1 - delta) - 1e-12


def test_zero_delta_is_identity(instance):
    graph, _ = instance
    assert perturb_weights(graph, 0.0, seed=3) == graph


def test_perturb_weights_validates(instance):
    graph, _ = instance
    with pytest.raises(ExperimentError):
        perturb_weights(graph, 1.5)
    with pytest.raises(ExperimentError):
        perturb_weights(graph, -0.1)


def test_perturbation_study_result(instance):
    graph, communities = instance
    result = perturbation_study(
        graph,
        communities,
        [0, 3],
        delta=0.2,
        num_graphs=5,
        eval_trials=400,
        seed=4,
    )
    assert isinstance(result, PerturbationResult)
    assert len(result.samples) == 5
    assert result.worst_benefit <= result.mean_benefit
    assert result.baseline_benefit > 0
    # Multiplicative ±20% jitter keeps the mean within a modest band.
    assert abs(result.relative_degradation) < 0.35


def test_perturbation_study_validates(instance):
    graph, communities = instance
    with pytest.raises(ExperimentError):
        perturbation_study(graph, communities, [0], num_graphs=0)


def test_deterministic_given_seed(instance):
    graph, communities = instance
    a = perturbation_study(
        graph, communities, [0], num_graphs=3, eval_trials=100, seed=9
    )
    b = perturbation_study(
        graph, communities, [0], num_graphs=3, eval_trials=100, seed=9
    )
    assert a.samples == b.samples
