"""Stopwatch tests."""

import time

import pytest

from repro.utils.timing import Stopwatch


def test_context_manager_measures_elapsed():
    with Stopwatch() as sw:
        time.sleep(0.01)
    assert sw.elapsed >= 0.009
    assert not sw.running


def test_stop_before_start_raises():
    sw = Stopwatch()
    with pytest.raises(RuntimeError):
        sw.stop()


def test_manual_start_stop():
    sw = Stopwatch()
    sw.start()
    assert sw.running
    elapsed = sw.stop()
    assert elapsed == sw.elapsed >= 0.0


def test_restart_overwrites_elapsed():
    sw = Stopwatch()
    with sw:
        time.sleep(0.01)
    first = sw.elapsed
    with sw:
        pass
    assert sw.elapsed <= first
