"""Stopwatch tests."""

import time

import pytest

from repro.utils.timing import Stopwatch


def test_context_manager_measures_elapsed():
    with Stopwatch() as sw:
        time.sleep(0.01)
    assert sw.elapsed >= 0.009
    assert not sw.running


def test_stop_before_start_raises():
    sw = Stopwatch()
    with pytest.raises(RuntimeError):
        sw.stop()


def test_manual_start_stop():
    sw = Stopwatch()
    sw.start()
    assert sw.running
    elapsed = sw.stop()
    assert elapsed == sw.elapsed >= 0.0


def test_restart_overwrites_elapsed():
    sw = Stopwatch()
    with sw:
        time.sleep(0.01)
    first = sw.elapsed
    with sw:
        pass
    assert sw.elapsed <= first


def test_lap_reads_without_stopping():
    sw = Stopwatch()
    sw.start()
    time.sleep(0.01)
    first_lap = sw.lap()
    assert first_lap >= 0.009
    assert sw.running  # lap() does not stop the watch
    time.sleep(0.005)
    assert sw.lap() > first_lap
    final = sw.stop()
    assert final >= first_lap


def test_lap_before_start_raises():
    with pytest.raises(RuntimeError):
        Stopwatch().lap()


def test_elapsed_reads_live_while_running():
    sw = Stopwatch()
    assert sw.elapsed == 0.0  # never started
    sw.start()
    time.sleep(0.01)
    live = sw.elapsed
    assert live >= 0.009
    assert sw.running  # reading elapsed does not stop the watch
    final = sw.stop()
    assert final >= live
    assert sw.elapsed == final  # settled after stop
