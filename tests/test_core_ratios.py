"""Theoretical ratio helper tests."""

import math

import pytest

from repro.core.ratios import (
    ONE_MINUS_INV_E,
    bt_ratio,
    inapproximability_bound,
    maf_ratio,
    mb_ratio,
    sandwich_ratio,
)
from repro.errors import SolverError


def test_constant():
    assert ONE_MINUS_INV_E == pytest.approx(1 - 1 / math.e)


def test_maf_ratio_values():
    assert maf_ratio(10, 2, 5) == pytest.approx(1.0)
    assert maf_ratio(10, 3, 5) == pytest.approx(3 / 5)
    assert maf_ratio(1, 2, 5) == 0.0  # floor(1/2) = 0
    with pytest.raises(SolverError):
        maf_ratio(0, 2, 5)


def test_bt_ratio_values():
    assert bt_ratio(5) == pytest.approx(ONE_MINUS_INV_E / 5)
    assert bt_ratio(5, threshold_bound=3) == pytest.approx(ONE_MINUS_INV_E / 25)
    assert bt_ratio(5, threshold_bound=1) == pytest.approx(ONE_MINUS_INV_E)
    with pytest.raises(SolverError):
        bt_ratio(0)


def test_mb_ratio_geometric_mean():
    k, r = 10, 20
    expected = math.sqrt(ONE_MINUS_INV_E * (k // 2) / (k * r))
    assert mb_ratio(k, r) == pytest.approx(expected)
    # Geometric mean of the two arms' guarantees.
    assert mb_ratio(k, r) == pytest.approx(
        math.sqrt(bt_ratio(k) * maf_ratio(k, 2, r))
    )


def test_mb_ratio_k1_falls_back_to_bt():
    assert mb_ratio(1, 10) == pytest.approx(bt_ratio(1, 2))


def test_mb_ratio_scales_as_inverse_sqrt_r():
    assert mb_ratio(100, 400) == pytest.approx(mb_ratio(100, 100) / 2, rel=1e-9)


def test_sandwich_ratio():
    assert sandwich_ratio(3.0, 4.0) == pytest.approx(0.75)
    assert sandwich_ratio(0.0, 0.0) == 1.0
    with pytest.raises(SolverError):
        sandwich_ratio(-1.0, 2.0)


def test_inapproximability_bound_grows_with_r():
    small = inapproximability_bound(100)
    large = inapproximability_bound(10_000)
    assert 1.0 < small < large


def test_inapproximability_bound_needs_big_r():
    with pytest.raises(SolverError):
        inapproximability_bound(8)


def test_mb_matches_inapproximability_order():
    """MB's 1/sqrt(r) guarantee is within the hardness envelope: the
    hardness bound r^(1/2(loglog r)^c) is asymptotically SMALLER than
    sqrt(r), i.e. MB cannot be beaten by more than subpolynomial slack."""
    for r in (10**3, 10**6):
        assert inapproximability_bound(r) <= math.sqrt(r)
