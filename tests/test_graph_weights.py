"""Edge-weight scheme tests."""

import pytest

from repro.errors import GraphError
from repro.graph.builders import from_edge_list
from repro.graph.weights import (
    assign_trivalency_weights,
    assign_uniform_weights,
    assign_weighted_cascade,
)


def test_weighted_cascade_is_one_over_indegree():
    g = from_edge_list(4, [(0, 3), (1, 3), (2, 3), (0, 1)])
    assign_weighted_cascade(g)
    assert g.weight(0, 3) == pytest.approx(1 / 3)
    assert g.weight(1, 3) == pytest.approx(1 / 3)
    assert g.weight(2, 3) == pytest.approx(1 / 3)
    assert g.weight(0, 1) == pytest.approx(1.0)


def test_weighted_cascade_incoming_mass_sums_to_one():
    g = from_edge_list(5, [(0, 4), (1, 4), (2, 4), (3, 4), (4, 0), (1, 0)])
    assign_weighted_cascade(g)
    for v in range(5):
        sources, weights = g.in_adjacency(v)
        if sources:
            assert sum(weights) == pytest.approx(1.0)


def test_weighted_cascade_returns_graph_for_chaining():
    g = from_edge_list(2, [(0, 1)])
    assert assign_weighted_cascade(g) is g


def test_uniform_weights():
    g = from_edge_list(3, [(0, 1), (1, 2)])
    assign_uniform_weights(g, 0.42)
    assert all(w == 0.42 for _, _, w in g.edges())


def test_uniform_weights_validates_probability():
    g = from_edge_list(2, [(0, 1)])
    with pytest.raises(GraphError):
        assign_uniform_weights(g, 1.5)


def test_trivalency_draws_from_choices():
    g = from_edge_list(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    assign_trivalency_weights(g, choices=(0.1, 0.01), seed=3)
    assert all(w in (0.1, 0.01) for _, _, w in g.edges())


def test_trivalency_deterministic_with_seed():
    g1 = from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
    g2 = from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
    assign_trivalency_weights(g1, seed=9)
    assign_trivalency_weights(g2, seed=9)
    assert [w for _, _, w in g1.edges()] == [w for _, _, w in g2.edges()]


def test_trivalency_rejects_empty_or_invalid_choices():
    g = from_edge_list(2, [(0, 1)])
    with pytest.raises(GraphError):
        assign_trivalency_weights(g, choices=())
    with pytest.raises(GraphError):
        assign_trivalency_weights(g, choices=(0.5, 2.0))
