"""Validation helper tests."""

import pytest

from repro.errors import GraphError
from repro.utils.validation import (
    check_fraction,
    check_node,
    check_positive,
    check_probability,
    check_seed_budget,
)


def test_check_probability_accepts_bounds():
    assert check_probability(0.0, "p") == 0.0
    assert check_probability(1.0, "p") == 1.0
    assert check_probability(0.5, "p") == 0.5


@pytest.mark.parametrize("value", [-0.1, 1.1, 2.0])
def test_check_probability_rejects(value):
    with pytest.raises(ValueError, match="p must be"):
        check_probability(value, "p")


def test_check_fraction_open_interval():
    assert check_fraction(0.5, "eps") == 0.5
    for bad in (0.0, 1.0, -0.2, 1.5):
        with pytest.raises(ValueError):
            check_fraction(bad, "eps")


def test_check_positive():
    assert check_positive(3, "k") == 3
    for bad in (0, -1):
        with pytest.raises(ValueError):
            check_positive(bad, "k")


def test_check_node_valid():
    assert check_node(0, 5) == 0
    assert check_node(4, 5) == 4


def test_check_node_rejects_out_of_range_and_non_int():
    with pytest.raises(ValueError):
        check_node(5, 5)
    with pytest.raises(ValueError):
        check_node(-1, 5)
    with pytest.raises(ValueError):
        check_node(1.5, 5)
    with pytest.raises(ValueError):
        check_node(True, 5)  # bools are not node ids


def test_check_node_custom_exception():
    with pytest.raises(GraphError):
        check_node(9, 3, GraphError)


def test_check_seed_budget():
    assert check_seed_budget(1, 10) == 1
    assert check_seed_budget(10, 10) == 10
    with pytest.raises(ValueError):
        check_seed_budget(0, 10)
    with pytest.raises(ValueError):
        check_seed_budget(11, 10)
