"""Figure-driver unit tests (tiny configurations).

The benchmarks exercise the drivers at realistic scale; these tests pin
their contracts — result shapes, parameter plumbing, determinism — at
smoke scale so driver regressions surface in the fast suite.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    BOUNDED_ALGORITHMS,
    QUALITY_ALGORITHMS,
    fig4_community_structure,
    fig5_benefit_regular,
    fig6_benefit_bounded,
    fig7_runtime,
    fig8_ubg_ratio,
)

TINY = ExperimentConfig(
    dataset="facebook", scale=0.08, pool_size=100, eval_trials=30, seed=3
)


def test_algorithm_lineups_match_paper():
    assert QUALITY_ALGORITHMS == ("UBG", "MAF", "HBC", "KS", "IM")
    assert "MB" in BOUNDED_ALGORITHMS


def test_fig4_shape():
    results = fig4_community_structure(
        formations=("louvain",),
        size_caps=(4, 8),
        k=4,
        algorithms=("MAF", "KS"),
        base_config=TINY,
    )
    assert set(results) == {("louvain", 4), ("louvain", 8)}
    for cell in results.values():
        assert set(cell) == {"MAF", "KS"}
        assert all(v >= 0 for v in cell.values())


def test_fig5_shape_and_k_alignment():
    results = fig5_benefit_regular(
        k_values=(3, 6), algorithms=("MAF", "KS"), base_config=TINY
    )
    assert set(results) == {"MAF", "KS"}
    assert [r.k for r in results["MAF"]] == [3, 6]


def test_fig6_uses_bounded_thresholds():
    results = fig6_benefit_bounded(
        k_values=(3,),
        algorithms=("MAF", "MB"),
        base_config=TINY,
        candidate_limit=5,
    )
    assert set(results) == {"MAF", "MB"}
    assert results["MB"][0].benefit >= 0


def test_fig7_reports_runtime_not_shared_pool():
    results = fig7_runtime(
        dataset="facebook",
        k_values=(3,),
        algorithms=("MAF",),
        base_config=TINY,
        candidate_limit=5,
    )
    run = results["MAF"][0]
    # Sampling charged to the algorithm: strictly positive runtime.
    assert run.runtime_seconds > 0


def test_fig8_structure_and_range():
    results = fig8_ubg_ratio(
        k_values=(2, 4), thresholds=("bounded",), base_config=TINY
    )
    assert set(results) == {"bounded"}
    assert len(results["bounded"]) == 2
    assert all(0.0 <= r <= 1.0 + 1e-9 for r in results["bounded"])


def test_drivers_deterministic():
    a = fig5_benefit_regular(
        k_values=(3,), algorithms=("MAF",), base_config=TINY
    )
    b = fig5_benefit_regular(
        k_values=(3,), algorithms=("MAF",), base_config=TINY
    )
    assert a["MAF"][0].seeds == b["MAF"][0].seeds
    assert a["MAF"][0].benefit == b["MAF"][0].benefit
