"""Cross-module consistency with the paper's formulas.

The theoretical constants appear in two places each — the solvers'
``alpha`` methods (used by the Ψ bound) and the standalone
``repro.core.ratios`` helpers (used by tests/reports). These tests pin
them to each other and to hand-computed values so a drive-by edit of
one copy cannot silently diverge.
"""

import math

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.bt import BT, MB
from repro.core.framework import (
    lambda_stop_threshold,
    optimal_benefit_lower_bound,
    psi_sample_bound,
)
from repro.core.maf import MAF
from repro.core.ratios import bt_ratio, maf_ratio, mb_ratio
from repro.core.ubg import UBG
from repro.diffusion.estimators import stopping_rule_threshold
from repro.graph.digraph import DiGraph
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler
from repro.utils.math import log_binomial


@pytest.fixture
def pool():
    communities = CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=2.0),
            Community(members=(2, 3, 4), threshold=2, benefit=3.0),
            Community(members=(5,), threshold=1, benefit=1.0),
        ]
    )
    return RICSamplePool(RICSampler(DiGraph(10), communities, seed=1))


def test_maf_alpha_equals_ratio_helper(pool):
    communities = pool.sampler.communities
    for k in (1, 2, 4, 8):
        assert MAF().alpha(pool, k) == pytest.approx(
            maf_ratio(k, communities.max_threshold, communities.r)
        )


def test_bt_alpha_equals_ratio_helper(pool):
    for k in (1, 3, 7):
        for d in (2, 3):
            assert BT(threshold_bound=d).alpha(pool, k) == pytest.approx(
                bt_ratio(k, d)
            )


def test_mb_alpha_equals_ratio_helper(pool):
    communities = pool.sampler.communities
    for k in (2, 5, 9):
        assert MB().alpha(pool, k) == pytest.approx(
            mb_ratio(k, communities.r)
        )


def test_ubg_alpha_is_greedy_constant(pool):
    assert UBG().alpha(pool, 3) == pytest.approx(1 - 1 / math.e)


def test_psi_matches_eq22_by_hand(pool):
    """Ψ = (b·h)/(β·k) · max(2ln(1/δ1)/ε1², 3ln(C(n,k)/δ2)/(α²ε2²))."""
    communities = pool.sampler.communities
    graph = DiGraph(10)
    k, alpha, epsilon, delta = 2, 0.5, 0.2, 0.2
    eps1 = eps2 = epsilon / 2
    delta1 = delta2 = delta / 2
    b = communities.total_benefit
    beta = communities.min_benefit
    h = communities.max_threshold
    term1 = 2 * math.log(1 / delta1) / eps1**2
    term2 = (
        3
        * (log_binomial(10, k) + math.log(1 / delta2))
        / (alpha**2 * eps2**2)
    )
    expected = (b * h) / (beta * k) * max(term1, term2)
    assert psi_sample_bound(
        graph, communities, k, alpha, epsilon, delta
    ) == pytest.approx(expected)


def test_lower_bound_matches_beta_k_over_h(pool):
    communities = pool.sampler.communities
    assert optimal_benefit_lower_bound(communities, 4) == pytest.approx(
        communities.min_benefit * 4 / communities.max_threshold
    )


def test_lambda_matches_ssa_constant_by_hand():
    epsilon, delta = 0.2, 0.2
    e1 = e2 = e3 = epsilon / 4
    expected = (
        (1 + e1) * (1 + e2) * (2 + 2 * e3 / 3) * math.log(3 / delta) / e3**2
    )
    assert lambda_stop_threshold(epsilon, delta) == pytest.approx(expected)


def test_epsilon_split_satisfies_alg5_line3():
    """ε₁=ε₂=ε₃=ε/4 must satisfy ε ≥ ε₁+ε₂+ε₃+ε₁ε₂ for all ε in (0,1)."""
    for epsilon in (0.05, 0.2, 0.5, 0.9):
        e = epsilon / 4
        assert epsilon >= 3 * e + e * e


def test_dagum_lambda_prime_matches_alg6_line1():
    epsilon, delta = 0.25, 0.1
    expected = 1 + 4 * (math.e - 2) * math.log(2 / delta) * (1 + epsilon) / (
        epsilon**2
    )
    assert stopping_rule_threshold(epsilon, delta) == pytest.approx(expected)
