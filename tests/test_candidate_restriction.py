"""Candidate-restricted (targeted) seeding tests.

Only a subset of users may be seeded (opted-in users, monitorable
accounts, ...). Every MAXR solver accepts a ``candidates`` restriction
and must never seed outside it.
"""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.bt import BT, MB
from repro.core.maf import MAF
from repro.core.ubg import UBG, GreedyC
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler


@pytest.fixture(scope="module")
def pool():
    graph, blocks = planted_partition_graph(
        [5] * 5, p_in=0.6, p_out=0.05, directed=True, seed=51
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    p = RICSamplePool(RICSampler(graph, communities, seed=52))
    p.grow(400)
    return p


EVEN_NODES = frozenset(range(0, 25, 2))


@pytest.mark.parametrize(
    "solver_factory",
    [
        lambda c: UBG(candidates=c),
        lambda c: GreedyC(candidates=c),
        lambda c: MAF(seed=1, candidates=c),
        lambda c: BT(candidate_limit=15, candidates=c),
        lambda c: MB(candidate_limit=15, seed=1, candidates=c),
    ],
    ids=["UBG", "GreedyC", "MAF", "BT", "MB"],
)
def test_solvers_respect_candidate_set(pool, solver_factory):
    solver = solver_factory(EVEN_NODES)
    result = solver.solve(pool, 5)
    assert set(result.seeds) <= EVEN_NODES
    assert result.seeds  # something was still selectable


def test_restriction_costs_quality(pool):
    """Restricting to a thin candidate set cannot improve the optimum."""
    free = UBG().solve(pool, 5)
    restricted = UBG(candidates=frozenset(range(0, 25, 5))).solve(pool, 5)
    assert restricted.objective <= free.objective + 1e-9


def test_unrestricted_default_unchanged(pool):
    a = UBG().solve(pool, 4)
    b = UBG(candidates=None).solve(pool, 4)
    assert a.seeds == b.seeds


def test_maf_s1_skips_uncoverable_communities(pool):
    """With candidates excluding whole communities, S1 only seeds
    communities it can fully cover to threshold."""
    candidates = frozenset(range(0, 10))  # only the first two blocks
    solver = MAF(seed=2, candidates=candidates)
    s1 = solver._build_s1(pool, 6)
    assert set(s1) <= candidates


def test_restriction_to_single_community(pool):
    only_first = frozenset(range(0, 5))
    result = MB(candidate_limit=10, seed=3, candidates=only_first).solve(
        pool, 4
    )
    assert set(result.seeds) <= only_first
    # Seeding within one block can influence at least that block's
    # samples.
    assert result.objective > 0


def test_empty_candidate_intersection_yields_empty_seeds(pool):
    """Candidates touching nothing: solvers return empty selections
    gracefully (objective 0)."""
    ghost = frozenset({24})  # may touch something; use an id beyond graph
    solver = MAF(seed=4, candidates=frozenset())
    result = solver.solve(pool, 3)
    assert result.seeds == ()
    assert result.objective == 0.0
