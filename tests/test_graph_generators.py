"""Synthetic generator tests."""

import math

import pytest

from repro.errors import GraphError
from repro.graph.analysis import weakly_connected_components
from repro.graph.generators import (
    barabasi_albert_graph,
    copying_model_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    planted_partition_graph,
    watts_strogatz_graph,
)


# ---------------------------------------------------------------- ER


def test_er_zero_probability_has_no_edges():
    g = erdos_renyi_graph(30, 0.0, seed=1)
    assert g.num_edges == 0


def test_er_full_probability_is_complete():
    g = erdos_renyi_graph(6, 1.0, directed=True, seed=1)
    assert g.num_edges == 6 * 5
    g_und = erdos_renyi_graph(6, 1.0, directed=False, seed=1)
    assert g_und.num_edges == 6 * 5  # both directions materialised


def test_er_edge_count_near_expectation():
    n, p = 200, 0.05
    g = erdos_renyi_graph(n, p, directed=True, seed=7)
    expected = p * n * (n - 1)
    assert abs(g.num_edges - expected) < 4 * math.sqrt(expected)


def test_er_undirected_is_symmetric():
    g = erdos_renyi_graph(40, 0.1, directed=False, seed=5)
    for u, v, _ in g.edges():
        assert g.has_edge(v, u)


def test_er_deterministic_with_seed():
    a = erdos_renyi_graph(50, 0.1, seed=11)
    b = erdos_renyi_graph(50, 0.1, seed=11)
    assert a == b


def test_er_invalid_args():
    with pytest.raises(GraphError):
        erdos_renyi_graph(-1, 0.5)
    with pytest.raises(GraphError):
        erdos_renyi_graph(10, 1.5)


# ---------------------------------------------------------------- BA


def test_ba_edge_count_undirected():
    n, m = 60, 3
    g = barabasi_albert_graph(n, m, directed=False, seed=2)
    # Star core (m edges) + m per later node, times 2 directions.
    expected_undirected = m + (n - m - 1) * m
    assert g.num_edges == 2 * expected_undirected


def test_ba_no_isolated_nodes():
    g = barabasi_albert_graph(50, 2, directed=False, seed=4)
    for v in g.nodes():
        assert g.out_degree(v) + g.in_degree(v) > 0


def test_ba_directed_variant_points_backward():
    g = barabasi_albert_graph(30, 2, directed=True, seed=3)
    for u, v, _ in g.edges():
        assert u > v  # later nodes cite earlier ones


def test_ba_heavy_tail_hub_exists():
    g = barabasi_albert_graph(300, 2, directed=False, seed=6)
    max_deg = max(g.out_degree(v) for v in g.nodes())
    mean_deg = g.num_edges / g.num_nodes
    assert max_deg > 4 * mean_deg  # hubs well above the mean


def test_ba_invalid_args():
    with pytest.raises(GraphError):
        barabasi_albert_graph(5, 5)
    with pytest.raises(GraphError):
        barabasi_albert_graph(5, 0)


# ---------------------------------------------------------------- WS


def test_ws_zero_rewire_is_ring_lattice():
    g = watts_strogatz_graph(10, 4, 0.0, seed=1)
    for u in range(10):
        for j in (1, 2):
            assert g.has_edge(u, (u + j) % 10)
            assert g.has_edge((u + j) % 10, u)


def test_ws_edge_count_preserved_by_rewiring():
    n, k = 30, 4
    g = watts_strogatz_graph(n, k, 0.3, seed=2)
    assert g.num_edges == n * k  # n*k/2 undirected edges, both directions


def test_ws_requires_even_neighbors():
    with pytest.raises(GraphError):
        watts_strogatz_graph(10, 3, 0.1)


def test_ws_symmetric():
    g = watts_strogatz_graph(20, 4, 0.5, seed=9)
    for u, v, _ in g.edges():
        assert g.has_edge(v, u)


# --------------------------------------------------- planted partition


def test_planted_partition_blocks_and_sizes():
    graph, blocks = planted_partition_graph(
        [4, 5, 6], p_in=0.9, p_out=0.0, directed=True, seed=3
    )
    assert [len(b) for b in blocks] == [4, 5, 6]
    assert graph.num_nodes == 15
    flat = sorted(v for block in blocks for v in block)
    assert flat == list(range(15))


def test_planted_partition_no_cross_edges_when_pout_zero():
    graph, blocks = planted_partition_graph(
        [5, 5], p_in=0.8, p_out=0.0, directed=True, seed=4
    )
    block_of = {}
    for i, block in enumerate(blocks):
        for v in block:
            block_of[v] = i
    for u, v, _ in graph.edges():
        assert block_of[u] == block_of[v]


def test_planted_partition_undirected_symmetric():
    graph, _ = planted_partition_graph(
        [6, 6], p_in=0.7, p_out=0.1, directed=False, seed=5
    )
    for u, v, _ in graph.edges():
        assert graph.has_edge(v, u)


def test_planted_partition_validates_probabilities():
    with pytest.raises(GraphError):
        planted_partition_graph([3, 3], p_in=0.1, p_out=0.5)
    with pytest.raises(GraphError):
        planted_partition_graph([0, 3], p_in=0.5, p_out=0.1)


# -------------------------------------------------------- forest fire


def test_forest_fire_connected_single_component():
    g = forest_fire_graph(80, seed=6)
    components = weakly_connected_components(g)
    assert len(components) == 1


def test_forest_fire_every_non_root_links_backward():
    g = forest_fire_graph(40, seed=8)
    for v in range(1, 40):
        assert g.out_degree(v) >= 1


def test_forest_fire_densifies_with_forward_probability():
    sparse = forest_fire_graph(100, forward_probability=0.1, seed=10)
    dense = forest_fire_graph(100, forward_probability=0.45, seed=10)
    assert dense.num_edges > sparse.num_edges


def test_forest_fire_invalid_args():
    with pytest.raises(GraphError):
        forest_fire_graph(0)
    with pytest.raises(GraphError):
        forest_fire_graph(10, forward_probability=1.0)


# ------------------------------------------------------ copying model


def test_copying_model_out_degree():
    g = copying_model_graph(50, out_degree=3, seed=7)
    for v in range(4, 50):
        assert g.out_degree(v) == 3


def test_copying_model_heavy_in_degree_tail():
    g = copying_model_graph(300, out_degree=3, copy_probability=0.8, seed=12)
    max_in = max(g.in_degree(v) for v in g.nodes())
    assert max_in > 3 * 3  # some node far above the average in-degree


def test_copying_model_invalid_args():
    with pytest.raises(GraphError):
        copying_model_graph(3, out_degree=3)
    with pytest.raises(GraphError):
        copying_model_graph(10, out_degree=0)


def test_all_generators_deterministic():
    pairs = [
        (barabasi_albert_graph(40, 2, seed=1), barabasi_albert_graph(40, 2, seed=1)),
        (watts_strogatz_graph(20, 4, 0.2, seed=1), watts_strogatz_graph(20, 4, 0.2, seed=1)),
        (forest_fire_graph(30, seed=1), forest_fire_graph(30, seed=1)),
        (copying_model_graph(30, 2, seed=1), copying_model_graph(30, 2, seed=1)),
    ]
    for a, b in pairs:
        assert a == b
