"""Fast performance smoke tests (tier-1; heavier runs are marked slow).

These are sanity floors, not benchmarks: they catch order-of-magnitude
regressions (e.g. accidentally quadratic sampling, per-sample process
dispatch) while staying fast enough for the default test run. The real
serial-vs-parallel comparison lives in
``benchmarks/bench_ric_throughput.py``.
"""

import os
import time

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.parallel import ParallelRICSampler
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler


@pytest.fixture(scope="module")
def smoke_instance():
    graph, blocks = planted_partition_graph(
        [8] * 6, p_in=0.4, p_out=0.02, directed=True, seed=31
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph, communities


def test_serial_sampling_throughput_floor(smoke_instance):
    graph, communities = smoke_instance
    pool = RICSamplePool(RICSampler(graph, communities, seed=3))
    start = time.perf_counter()
    pool.grow(300)
    elapsed = time.perf_counter() - start
    assert 300 / elapsed > 50  # laptop-scale sanity floor


def test_parallel_engine_dispatch_overhead_bounded(smoke_instance):
    """Batched dispatch: a modest request must not take worker-per-sample
    time (the failure mode batching exists to prevent)."""
    graph, communities = smoke_instance
    with ParallelRICSampler(
        graph, communities, seed=3, workers=2
    ) as sampler:
        start = time.perf_counter()
        samples = sampler.sample_many(200)
        elapsed = time.perf_counter() - start
    assert len(samples) == 200
    assert elapsed < 30.0
    profile = sampler.last_profile()
    assert profile["mode"] == "parallel"
    assert profile["batches"] <= 2 * 4 + 1  # ~4 batches per worker


@pytest.mark.slow
def test_parallel_speedup_on_multicore():
    """Excluded from tier-1 (slow): asserts real speedup, which needs
    actual cores; run explicitly with ``-m slow`` on multicore hosts."""
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 physical cores for a meaningful speedup")
    graph, blocks = planted_partition_graph(
        [40] * 25, p_in=0.25, p_out=0.004, directed=True, seed=11
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    count = 2000
    start = time.perf_counter()
    RICSampler(graph, communities, seed=9).sample_many(count)
    serial_elapsed = time.perf_counter() - start
    with ParallelRICSampler(
        graph, communities, seed=9, workers=4
    ) as sampler:
        sampler.sample_many(8)  # warm the worker pool
        start = time.perf_counter()
        sampler.sample_many(count)
        parallel_elapsed = time.perf_counter() - start
    assert serial_elapsed / parallel_elapsed >= 2.0


@pytest.mark.slow
@pytest.mark.obs
def test_disabled_instrumentation_overhead_bounded(smoke_instance):
    """Excluded from tier-1 (slow, timing-sensitive): the permanent
    span/counter call sites must be near-free while no session is
    active. Budget: the instrumented sampling path stays within a loose
    multiple of a bare loop over the same sampler — the real <3% budget
    is asserted at benchmark scale in the kernel bench workload (see
    docs/observability.md); this floor catches accidental per-sample
    work behind the gate."""
    from repro.obs import enabled
    from repro.sampling.ric import RICSampler as Sampler

    graph, communities = smoke_instance
    assert not enabled()

    # Warm up both samplers (lazy caches, allocator).
    Sampler(graph, communities, seed=5).sample_many(200)

    bare = Sampler(graph, communities, seed=5)
    start = time.perf_counter()
    for _ in range(1000):
        bare.sample()  # no span/counter call sites on this path
    bare_elapsed = time.perf_counter() - start

    instrumented = Sampler(graph, communities, seed=5)
    start = time.perf_counter()
    for _ in range(10):
        instrumented.sample_many(100)  # gated span + counter per call
    instrumented_elapsed = time.perf_counter() - start

    # Identical work; generous 1.5x ceiling absorbs scheduler noise.
    assert instrumented_elapsed < bare_elapsed * 1.5 + 0.05


@pytest.mark.slow
def test_flat_kernels_not_slower_than_reference():
    """Excluded from tier-1 (slow, timing-sensitive): the array-native
    kernels must beat the dict/set reference path on the standard
    benchmark workload — the whole point of ``engine="flat"``. Uses the
    same machinery as ``python -m repro bench`` at reduced scale."""
    from repro.experiments.kernel_bench import run_kernel_bench

    entry = run_kernel_bench(samples=2000, k=5)
    marginals = entry["marginals_per_sec"]
    # Flat marginal evaluation should be several times faster than the
    # reference sets; 1.5x is a deliberately loose floor for CI noise.
    assert marginals["flat"] > 1.5 * marginals["reference"]
    combined = entry["combined"]
    assert combined["speedup_vs_reference"] > 1.5
