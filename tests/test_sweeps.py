"""Sweep driver tests (fast configurations)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import (
    bt_candidate_sweep,
    celf_speedup,
    formation_comparison,
    maf_arm_comparison,
    pool_size_error_sweep,
)

FAST = ExperimentConfig(
    dataset="facebook", scale=0.08, pool_size=150, eval_trials=50, seed=5
)


def test_celf_speedup_fields():
    result = celf_speedup(FAST, k=6)
    assert set(result) == {
        "eager_value",
        "lazy_value",
        "eager_seconds",
        "lazy_seconds",
        "speedup",
    }
    assert result["lazy_value"] >= result["eager_value"] * 0.99
    assert result["speedup"] > 0


def test_pool_size_error_sweep_shrinks():
    errors = pool_size_error_sweep(
        FAST, sizes=(40, 640), trials=2, reference_trials=4000
    )
    assert set(errors) == {40, 640}
    assert errors[640] <= errors[40] + 0.05


def test_maf_arm_comparison_combined_is_max():
    result = maf_arm_comparison(FAST, k=8)
    assert result["combined_value"] >= max(
        result["s1_value"], result["s2_value"]
    ) - 1e-9


def test_bt_candidate_sweep_rows():
    config = FAST.with_overrides(threshold="bounded", pool_size=100)
    rows = bt_candidate_sweep(config, limits=(3, None), k=4)
    assert len(rows) == 2
    (limited, v_lim, t_lim), (full, v_full, t_full) = rows
    assert limited == 3 and full is None
    assert v_lim <= v_full + 1e-9
    assert t_lim >= 0 and t_full >= 0


def test_formation_comparison_includes_label_propagation():
    results = formation_comparison(
        FAST, formations=("louvain", "label-propagation"), k=6, algorithm="MAF"
    )
    assert set(results) == {"louvain", "label-propagation"}
    assert all(v >= 0 for v in results.values())
