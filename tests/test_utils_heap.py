"""LazyMaxHeap unit tests."""

import pytest

from repro.utils.heap import LazyMaxHeap


def test_push_pop_max_order():
    heap = LazyMaxHeap()
    for item, priority in [("a", 1.0), ("b", 3.0), ("c", 2.0)]:
        heap.push(item, priority)
    assert heap.pop_max() == ("b", 3.0)
    assert heap.pop_max() == ("c", 2.0)
    assert heap.pop_max() == ("a", 1.0)


def test_pop_empty_raises():
    heap = LazyMaxHeap()
    with pytest.raises(IndexError):
        heap.pop_max()


def test_peek_does_not_remove():
    heap = LazyMaxHeap()
    heap.push("x", 5.0)
    assert heap.peek_max() == ("x", 5.0)
    assert len(heap) == 1
    assert heap.pop_max() == ("x", 5.0)


def test_peek_empty_raises():
    with pytest.raises(IndexError):
        LazyMaxHeap().peek_max()


def test_repush_supersedes_old_entry():
    heap = LazyMaxHeap()
    heap.push("a", 10.0)
    heap.push("b", 5.0)
    heap.push("a", 1.0)  # demote a
    assert len(heap) == 2
    assert heap.pop_max() == ("b", 5.0)
    assert heap.pop_max() == ("a", 1.0)


def test_discard_removes_item():
    heap = LazyMaxHeap()
    heap.push("a", 2.0)
    heap.push("b", 1.0)
    heap.discard("a")
    assert "a" not in heap
    assert heap.pop_max() == ("b", 1.0)
    assert not heap


def test_discard_missing_is_noop():
    heap = LazyMaxHeap()
    heap.push("a", 1.0)
    heap.discard("zzz")
    assert len(heap) == 1


def test_contains_and_len():
    heap = LazyMaxHeap()
    assert not heap
    heap.push(1, 1.0)
    heap.push(2, 2.0)
    assert 1 in heap and 2 in heap and 3 not in heap
    assert len(heap) == 2


def test_priority_of():
    heap = LazyMaxHeap()
    heap.push("a", 4.0)
    heap.push("a", 7.0)
    assert heap.priority_of("a") == 7.0
    assert heap.priority_of("missing") is None


def test_items_iterates_live_only():
    heap = LazyMaxHeap()
    heap.push("a", 1.0)
    heap.push("b", 2.0)
    heap.discard("a")
    assert sorted(heap.items()) == ["b"]


def test_equal_priorities_all_retrievable():
    heap = LazyMaxHeap()
    for item in ["x", "y", "z"]:
        heap.push(item, 1.0)
    popped = {heap.pop_max()[0] for _ in range(3)}
    assert popped == {"x", "y", "z"}


# ----------------------------------------------------------- compaction


def test_compaction_bounds_heap_size_under_repushes():
    """Re-pushing the same items thousands of times (the CELF access
    pattern) must not grow the internal heap without bound: stale
    entries stay within ~2x the live count (plus the compaction floor)."""
    heap = LazyMaxHeap()
    live_items = 50
    for round_number in range(200):
        for item in range(live_items):
            heap.push(item, float(round_number * live_items + item))
    assert len(heap) == live_items
    bound = max(heap.COMPACT_MIN_SIZE, 3 * live_items + 1)
    assert len(heap._heap) <= bound


def test_compaction_bounds_heap_size_under_discards():
    heap = LazyMaxHeap()
    for wave in range(100):
        for item in range(wave * 40, (wave + 1) * 40):
            heap.push(item, float(item))
        for item in range(wave * 40, (wave + 1) * 40):
            heap.discard(item)
    assert len(heap) == 0
    assert len(heap._heap) <= heap.COMPACT_MIN_SIZE


def test_compaction_preserves_pop_order():
    heap = LazyMaxHeap()
    # Many supersessions, then check the final priorities win in order.
    for round_number in range(50):
        for item in range(30):
            heap.push(item, float((item * 7 + round_number) % 97))
    final = {item: float((item * 7 + 49) % 97) for item in range(30)}
    expected = sorted(final, key=lambda item: -final[item])
    popped = [heap.pop_max()[0] for _ in range(30)]
    assert sorted(popped) == sorted(expected)
    assert [final[i] for i in popped] == sorted(final.values(), reverse=True)


def test_small_heaps_never_compact():
    heap = LazyMaxHeap()
    for round_number in range(5):
        for item in range(4):
            heap.push(item, float(round_number))
    # Below the floor the stale entries are tolerated (cheap) ...
    assert len(heap._heap) == 20
    # ... and behaviour is unchanged.
    assert len(heap) == 4
