"""Documentation completeness checks.

The docs promise a full paper↔code map and an API overview; these tests
keep both honest: every source module appears in the paper mapping or
the API reference, every benchmark module appears in DESIGN.md's
ablation index or the README table, and the deliverable documents
exist and are non-trivial.
"""

from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent
SRC = ROOT / "src" / "repro"


def _doc_text(*names):
    return "\n".join((ROOT / name).read_text() for name in names)


def test_required_documents_exist_and_substantial():
    for name, minimum_lines in (
        ("README.md", 100),
        ("DESIGN.md", 80),
        ("EXPERIMENTS.md", 100),
        ("CONTRIBUTING.md", 30),
        ("docs/paper_mapping.md", 60),
        ("docs/algorithms.md", 60),
        ("docs/api.md", 60),
        ("docs/observability.md", 60),
    ):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text().splitlines()) >= minimum_lines, name


def test_every_module_documented_somewhere():
    docs = _doc_text(
        "docs/paper_mapping.md", "docs/api.md", "DESIGN.md", "README.md"
    )
    undocumented = []
    for path in SRC.rglob("*.py"):
        name = path.stem
        if name.startswith("_"):
            continue
        # A module counts as documented if its module name or its
        # subpackage is referenced in the docs.
        subpackage = path.parent.name
        if name not in docs and f"repro.{subpackage}" not in docs:
            undocumented.append(str(path.relative_to(SRC)))
    assert not undocumented, f"modules absent from docs: {undocumented}"


def test_every_benchmark_indexed():
    docs = _doc_text("DESIGN.md", "README.md")
    missing = []
    for path in (ROOT / "benchmarks").glob("bench_*.py"):
        stem = path.stem
        # Either named directly or covered by the bench_ablation_* and
        # per-figure groups README/DESIGN enumerate.
        if stem in docs or stem.replace("bench_", "") in docs:
            continue
        if stem.startswith("bench_ablation_") and "bench_ablation_*" in docs:
            continue
        missing.append(stem)
    assert not missing, f"benchmarks absent from DESIGN/README: {missing}"


def test_experiments_md_covers_every_paper_artifact():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in ("Table I", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8"):
        assert artifact in text, artifact


def test_design_md_flags_paper_match():
    text = (ROOT / "DESIGN.md").read_text()
    assert "Paper check" in text
    assert "IMC" in text


# ---------------------------------------------------------------------
# Metric-name catalogue: code ↔ CATALOG ↔ docs can never drift
# ---------------------------------------------------------------------


def _load_metric_lint():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_metric_names", ROOT / "scripts" / "check_metric_names.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_emitted_metric_name_is_catalogued():
    from repro.obs.metrics import CATALOG

    lint = _load_metric_lint()
    sites = lint.find_metric_call_sites()
    assert sites, "no metric call sites found under src/ — lint broken?"
    missing, stale = lint.check_catalog(CATALOG, sites)
    assert not missing, (
        "metric names emitted but missing from CATALOG: "
        f"{sorted({site.name for site in missing})}"
    )
    assert not stale, f"CATALOG entries with no call site: {stale}"


def test_every_catalogued_metric_is_documented():
    from repro.obs.metrics import CATALOG

    text = (ROOT / "docs" / "observability.md").read_text()
    undocumented = sorted(
        name for name in CATALOG if f"`{name}`" not in text
    )
    assert not undocumented, (
        "CATALOG names absent from docs/observability.md's metric "
        f"table: {undocumented}"
    )


def test_metric_lint_script_passes_as_a_script():
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_metric_names.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr or result.stdout


# ---------------------------------------------------------------------
# Span-name and event-type catalogues: code ↔ catalogue ↔ docs
# ---------------------------------------------------------------------


def _load_span_lint():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_span_names", ROOT / "scripts" / "check_span_names.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_emitted_span_name_is_catalogued():
    from repro.obs.tracer import SPAN_CATALOG

    lint = _load_span_lint()
    sites = lint.find_span_call_sites()
    assert sites, "no span call sites found under src/ — lint broken?"
    unknown, stale = lint.check_names(SPAN_CATALOG, sites)
    assert not unknown, (
        "span names emitted but missing from SPAN_CATALOG: "
        f"{sorted({site.name for site in unknown})}"
    )
    assert not stale, f"SPAN_CATALOG entries with no call site: {stale}"


def test_every_emitted_event_type_is_catalogued():
    from repro.obs.events import EVENT_TYPES

    lint = _load_span_lint()
    sites = lint.find_event_emit_sites()
    assert sites, "no event emit sites found under src/ — lint broken?"
    unknown, stale = lint.check_names(EVENT_TYPES, sites)
    assert not unknown, (
        "event types emitted but missing from EVENT_TYPES: "
        f"{sorted({site.name for site in unknown})}"
    )
    assert not stale, f"EVENT_TYPES entries with no emit site: {stale}"


def test_every_span_and_event_name_is_documented():
    from repro.obs.events import EVENT_TYPES
    from repro.obs.tracer import SPAN_CATALOG

    text = (ROOT / "docs" / "observability.md").read_text()
    undocumented = sorted(
        name
        for catalog in (SPAN_CATALOG, EVENT_TYPES)
        for name in catalog
        if f"`{name}`" not in text
    )
    assert not undocumented, (
        "span/event names absent from docs/observability.md: "
        f"{undocumented}"
    )


def test_span_lint_script_passes_as_a_script():
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_span_names.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr or result.stdout
