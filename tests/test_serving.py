"""Shard-server tests: scenarios, batching, shards, eviction, HTTP.

Synthetic instances are injected through ``ShardStore(instances=...)``
so no dataset building happens; pools are kept small. The crash test
(``fault`` marker) kills a real shard worker mid-request and proves the
answer is byte-identical to a fault-free run; the 200-client load floor
lives under the ``slow`` marker.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.errors import ServingError
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.obs.sinks import JsonlSink
from repro.serving import (
    RequestBatcher,
    ScenarioSpec,
    ShardApp,
    ShardStore,
    WarmShard,
    start_http_server,
)
from repro.utils.faults import Fault, FaultInjector

pytestmark = pytest.mark.serve


def _instance(seed: int = 17):
    graph, blocks = planted_partition_graph(
        [5] * 6, p_in=0.6, p_out=0.03, directed=True, seed=seed
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph.freeze(), communities


def _spec(name: str = "planted", **kwargs) -> ScenarioSpec:
    defaults = dict(dataset="facebook", seed=99, pool_size=120)
    defaults.update(kwargs)
    return ScenarioSpec(name=name, **defaults)


def _store(**kwargs) -> ShardStore:
    spec = _spec()
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("round_size", 60)
    return ShardStore(
        {spec.name: spec},
        instances={spec.name: _instance()},
        **kwargs,
    )


# ----------------------------------------------------------------------
# Scenario specs
# ----------------------------------------------------------------------


class TestScenarioSpec:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(ServingError, match="unknown dataset"):
            ScenarioSpec(name="x", dataset="not-a-dataset")

    def test_bad_threshold_rejected(self):
        with pytest.raises(ServingError, match="threshold"):
            ScenarioSpec(name="x", dataset="facebook", threshold="huge")

    def test_describe_is_json_ready(self):
        spec = _spec()
        assert json.loads(json.dumps(spec.describe()))["name"] == "planted"


# ----------------------------------------------------------------------
# Request batching
# ----------------------------------------------------------------------


class TestRequestBatcher:
    def test_concurrent_identical_requests_share_one_compute(self):
        batcher = RequestBatcher()
        gate = threading.Event()
        computes = []
        results = []

        def compute():
            gate.wait(timeout=10)
            computes.append(1)
            return "answer"

        def client():
            results.append(batcher.run("key", compute))

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        # Wait until every thread has joined the flight, then open it.
        deadline = threading.Event()
        for _ in range(200):
            if batcher.in_flight() == 1:
                break
            deadline.wait(0.01)
        gate.set()
        for t in threads:
            t.join(timeout=10)
        assert len(computes) == 1
        assert all(value == "answer" for value, _ in results)
        leaders = [leader for _, leader in results]
        assert leaders.count(True) == 1
        assert leaders.count(False) == 7

    def test_distinct_keys_do_not_batch(self):
        batcher = RequestBatcher()
        a, leader_a = batcher.run("a", lambda: 1)
        b, leader_b = batcher.run("b", lambda: 2)
        assert (a, b) == (1, 2)
        assert leader_a and leader_b

    def test_sequential_requests_recompute(self):
        batcher = RequestBatcher()
        calls = []
        for _ in range(3):
            _, leader = batcher.run("k", lambda: calls.append(1))
            assert leader
        assert len(calls) == 3

    def test_leader_error_propagates_to_followers(self):
        batcher = RequestBatcher()
        gate = threading.Event()
        errors = []

        def compute():
            gate.wait(timeout=10)
            raise ValueError("boom")

        def client():
            try:
                batcher.run("key", compute)
            except ValueError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(200):
            if batcher.in_flight() == 1:
                break
            threading.Event().wait(0.01)
        gate.set()
        for t in threads:
            t.join(timeout=10)
        assert len(errors) == 4
        assert batcher.in_flight() == 0


# ----------------------------------------------------------------------
# Warm shards
# ----------------------------------------------------------------------


class TestWarmShard:
    def test_merge_rounds_bump_version_and_bound_growth(self):
        graph, communities = _instance()
        shard = WarmShard(
            _spec(), graph, communities, workers=1, round_size=50
        )
        with shard.lock:
            shard.ensure_target(120)
        assert len(shard.pool) == 120
        assert shard.version == 3  # ceil(120 / 50) synchronous rounds
        assert shard.bytes > 0
        shard.close()

    def test_solve_caches_per_version(self):
        graph, communities = _instance()
        shard = WarmShard(
            _spec(), graph, communities, workers=1, round_size=60
        )
        with shard.lock:
            shard.warm()
            first, hit_first = shard.solve(4)
            second, hit_second = shard.solve(4)
            assert not hit_first and hit_second
            assert second == first
            # Growth invalidates: same query recomputes on new version.
            shard.ensure_target(len(shard.pool) + 30)
            third, hit_third = shard.solve(4)
            assert not hit_third
            assert third["pool_version"] > first["pool_version"]
        shard.close()

    def test_solve_matches_offline_pipeline(self):
        from repro.core.objective import evaluate_benefit
        from repro.core.ubg import UBG
        from repro.sampling.parallel import ParallelRICSampler
        from repro.sampling.pool import RICSamplePool

        spec = _spec()
        graph, communities = _instance()
        shard = WarmShard(spec, graph, communities, workers=1, round_size=60)
        with shard.lock:
            shard.warm()
            served, _ = shard.solve(5)
        shard.close()
        pool = RICSamplePool(
            ParallelRICSampler(
                graph, communities, seed=spec.seed, model=spec.model, workers=1
            )
        )
        pool.grow(spec.pool_size)
        selection = UBG(engine="flat").solve(pool, 5)
        assert served["seeds"] == sorted(selection.seeds)
        assert served["objective"] == evaluate_benefit(
            pool, selection.seeds, engine="flat"
        )
        assert served["num_samples"] == spec.pool_size

    def test_bad_requests_rejected(self):
        graph, communities = _instance()
        shard = WarmShard(_spec(), graph, communities, workers=1)
        with shard.lock:
            shard.ensure_target(20)
            with pytest.raises(ServingError, match="budget"):
                shard.solve(0)
            with pytest.raises(ServingError, match="unknown solver"):
                shard.solve(2, solver_name="Oracle")
        shard.close()

    def test_ci_width_tops_up_the_pool(self):
        graph, communities = _instance()
        shard = WarmShard(
            _spec(pool_size=40), graph, communities, workers=1, round_size=40
        )
        with shard.lock:
            shard.warm()
            loose, _ = shard.solve(3)
            tight, _ = shard.solve(3, ci_width=0.04)
        shard.close()
        assert tight["num_samples"] > loose["num_samples"]
        assert tight["num_samples"] <= 40 * 4
        if tight["ci_relative_width"] is not None:
            assert (
                tight["ci_relative_width"] <= 0.04
                or tight["num_samples"] == 40 * 4
            )


# ----------------------------------------------------------------------
# Shard store: accounting and eviction
# ----------------------------------------------------------------------


class TestShardStore:
    def test_hit_miss_accounting(self):
        store = _store()
        try:
            store.get("planted")
            store.get("planted")
            assert store.counters == {"hits": 1, "misses": 1, "evictions": 0}
            with pytest.raises(ServingError, match="unknown scenario"):
                store.get("nope")
        finally:
            store.close()

    def test_eviction_under_byte_budget(self):
        specs = {
            name: _spec(name, pool_size=60) for name in ("a", "b", "c")
        }
        instance = _instance()
        store = ShardStore(
            specs,
            instances={name: instance for name in specs},
            workers=1,
            round_size=60,
            memory_budget_bytes=1,  # everything evictable is over budget
        )
        try:
            for name in ("a", "b", "c"):
                shard = store.get(name)
                with shard.lock:
                    shard.warm()
            evicted = store.evict_to_budget(protect="c")
            assert set(evicted) == {"a", "b"}  # oldest first, c protected
            assert store.counters["evictions"] == 2
            # Re-requesting an evicted shard rebuilds it (a miss).
            misses = store.counters["misses"]
            store.get("a")
            assert store.counters["misses"] == misses + 1
        finally:
            store.close()

    def test_busy_shards_skipped_by_evictor(self):
        specs = {name: _spec(name, pool_size=40) for name in ("a", "b")}
        instance = _instance()
        store = ShardStore(
            specs,
            instances={name: instance for name in specs},
            workers=1,
            round_size=40,
            memory_budget_bytes=1,
        )
        try:
            for name in ("a", "b"):
                shard = store.get(name)
                with shard.lock:
                    shard.warm()
            busy = store.get("a")
            held = threading.Event()
            release = threading.Event()

            def hold_lock():
                with busy.lock:
                    held.set()
                    release.wait(timeout=10)

            holder = threading.Thread(target=hold_lock)
            holder.start()
            held.wait(timeout=10)
            evicted = store.evict_to_budget()
            release.set()
            holder.join(timeout=10)
            assert evicted == ["b"]  # "a" was mid-request: skipped
        finally:
            store.close()

    def test_closed_store_refuses_requests(self):
        store = _store()
        store.close()
        with pytest.raises(ServingError, match="closed"):
            store.get("planted")


# ----------------------------------------------------------------------
# HTTP round trips
# ----------------------------------------------------------------------


def _post(port: int, path: str, payload: dict):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=60
    ) as response:
        return response.status, response.read()


class TestHTTPServer:
    @pytest.fixture
    def served(self, tmp_path):
        store = _store()
        trace_path = tmp_path / "trace.jsonl"
        app = ShardApp(store, trace_path=str(trace_path))
        server = start_http_server(app)
        port = server.server_address[1]
        yield app, port, trace_path
        server.shutdown()
        server.server_close()
        app.close()

    def test_healthz_and_metrics(self, served):
        _, port, _ = served
        status, body = _get(port, "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}
        status, _ = _get(port, "/metrics")
        assert status == 200

    def test_solve_roundtrip_and_cache(self, served):
        _, port, _ = served
        status, first = _post(
            port, "/solve", {"scenario": "planted", "budget": 4}
        )
        assert status == 200
        assert first["num_samples"] == 120
        assert first["seeds"] == sorted(first["seeds"])
        assert not first["cache_hit"]
        status, second = _post(
            port, "/solve", {"scenario": "planted", "budget": 4}
        )
        assert status == 200
        assert second["cache_hit"]
        for field in ("seeds", "objective", "num_samples"):
            assert second[field] == first[field]

    def test_error_mapping(self, served):
        _, port, _ = served
        assert _post(port, "/solve", {"scenario": "nope", "budget": 2})[0] == 404
        assert _post(port, "/solve", {"scenario": "planted"})[0] == 400
        assert _post(port, "/solve", {"scenario": "planted", "budget": 0})[0] == 400
        assert (
            _post(
                port,
                "/solve",
                {"scenario": "planted", "budget": 2, "solver": "Oracle"},
            )[0]
            == 400
        )
        assert _get(port, "/healthz")[0] == 200  # server still alive

    def test_missing_content_length_is_411(self, served):
        _, port, _ = served
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.putrequest("POST", "/solve", skip_accept_encoding=True)
            conn.endheaders()
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 411
            assert "Content-Length" in body["error"]
        finally:
            conn.close()

    def test_oversized_content_length_is_413_without_reading(self, served):
        from repro.serving.server import MAX_BODY_BYTES

        _, port, _ = served
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.putrequest("POST", "/solve", skip_accept_encoding=True)
            # Declare a giant body but never send it: the server must
            # reject on the header alone, not block reading the body.
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 413
            assert "exceeds" in body["error"]
        finally:
            conn.close()

    def test_malformed_content_length_is_400(self, served):
        _, port, _ = served
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.putrequest("POST", "/solve", skip_accept_encoding=True)
            conn.putheader("Content-Length", "banana")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_invalid_json_body_is_400_and_server_survives(self, served):
        _, port, _ = served
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("POST", "/solve", body=b"{not json")
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()
        assert _get(port, "/healthz")[0] == 200

    def test_status_reads_live_trace_tail(self, served):
        app, port, trace_path = served
        with JsonlSink(str(trace_path)) as sink:
            sink.write({"name": "span-1"})
            # A torn in-flight record must not break /status.
            sink._handle.write('{"name": "half')
            sink._handle.flush()
            status, body = _get(port, "/status")
        assert status == 200
        payload = json.loads(body)
        assert payload["trace_tail"] == [{"name": "span-1"}]
        assert payload["scenarios"] == ["planted"]
        assert payload["requests"]["total"] == 0


# ----------------------------------------------------------------------
# Crash mid-request: byte-identical answers
# ----------------------------------------------------------------------


@pytest.mark.fault
def test_worker_kill_mid_request_is_byte_identical():
    """A shard worker hard-killed during pool growth must not change
    the solve answer: the failed batch is re-dispatched with the same
    pre-drawn child seeds, so the rebuilt pool — and therefore seeds,
    objective and sample count — is byte-identical to a fault-free run.
    """
    spec = _spec(pool_size=48)
    instance = _instance()

    def serve_one(fault_injector):
        store = ShardStore(
            {spec.name: spec},
            instances={spec.name: instance},
            workers=2,
            round_size=48,
            fault_injector=fault_injector,
        )
        app = ShardApp(store)
        try:
            return app.solve({"scenario": spec.name, "budget": 4})
        finally:
            app.close()

    golden = serve_one(None)
    injector = FaultInjector(
        [Fault.kill_on("generate_batch", start=0, attempt=0)]
    )
    survived = serve_one(injector)
    for field in ("seeds", "objective", "num_samples"):
        assert survived[field] == golden[field], field


# ----------------------------------------------------------------------
# Load floor (slow lane)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_load_floor_200_concurrent_clients():
    """The acceptance floor: >= 200 concurrent clients, zero dropped
    requests, every response deterministic-field-identical."""
    store = _store()
    app = ShardApp(store)
    server = start_http_server(app)
    port = server.server_address[1]
    results = []
    errors = []

    def client():
        try:
            results.append(
                _post(port, "/solve", {"scenario": "planted", "budget": 4})
            )
        except Exception as exc:  # noqa: BLE001 - counted as a drop
            errors.append(exc)

    try:
        threads = [threading.Thread(target=client) for _ in range(200)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors
        assert len(results) == 200
        assert all(status == 200 for status, _ in results)
        golden = results[0][1]
        for _, body in results:
            for field in ("seeds", "objective", "num_samples"):
                assert body[field] == golden[field]
    finally:
        server.shutdown()
        server.server_close()
        app.close()


# ----------------------------------------------------------------------
# Cross-width coalescing
# ----------------------------------------------------------------------


class TestWidthCoalescing:
    def test_tightest_width_tracks_the_in_flight_minimum(self):
        batcher = RequestBatcher()
        gate = threading.Event()
        observed = []

        def leader_compute():
            gate.wait(timeout=10)
            observed.append(batcher.tightest_width("key"))
            return "done"

        def client(width):
            batcher.run("key", leader_compute, width=width)

        threads = [
            threading.Thread(target=client, args=(w,))
            for w in (0.2, 0.05, None, 0.1)
        ]
        for t in threads:
            t.start()
        for _ in range(200):
            if batcher.in_flight() == 1:
                break
            threading.Event().wait(0.01)
        # Give followers a beat to register their widths on the flight.
        for _ in range(200):
            with batcher._lock:
                registered = len(batcher._flights["key"].widths)
            if registered == 4:
                break
            threading.Event().wait(0.01)
        gate.set()
        for t in threads:
            t.join(timeout=10)
        assert observed == [0.05]  # min of registered, None ignored
        assert batcher.tightest_width("key") is None  # flight done

    def test_width_provider_tightens_the_top_up(self):
        graph, communities = _instance()
        shard = WarmShard(
            _spec(pool_size=40), graph, communities, workers=1, round_size=40
        )
        with shard.lock:
            shard.warm()
            loose, _ = shard.solve(3, ci_width=0.5)
            # Same loose request, but a follower registered 0.04 on the
            # flight: the provider must drive the shared top-up.
            tight, _ = shard.solve(
                3, ci_width=0.45, width_provider=lambda: 0.04
            )
        shard.close()
        assert loose["num_samples"] == 40  # 0.5 already satisfied warm
        assert tight["num_samples"] > 40
        if tight["ci_relative_width"] is not None:
            assert (
                tight["ci_relative_width"] <= 0.04 or tight["pool_capped"]
            )

    def test_width_provider_none_falls_back_to_own_width(self):
        graph, communities = _instance()
        shard = WarmShard(
            _spec(pool_size=40), graph, communities, workers=1, round_size=40
        )
        with shard.lock:
            shard.warm()
            via_provider, _ = shard.solve(
                5, ci_width=0.04, width_provider=lambda: None
            )
            shard_b = WarmShard(
                _spec(pool_size=40),
                graph,
                communities,
                workers=1,
                round_size=40,
            )
        with shard_b.lock:
            shard_b.warm()
            direct, _ = shard_b.solve(5, ci_width=0.04)
        shard.close()
        shard_b.close()
        for field in ("seeds", "objective", "num_samples"):
            assert via_provider[field] == direct[field]

    def test_plain_and_ci_width_requests_use_separate_flights(self):
        store = _store()
        app = ShardApp(store)
        keys = []
        original = app.batcher.run

        def spy(key, compute, **kwargs):
            keys.append(key)
            return original(key, compute, **kwargs)

        app.batcher.run = spy
        try:
            app.solve({"scenario": "planted", "budget": 4})
            app.solve(
                {"scenario": "planted", "budget": 4, "ci_width": 0.3}
            )
        finally:
            app.close()
        # Same query shape, but the group key splits on "has a width"
        # — a plain query can never be stretched by a ci_width flight.
        assert keys == [
            ("planted", 4, "UBG", False),
            ("planted", 4, "UBG", True),
        ]

    def test_concurrent_mixed_widths_each_answered_at_own_precision(self):
        store = _store()
        app = ShardApp(store)
        widths = [None, 0.3, 0.05, None, 0.05, 0.3]
        responses = [None] * len(widths)
        barrier = threading.Barrier(len(widths))

        def client(index, width):
            payload = {"scenario": "planted", "budget": 4}
            if width is not None:
                payload["ci_width"] = width
            barrier.wait(timeout=10)
            responses[index] = app.solve(payload)

        try:
            threads = [
                threading.Thread(target=client, args=(i, w))
                for i, w in enumerate(widths)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert all(r is not None for r in responses)
            for width, response in zip(widths, responses):
                # Pool growth stays within the adaptive ceiling.
                assert 120 <= response["num_samples"] <= 120 * 4
                if width is not None and (
                    response["ci_relative_width"] is not None
                ):
                    # The coalescing contract: every ci_width request
                    # is answered at its *own* precision (or the pool
                    # hit the cap, where no answer could do better).
                    assert (
                        response["ci_relative_width"] <= width
                        or response["pool_capped"]
                    )
        finally:
            app.close()
