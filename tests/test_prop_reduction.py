"""Property-based tests of the DkS → IMC reduction (Theorem 1).

For random simple graphs and arbitrary node subsets, the proof's two
observations hold exactly on the deterministic reduced instance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import dks_to_imc, induced_edge_count


@st.composite
def dks_instances(draw):
    n = draw(st.integers(2, 8))
    possible = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=12, unique=True)
    )
    subset = draw(st.sets(st.integers(0, n - 1), max_size=n))
    return edges, subset


@given(dks_instances())
@settings(max_examples=150, deadline=None)
def test_lift_equality(args):
    """Observation 1: c(lift(S_D)) = e(S_D)."""
    edges, subset = args
    red = dks_to_imc(edges)
    liftable = [a for a in subset if a in red.copies_of]
    lifted = red.lift(liftable)
    assert red.benefit(lifted) == induced_edge_count(edges, liftable)


@given(dks_instances())
@settings(max_examples=150, deadline=None)
def test_project_upper_bound(args):
    """Observation 2: c(S_I) <= e(project(S_I)) for any copy subset."""
    edges, subset = args
    red = dks_to_imc(edges)
    all_copies = sorted(red.corresponding)
    copy_subset = [all_copies[i % len(all_copies)] for i in subset]
    projected = red.project(copy_subset)
    assert red.benefit(copy_subset) <= induced_edge_count(edges, projected)


@given(dks_instances())
@settings(max_examples=100, deadline=None)
def test_reduction_structure_invariants(args):
    edges, _ = args
    red = dks_to_imc(edges)
    # One community per edge, each with two distinct copies.
    assert red.communities.r == len(edges)
    assert all(c.size == 2 and c.threshold == 2 for c in red.communities)
    # Copy counts equal node degrees in the DkS graph.
    from collections import Counter

    degree = Counter()
    for a, b in edges:
        degree[a] += 1
        degree[b] += 1
    for original, copies in red.copies_of.items():
        assert len(copies) == degree[original]
