"""Crash-safe campaign checkpointing: atomicity, resume, determinism."""

import json
import os

import pytest

from repro.errors import ExperimentError
from repro.experiments.campaign import cell_key, run_campaign
from repro.experiments.checkpoint import (
    CheckpointStore,
    ResumeReport,
    as_checkpoint,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_suite

CONFIG = ExperimentConfig(scale=0.05, pool_size=120, eval_trials=30)
ALGOS = ["MAF", "Degree", "Random"]
KS = [3]


def _sig(runs):
    """Results minus wall-clock (never reproducible across sessions)."""
    return {
        name: [(r.algorithm, r.k, r.seeds, r.benefit) for r in rs]
        for name, rs in runs.items()
    }


# ------------------------------------------------------------ store


def test_store_roundtrip_and_atomic_file(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    store = CheckpointStore(path)
    store.record("a", {"x": 1})
    store.record("b", [1, 2, 3])
    assert "a" in store and "b" in store and len(store) == 2
    assert not os.path.exists(f"{path}.tmp")  # temp replaced, not left
    reloaded = CheckpointStore(path)
    assert reloaded.get("a") == {"x": 1}
    assert reloaded.get("b") == [1, 2, 3]


def test_store_resume_false_discards_existing(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    CheckpointStore(path).record("a", 1)
    fresh = CheckpointStore(path, resume=False)
    assert len(fresh) == 0
    assert not os.path.exists(path)  # discarded until first record


def test_store_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    store = CheckpointStore(path)
    store.record("a", 1)
    store.record("b", 2)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"key": "c", "payl')  # crash mid-write
    recovered = CheckpointStore(path)
    assert sorted(recovered.keys()) == ["a", "b"]


def test_store_rejects_earlier_corruption_naming_path(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("not json\n")
        fh.write(json.dumps({"key": "a", "payload": 1}) + "\n")
    with pytest.raises(ExperimentError, match="ckpt.jsonl"):
        CheckpointStore(path)


def test_store_get_unknown_key_errors(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt.jsonl")
    with pytest.raises(ExperimentError, match="missing"):
        store.get("missing")


def test_report_tracks_skipped_and_computed(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    CheckpointStore(path).record("old", 1)
    store = CheckpointStore(path)
    store.get("old")
    store.record("new", 2)
    report = store.report()
    assert isinstance(report, ResumeReport)
    assert report.skipped == ("old",)
    assert report.computed == ("new",)
    assert report.num_skipped == 1 and report.num_computed == 1
    assert "1 skipped" in report.summary()


def test_as_checkpoint_coercions(tmp_path):
    assert as_checkpoint(None) is None
    store = CheckpointStore(tmp_path / "a.jsonl")
    assert as_checkpoint(store) is store
    built = as_checkpoint(tmp_path / "b.jsonl")
    assert isinstance(built, CheckpointStore)


# ------------------------------------------------------------ run_suite


def test_suite_checkpoint_resume_is_deterministic(tmp_path):
    path = tmp_path / "suite.jsonl"
    reference = run_suite(CONFIG, ALGOS, KS)

    # Simulate a crash after the first two completed runs.
    class Boom(Exception):
        pass

    store = CheckpointStore(path)
    original_record = store.record
    calls = []

    def crashing_record(key, payload):
        original_record(key, payload)
        calls.append(key)
        if len(calls) == 2:
            raise Boom

    store.record = crashing_record
    with pytest.raises(Boom):
        run_suite(CONFIG, ALGOS, KS, checkpoint=store)

    # Resume: completed runs come from disk, the rest recompute to the
    # exact same seeds/benefits an uninterrupted session produces.
    resumed_store = CheckpointStore(path)
    resumed = run_suite(CONFIG, ALGOS, KS, checkpoint=resumed_store)
    report = resumed_store.report()
    assert report.num_skipped == 2
    assert report.num_computed == len(ALGOS) * len(KS) - 2
    assert _sig(resumed) == _sig(reference)


def test_suite_full_checkpoint_recomputes_nothing(tmp_path):
    path = tmp_path / "suite.jsonl"
    first = run_suite(CONFIG, ALGOS, KS, checkpoint=path)
    store = CheckpointStore(path)
    second = run_suite(CONFIG, ALGOS, KS, checkpoint=store)
    assert store.report().num_computed == 0
    assert store.report().num_skipped == len(ALGOS) * len(KS)
    assert _sig(first) == _sig(second)


def test_suite_uses_config_checkpoint_path(tmp_path):
    path = str(tmp_path / "via_config.jsonl")
    config = CONFIG.with_overrides(checkpoint_path=path)
    run_suite(config, ["Degree"], KS)
    assert os.path.exists(path)
    store = CheckpointStore(path)
    assert sorted(store.keys()) == ["Degree|k=3"]


def test_config_rejects_empty_checkpoint_path():
    with pytest.raises(ExperimentError):
        ExperimentConfig(checkpoint_path="")


# ------------------------------------------------------------ campaign


def test_campaign_checkpoint_resume(tmp_path):
    path = tmp_path / "campaign.jsonl"
    kwargs = dict(thresholds=("fractional", "bounded"))
    reference = run_campaign(CONFIG, ["Degree"], KS, **kwargs)
    run_campaign(CONFIG, ["Degree"], KS, checkpoint=path, **kwargs)
    store = CheckpointStore(path)
    assert cell_key("facebook", "fractional", "louvain") in store
    resumed = run_campaign(
        CONFIG, ["Degree"], KS, checkpoint=store, **kwargs
    )
    assert store.report().num_computed == 0
    assert store.report().num_skipped == 2
    assert [(c.dataset, c.threshold, c.formation, _sig(c.runs)) for c in resumed] == [
        (c.dataset, c.threshold, c.formation, _sig(c.runs)) for c in reference
    ]
