"""Common-random-worlds evaluator tests."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.diffusion.common_worlds import CommonWorldEvaluator
from repro.diffusion.simulator import community_benefit_exact, spread_exact
from repro.errors import EstimationError
from repro.graph.builders import from_edge_list


@pytest.fixture
def instance():
    graph = from_edge_list(4, [(0, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)])
    communities = CommunityStructure(
        [Community(members=(2, 3), threshold=2, benefit=1.0)]
    )
    return graph, communities


def test_benefit_converges_to_exact(instance):
    graph, communities = instance
    evaluator = CommonWorldEvaluator(
        graph, communities, num_worlds=30_000, seed=1
    )
    exact = community_benefit_exact(graph, communities, [0, 1])
    assert evaluator.benefit([0, 1]) == pytest.approx(exact, abs=0.01)


def test_spread_converges_to_exact(instance):
    graph, communities = instance
    evaluator = CommonWorldEvaluator(
        graph, communities, num_worlds=30_000, seed=2
    )
    exact = spread_exact(graph, [0])
    assert evaluator.spread([0]) == pytest.approx(exact, abs=0.03)


def test_per_world_benefits_aligned(instance):
    graph, communities = instance
    evaluator = CommonWorldEvaluator(graph, communities, num_worlds=50, seed=3)
    values = evaluator.benefits([2, 3])
    assert len(values) == 50
    # Seeding both members always influences the community.
    assert all(v == 1.0 for v in values)


def test_compare_dominant_seed_set(instance):
    graph, communities = instance
    evaluator = CommonWorldEvaluator(graph, communities, num_worlds=500, seed=4)
    result = evaluator.compare([2, 3], [0])
    # {2,3} influences every world; {0} cannot influence any (node 3
    # unreachable from 0 except via 2 -> 3 — possible! 0->2->3) — so
    # just assert dominance, not strictness per world.
    assert result["mean_diff"] > 0
    assert result["wins_a"] >= result["wins_b"]
    assert result["mean_a"] == pytest.approx(1.0)


def test_compare_is_paired_zero_variance_for_identical(instance):
    graph, communities = instance
    evaluator = CommonWorldEvaluator(graph, communities, num_worlds=200, seed=5)
    result = evaluator.compare([0, 1], [0, 1])
    assert result["mean_diff"] == 0.0
    assert result["ties"] == 200.0


def test_lt_model_panel(instance):
    graph, communities = instance
    evaluator = CommonWorldEvaluator(
        graph, communities, num_worlds=100, model="lt", seed=6
    )
    # LT worlds: at most one in-edge kept per node.
    for world in evaluator.worlds:
        for v in world.nodes():
            assert world.in_degree(v) <= 1
    assert 0.0 <= evaluator.benefit([0, 1]) <= 1.0


def test_validation(instance):
    graph, communities = instance
    with pytest.raises(EstimationError):
        CommonWorldEvaluator(graph, communities, num_worlds=0)
    with pytest.raises(EstimationError):
        CommonWorldEvaluator(graph, communities, model="sir")


def test_deterministic_given_seed(instance):
    graph, communities = instance
    a = CommonWorldEvaluator(graph, communities, num_worlds=50, seed=9)
    b = CommonWorldEvaluator(graph, communities, num_worlds=50, seed=9)
    assert a.benefits([0, 1]) == b.benefits([0, 1])
