"""Bitset engine tests: exact equivalence with the reference engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.communities.structure import Community, CommunityStructure
from repro.core.bitset_engine import BitsetCoverage
from repro.core.objective import CoverageState
from repro.errors import SolverError
from repro.graph.digraph import DiGraph
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler

NUM_NODES = 10


def _manual_pool():
    communities = CommunityStructure(
        [
            Community(members=(0, 1), threshold=2, benefit=1.0),
            Community(members=(2,), threshold=1, benefit=1.0),
        ]
    )
    pool = RICSamplePool(RICSampler(DiGraph(NUM_NODES), communities, seed=1))
    pool.add(RICSample(0, 2, (0, 1), (frozenset({0, 4}), frozenset({1, 5}))))
    pool.add(RICSample(1, 1, (2,), (frozenset({2, 4}),)))
    return pool


def test_matches_reference_step_by_step():
    pool = _manual_pool()
    ref = CoverageState(pool)
    fast = BitsetCoverage(pool)
    for node in (4, 5, 0, 2, 1):
        assert fast.gain_pair(node) == (
            ref.gain_influenced(node),
            pytest.approx(ref.gain_fractional(node)),
        )
        ref.add_seed(node)
        fast.add_seed(node)
        assert fast.influenced_count == ref.influenced_count
        assert fast.fractional_count == pytest.approx(ref.fractional_count)
        assert fast.estimate_benefit() == pytest.approx(ref.estimate_benefit())
        assert fast.estimate_upper_bound() == pytest.approx(
            ref.estimate_upper_bound()
        )


def test_duplicate_seed_rejected():
    fast = BitsetCoverage(_manual_pool())
    fast.add_seed(4)
    with pytest.raises(SolverError):
        fast.add_seed(4)


def test_gain_of_seed_is_zero():
    fast = BitsetCoverage(_manual_pool())
    fast.add_seed(4)
    assert fast.gain_pair(4) == (0, 0.0)


def test_unknown_node_gains_nothing():
    fast = BitsetCoverage(_manual_pool())
    assert fast.gain_pair(99) == (0, 0.0)
    fast.add_seed(99)  # harmless: touches nothing
    assert fast.influenced_count == 0


@st.composite
def random_pool_and_seed_order(draw):
    num_communities = draw(st.integers(1, 3))
    communities = []
    next_node = 0
    for _ in range(num_communities):
        size = draw(st.integers(1, 3))
        members = tuple(range(next_node, next_node + size))
        next_node += size
        communities.append(
            Community(
                members=members,
                threshold=draw(st.integers(1, size)),
                benefit=1.0,
            )
        )
    structure = CommunityStructure(communities)
    pool = RICSamplePool(RICSampler(DiGraph(NUM_NODES), structure, seed=0))
    for _ in range(draw(st.integers(1, 6))):
        idx = draw(st.integers(0, num_communities - 1))
        community = structure[idx]
        reaches = tuple(
            frozenset(
                draw(st.sets(st.integers(0, NUM_NODES - 1), max_size=4))
                | {member}
            )
            for member in community.members
        )
        pool.add(
            RICSample(idx, community.threshold, community.members, reaches)
        )
    order = draw(
        st.lists(
            st.integers(0, NUM_NODES - 1), unique=True, min_size=1, max_size=6
        )
    )
    return pool, order


@given(random_pool_and_seed_order())
@settings(max_examples=150, deadline=None)
def test_property_equivalence_with_reference(args):
    pool, order = args
    ref = CoverageState(pool)
    fast = BitsetCoverage(pool)
    for node in order:
        assert fast.gain_pair(node)[0] == ref.gain_pair(node)[0]
        assert fast.gain_pair(node)[1] == pytest.approx(ref.gain_pair(node)[1])
        ref.add_seed(node)
        fast.add_seed(node)
    assert fast.influenced_count == ref.influenced_count
    assert fast.fractional_count == pytest.approx(ref.fractional_count)
