"""Math helper tests."""

import math

import pytest

from repro.utils.math import (
    clamp,
    harmonic_number,
    log_binomial,
    log_n_choose_k,
    mean,
)


def test_log_binomial_small_exact():
    assert math.isclose(log_binomial(5, 2), math.log(10))
    assert math.isclose(log_binomial(10, 3), math.log(120))


def test_log_binomial_edges():
    assert log_binomial(7, 0) == 0.0
    assert log_binomial(7, 7) == 0.0
    assert log_binomial(3, 5) == float("-inf")
    assert log_binomial(3, -1) == float("-inf")


def test_log_binomial_symmetry():
    assert math.isclose(log_binomial(100, 30), log_binomial(100, 70))


def test_log_binomial_huge_values_finite():
    value = log_binomial(10**6, 100)
    assert math.isfinite(value) and value > 0


def test_log_n_choose_k_alias():
    assert log_n_choose_k(20, 5) == log_binomial(20, 5)


def test_harmonic_number_small():
    assert harmonic_number(0) == 0.0
    assert math.isclose(harmonic_number(1), 1.0)
    assert math.isclose(harmonic_number(4), 1 + 0.5 + 1 / 3 + 0.25)


def test_harmonic_number_asymptotic_matches_direct():
    direct = sum(1.0 / i for i in range(1, 1001))
    assert math.isclose(harmonic_number(1000), direct, rel_tol=1e-9)


def test_clamp():
    assert clamp(5, 0, 3) == 3
    assert clamp(-1, 0, 3) == 0
    assert clamp(2, 0, 3) == 2


def test_mean():
    assert mean([1, 2, 3]) == 2.0
    assert mean(iter([4.0])) == 4.0
    with pytest.raises(ValueError):
        mean([])
