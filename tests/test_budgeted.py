"""Budgeted (cost-aware) IMC tests."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.budgeted import (
    BudgetedUBG,
    best_single_affordable,
    budgeted_lazy_greedy_nu,
    degree_proportional_costs,
    uniform_costs,
)
from repro.errors import SolverError
from repro.graph.builders import from_edge_list
from repro.graph.digraph import DiGraph
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler


def _pool_with(samples, communities, num_nodes=10):
    pool = RICSamplePool(RICSampler(DiGraph(num_nodes), communities, seed=1))
    for s in samples:
        pool.add(s)
    return pool


@pytest.fixture
def cost_pool():
    communities = CommunityStructure(
        [
            Community(members=(0,), threshold=1, benefit=1.0),
            Community(members=(1,), threshold=1, benefit=1.0),
            Community(members=(2,), threshold=1, benefit=1.0),
        ]
    )
    samples = [
        RICSample(0, 1, (0,), (frozenset({0, 5}),)),
        RICSample(1, 1, (1,), (frozenset({1, 5}),)),
        RICSample(2, 1, (2,), (frozenset({2, 6}),)),
    ]
    return _pool_with(samples, communities)


def test_uniform_costs_recovers_cardinality(cost_pool):
    costs = uniform_costs(range(10))
    seeds = budgeted_lazy_greedy_nu(cost_pool, costs, budget=2.0)
    assert len(seeds) <= 2
    # 5 covers two samples, 6 the third.
    assert cost_pool.influenced_count(seeds) == 3


def test_cost_ratio_changes_choice(cost_pool):
    # Make the double-covering node 5 very expensive: per-cost greedy
    # should now prefer cheap singles.
    costs = uniform_costs(range(10))
    costs[5] = 10.0
    seeds = budgeted_lazy_greedy_nu(cost_pool, costs, budget=3.0)
    assert 5 not in seeds
    assert set(seeds) <= {0, 1, 2, 6}


def test_budget_never_exceeded(cost_pool):
    costs = {v: 0.7 for v in range(10)}
    seeds = budgeted_lazy_greedy_nu(cost_pool, costs, budget=1.5)
    assert sum(costs[v] for v in seeds) <= 1.5
    assert len(seeds) == 2


def test_best_single_affordable(cost_pool):
    costs = uniform_costs(range(10))
    assert best_single_affordable(cost_pool, costs, budget=1.0) == [5]
    costs[5] = 99.0
    assert best_single_affordable(cost_pool, costs, budget=1.0) != [5]


def test_best_single_empty_when_nothing_affordable(cost_pool):
    costs = {v: 100.0 for v in range(10)}
    assert best_single_affordable(cost_pool, costs, budget=1.0) == []


def test_guard_arm_beats_ratio_greedy_trap():
    """One expensive node covers everything; many cheap nodes cover one
    sample each. Per-cost greedy fills the budget with cheap nodes; the
    singleton guard must rescue the solution."""
    communities = CommunityStructure(
        [
            Community(members=tuple(range(6)), threshold=1, benefit=6.0),
        ]
    )
    # 10 samples; node 9 covers all; nodes 0..5 cover one each, cheap.
    samples = []
    for i in range(6):
        samples.append(
            RICSample(0, 1, tuple(range(6)), tuple(
                frozenset({m, 9}) if m == i else frozenset({m, 9})
                for m in range(6)
            ))
        )
    pool = _pool_with(samples, communities)
    costs = {v: 0.5 for v in range(9)}
    costs[9] = 3.0
    result = BudgetedUBG().solve(pool, costs, budget=3.0)
    assert result.objective == pool.total_benefit  # everything influenced
    assert result.metadata["spent"] <= 3.0


def test_budgeted_ubg_metadata(cost_pool):
    costs = uniform_costs(range(10))
    result = BudgetedUBG().solve(cost_pool, costs, budget=2.0)
    assert result.solver == "BudgetedUBG"
    assert result.metadata["arm"] in ("cost-greedy", "best-single")
    assert result.metadata["spent"] <= result.metadata["budget"]
    assert 0.0 <= result.metadata["sandwich_ratio"] <= 1.0 + 1e-9


def test_validation(cost_pool):
    with pytest.raises(SolverError):
        budgeted_lazy_greedy_nu(cost_pool, {}, budget=2.0)
    with pytest.raises(SolverError):
        budgeted_lazy_greedy_nu(
            cost_pool, {v: 0.0 for v in range(10)}, budget=2.0
        )
    with pytest.raises(SolverError):
        budgeted_lazy_greedy_nu(
            cost_pool, uniform_costs(range(10)), budget=0.0
        )
    with pytest.raises(SolverError):
        uniform_costs(range(3), cost=-1.0)


def test_degree_proportional_costs():
    g = from_edge_list(3, [(0, 1, 1.0), (0, 2, 1.0)])
    costs = degree_proportional_costs(g, base=1.0, per_degree=0.5)
    assert costs[0] == 2.0
    assert costs[1] == 1.0
    with pytest.raises(SolverError):
        degree_proportional_costs(g, base=0.0)


def test_budgeted_on_sampled_instance():
    """End-to-end on a sampled pool with degree-proportional costs."""
    from repro.graph.generators import planted_partition_graph
    from repro.graph.weights import assign_weighted_cascade

    graph, blocks = planted_partition_graph(
        [5] * 4, p_in=0.6, p_out=0.05, directed=True, seed=9
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [Community(members=tuple(b), threshold=2, benefit=float(len(b))) for b in blocks]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=10))
    pool.grow(300)
    costs = degree_proportional_costs(graph)
    result = BudgetedUBG().solve(pool, costs, budget=8.0)
    assert result.objective > 0
    assert result.metadata["spent"] <= 8.0 + 1e-9
