"""Dagum stopping rule and CI estimator tests."""

import math

import pytest

from repro.diffusion.estimators import (
    DagumEstimate,
    dagum_stopping_rule,
    hoeffding_trials,
    mean_with_confidence,
    stopping_rule_threshold,
)
from repro.errors import EstimationError
from repro.rng import make_rng


def test_threshold_formula():
    eps, delta = 0.25, 0.1
    expected = 1 + 4 * (math.e - 2) * math.log(2 / delta) * (1 + eps) / eps**2
    assert stopping_rule_threshold(eps, delta) == pytest.approx(expected)


def test_threshold_validates():
    with pytest.raises(EstimationError):
        stopping_rule_threshold(0.0, 0.1)
    with pytest.raises(EstimationError):
        stopping_rule_threshold(0.2, 1.0)


def test_stopping_rule_estimates_bernoulli_mean():
    rng = make_rng(77)
    p = 0.3
    result = dagum_stopping_rule(lambda: 1.0 if rng.random() < p else 0.0, 0.1, 0.1)
    assert result.converged
    assert result.value == pytest.approx(p, rel=0.12)


def test_stopping_rule_estimates_continuous_mean():
    rng = make_rng(5)
    result = dagum_stopping_rule(lambda: rng.random(), 0.1, 0.1)
    assert result.converged
    assert result.value == pytest.approx(0.5, rel=0.12)


def test_stopping_rule_deterministic_one():
    result = dagum_stopping_rule(lambda: 1.0, 0.2, 0.2)
    assert result.converged
    # T = ceil(threshold), estimate = threshold / T ~ 1.
    assert result.value == pytest.approx(1.0, rel=0.05)


def test_stopping_rule_respects_max_trials():
    result = dagum_stopping_rule(lambda: 0.0, 0.2, 0.2, max_trials=50)
    assert not result.converged
    assert result.value is None
    assert result.trials == 50


def test_stopping_rule_rejects_out_of_range_outcomes():
    with pytest.raises(EstimationError):
        dagum_stopping_rule(lambda: 1.5, 0.2, 0.2)


def test_mean_with_confidence():
    mean, half = mean_with_confidence([2.0, 2.0, 2.0])
    assert mean == 2.0 and half == 0.0
    mean, half = mean_with_confidence([0.0, 1.0])
    assert mean == 0.5 and half > 0
    mean, half = mean_with_confidence([3.5])
    assert mean == 3.5 and half == 0.0
    with pytest.raises(EstimationError):
        mean_with_confidence([])


def test_hoeffding_trials_monotone():
    assert hoeffding_trials(0.1, 0.1) > hoeffding_trials(0.2, 0.1)
    assert hoeffding_trials(0.1, 0.05) > hoeffding_trials(0.1, 0.1)
    with pytest.raises(EstimationError):
        hoeffding_trials(0.0, 0.1)
    with pytest.raises(EstimationError):
        hoeffding_trials(0.1, 0.1, value_range=0.0)


def test_dagum_estimate_dataclass_fields():
    est = DagumEstimate(value=0.5, trials=10, successes=5.0, converged=True)
    assert est.value == 0.5 and est.trials == 10 and est.converged
