"""Theorem 1 reduction tests: e(S_D) = c(S_I) made executable."""

import itertools

import pytest

from repro.core.reduction import DkSReduction, dks_to_imc, induced_edge_count
from repro.errors import SolverError
from repro.graph.analysis import strongly_connected_components

TRIANGLE_PLUS = [(0, 1), (1, 2), (0, 2), (2, 3)]


def test_structure_of_reduction():
    red = dks_to_imc(TRIANGLE_PLUS)
    # One 2-node community per edge.
    assert red.communities.r == 4
    assert all(c.threshold == 2 and c.benefit == 1.0 for c in red.communities)
    # Node 2 has three copies (it appears in 3 edges).
    assert len(red.copies_of[2]) == 3
    assert len(red.copies_of[3]) == 1
    # Copies map back correctly.
    for original, copies in red.copies_of.items():
        for c in copies:
            assert red.corresponding[c] == original


def test_copy_clusters_strongly_connected():
    red = dks_to_imc(TRIANGLE_PLUS)
    sccs = {frozenset(c) for c in strongly_connected_components(red.graph)}
    for original, copies in red.copies_of.items():
        if len(copies) > 1:
            assert frozenset(copies) in sccs, original


def test_induced_edge_count():
    assert induced_edge_count(TRIANGLE_PLUS, [0, 1, 2]) == 3
    assert induced_edge_count(TRIANGLE_PLUS, [0, 1]) == 1
    assert induced_edge_count(TRIANGLE_PLUS, [3]) == 0
    assert induced_edge_count(TRIANGLE_PLUS, []) == 0


def test_lift_preserves_objective_exhaustively():
    """Observation 1 of the proof: c(lift(S_D)) = e(S_D) for ALL S_D."""
    red = dks_to_imc(TRIANGLE_PLUS)
    originals = sorted(red.copies_of)
    for k in range(1, len(originals) + 1):
        for subset in itertools.combinations(originals, k):
            lifted = red.lift(subset)
            assert red.benefit(lifted) == induced_edge_count(
                TRIANGLE_PLUS, subset
            ), subset


def test_project_bounds_objective_exhaustively():
    """Observation 2: c(S_I) <= e(project(S_I)) for any copy seed set."""
    red = dks_to_imc(TRIANGLE_PLUS)
    all_copies = sorted(red.corresponding)
    for k in (1, 2, 3):
        for subset in itertools.combinations(all_copies, k):
            projected = red.project(subset)
            assert red.benefit(subset) <= induced_edge_count(
                TRIANGLE_PLUS, projected
            ), subset


def test_lift_round_trip():
    red = dks_to_imc(TRIANGLE_PLUS)
    assert red.project(red.lift([0, 2])) == [0, 2]


def test_lift_rejects_isolated_node():
    red = dks_to_imc([(0, 1)])
    with pytest.raises(SolverError):
        red.lift([7])


def test_validation():
    with pytest.raises(SolverError):
        dks_to_imc([(1, 1)])
    with pytest.raises(SolverError):
        dks_to_imc([(0, 1), (1, 0)])
    with pytest.raises(SolverError):
        dks_to_imc([])


def test_imc_solver_recovers_dense_subgraph():
    """Solving the reduced instance with BT finds the densest
    2-subgraph of a graph with a planted dense pair."""
    # Nodes 0-1 share an edge AND both connect to 2: picking {0,1,2}
    # at k=3 induces 3 edges; any other triple induces fewer.
    edges = [(0, 1), (0, 2), (1, 2), (3, 4), (0, 5)]
    red = dks_to_imc(edges)
    from repro.core.bt import BT
    from repro.sampling.pool import RICSamplePool
    from repro.sampling.ric import RICSampler

    # BT is approximate, so recovery is seed-sensitive; this seed was
    # re-picked when RIC sampling moved to per-sample child streams.
    pool = RICSamplePool(RICSampler(red.graph, red.communities, seed=4))
    pool.grow(400)
    # k copies -> k original nodes (each copy activates its cluster).
    result = BT().solve(pool, 3)
    recovered = red.project(result.seeds)
    assert induced_edge_count(edges, recovered) == 3
    assert sorted(recovered) == [0, 1, 2]
