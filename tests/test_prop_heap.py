"""Property-based tests: LazyMaxHeap against a dict model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.heap import LazyMaxHeap

# Operation stream: ("push", key, priority) | ("pop",) | ("discard", key)
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.integers(0, 9),
            st.floats(-100, 100, allow_nan=False),
        ),
        st.tuples(st.just("pop")),
        st.tuples(st.just("discard"), st.integers(0, 9)),
    ),
    max_size=60,
)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_heap_matches_dict_model(operations):
    heap: LazyMaxHeap = LazyMaxHeap()
    model = {}
    for op in operations:
        if op[0] == "push":
            _, key, priority = op
            heap.push(key, priority)
            model[key] = priority
        elif op[0] == "pop":
            if model:
                item, priority = heap.pop_max()
                best = max(model.values())
                assert priority == best
                assert model[item] == priority
                del model[item]
            else:
                assert not heap
        else:
            _, key = op
            heap.discard(key)
            model.pop(key, None)
        assert len(heap) == len(model)
    # Drain: items come out in non-increasing priority order.
    last = float("inf")
    while heap:
        _, priority = heap.pop_max()
        assert priority <= last
        last = priority


@given(
    st.dictionaries(st.integers(0, 50), st.floats(-10, 10, allow_nan=False), max_size=30)
)
@settings(max_examples=100, deadline=None)
def test_heap_drains_in_sorted_order(entries):
    heap: LazyMaxHeap = LazyMaxHeap()
    for key, priority in entries.items():
        heap.push(key, priority)
    drained = [heap.pop_max()[1] for _ in range(len(entries))]
    assert drained == sorted(entries.values(), reverse=True)
