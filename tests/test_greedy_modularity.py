"""CNM greedy modularity detector tests."""

import pytest

from repro.communities.greedy_modularity import greedy_modularity_communities
from repro.communities.modularity import modularity, partition_from_blocks
from repro.graph.builders import from_undirected_edge_list
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition_graph


def test_empty_graph():
    assert greedy_modularity_communities(DiGraph(0)) == []


def test_edgeless_graph_all_singletons():
    blocks = greedy_modularity_communities(DiGraph(4))
    assert sorted(map(tuple, blocks)) == [(0,), (1,), (2,), (3,)]


def test_result_is_partition():
    graph, _ = planted_partition_graph(
        [6] * 4, p_in=0.7, p_out=0.05, directed=False, seed=1
    )
    blocks = greedy_modularity_communities(graph)
    flat = sorted(v for b in blocks for v in b)
    assert flat == list(range(graph.num_nodes))


def test_two_cliques_separated():
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    g = from_undirected_edge_list(6, edges)
    blocks = greedy_modularity_communities(g)
    as_sets = {frozenset(b) for b in blocks}
    assert frozenset({0, 1, 2}) in as_sets
    assert frozenset({3, 4, 5}) in as_sets


def test_positive_modularity_on_modular_graph():
    graph, _ = planted_partition_graph(
        [8] * 4, p_in=0.7, p_out=0.02, directed=False, seed=2
    )
    blocks = greedy_modularity_communities(graph)
    q = modularity(graph, partition_from_blocks(blocks, graph.num_nodes))
    assert q > 0.4


def test_fully_deterministic():
    graph, _ = planted_partition_graph(
        [6] * 4, p_in=0.6, p_out=0.05, directed=False, seed=3
    )
    assert greedy_modularity_communities(graph) == greedy_modularity_communities(
        graph
    )


def test_recovers_planted_blocks():
    graph, truth = planted_partition_graph(
        [10] * 3, p_in=0.8, p_out=0.01, directed=False, seed=4
    )
    blocks = greedy_modularity_communities(graph)
    truth_sets = {frozenset(b) for b in truth}
    found_sets = {frozenset(b) for b in blocks}
    assert len(truth_sets & found_sets) >= 2


def test_comparable_to_louvain_modularity():
    from repro.communities.louvain import louvain_communities

    graph, _ = planted_partition_graph(
        [8] * 4, p_in=0.6, p_out=0.04, directed=False, seed=5
    )
    cnm = greedy_modularity_communities(graph)
    louvain = louvain_communities(graph, seed=5)
    q_cnm = modularity(graph, partition_from_blocks(cnm, graph.num_nodes))
    q_louvain = modularity(
        graph, partition_from_blocks(louvain, graph.num_nodes)
    )
    assert q_cnm >= q_louvain - 0.1  # same ballpark


def test_directed_edges_symmetrised():
    g = DiGraph(4)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 0, 1.0)  # antiparallel pair counts once
    g.add_edge(2, 3, 1.0)
    blocks = greedy_modularity_communities(g)
    as_sets = {frozenset(b) for b in blocks}
    assert frozenset({0, 1}) in as_sets
    assert frozenset({2, 3}) in as_sets
