"""Examples stay importable/compilable.

Running the examples takes minutes; compiling them catches syntax
breaks, missing imports at module top level, and API drift in the
``from repro import ...`` statements cheaply on every test run.
"""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4  # quickstart + >=3 scenarios


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_top_level_imports_resolve(path):
    """Every name imported from repro.* actually exists."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith(
            "repro"
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    source = path.read_text()
    assert '__name__ == "__main__"' in source
    tree = ast.parse(source)
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
