"""Property-based tests: DiGraph structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.analysis import (
    forward_reachable,
    reverse_reachable,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.digraph import DiGraph


@st.composite
def small_digraphs(draw):
    n = draw(st.integers(1, 12))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=30, unique=True)
        if possible
        else st.just([])
    )
    g = DiGraph(n)
    for u, v in edges:
        weight = draw(st.floats(0.0, 1.0, allow_nan=False))
        g.add_edge(u, v, weight)
    return g


@given(small_digraphs())
@settings(max_examples=150, deadline=None)
def test_in_out_adjacency_consistent(g):
    out_pairs = {(u, v) for u in g.nodes() for v in g.out_neighbors(u)}
    in_pairs = {(u, v) for v in g.nodes() for u in g.in_neighbors(v)}
    assert out_pairs == in_pairs
    assert len(out_pairs) == g.num_edges


@given(small_digraphs())
@settings(max_examples=150, deadline=None)
def test_reverse_twice_is_identity(g):
    assert g.reversed().reversed() == g


@given(small_digraphs())
@settings(max_examples=100, deadline=None)
def test_reachability_duality(g):
    """v reachable from u forward  <=>  u reverse-reachable from v."""
    for u in g.nodes():
        forward = forward_reachable(g, [u])
        for v in forward:
            assert u in reverse_reachable(g, [v])


@given(small_digraphs())
@settings(max_examples=100, deadline=None)
def test_wcc_is_partition(g):
    comps = weakly_connected_components(g)
    flat = sorted(v for comp in comps for v in comp)
    assert flat == list(g.nodes())
    # No edge crosses a WCC boundary.
    comp_of = {}
    for i, comp in enumerate(comps):
        for v in comp:
            comp_of[v] = i
    for u, v, _ in g.edges():
        assert comp_of[u] == comp_of[v]


@given(small_digraphs())
@settings(max_examples=100, deadline=None)
def test_scc_is_partition_refining_wcc(g):
    sccs = strongly_connected_components(g)
    flat = sorted(v for comp in sccs for v in comp)
    assert flat == list(g.nodes())
    # Within an SCC, all pairs are mutually reachable.
    for comp in sccs:
        for u in comp:
            reach = forward_reachable(g, [u])
            assert comp <= reach


@given(small_digraphs())
@settings(max_examples=100, deadline=None)
def test_degree_sums_equal_edge_count(g):
    assert sum(g.out_degree(v) for v in g.nodes()) == g.num_edges
    assert sum(g.in_degree(v) for v in g.nodes()) == g.num_edges


@given(small_digraphs())
@settings(max_examples=100, deadline=None)
def test_copy_equality_and_independence(g):
    clone = g.copy()
    assert clone == g
    if g.num_nodes >= 2 and not g.has_edge(0, 1) and g.num_nodes > 1:
        clone.add_edge(0, 1, 0.5)
        assert not g.has_edge(0, 1)
