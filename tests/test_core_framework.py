"""IMCAF framework tests (Alg. 5 + Alg. 6)."""

import math

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.framework import (
    estimate_benefit,
    lambda_stop_threshold,
    optimal_benefit_lower_bound,
    psi_sample_bound,
    solve_imc,
)
from repro.core.maf import MAF
from repro.core.ubg import UBG
from repro.diffusion.simulator import community_benefit_exact
from repro.errors import SolverError
from repro.graph.builders import from_edge_list
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler


@pytest.fixture
def small_imc_instance():
    graph, blocks = planted_partition_graph(
        [4] * 5, p_in=0.7, p_out=0.05, directed=True, seed=13
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph, communities


# ------------------------------------------------------------- bounds


def test_lower_bound_formula(two_communities):
    # beta=1, h=2 -> beta*k/h.
    assert optimal_benefit_lower_bound(two_communities, 4) == pytest.approx(2.0)


def test_lower_bound_skips_zero_benefits():
    structure = CommunityStructure(
        [
            Community(members=(0,), threshold=1, benefit=0.0),
            Community(members=(1,), threshold=1, benefit=2.0),
        ]
    )
    assert optimal_benefit_lower_bound(structure, 2) == pytest.approx(4.0)


def test_lower_bound_all_zero_raises():
    structure = CommunityStructure(
        [Community(members=(0,), threshold=1, benefit=0.0)]
    )
    with pytest.raises(SolverError):
        optimal_benefit_lower_bound(structure, 1)


def test_psi_decreasing_in_alpha_epsilon(two_communities):
    graph = from_edge_list(6, [])
    base = psi_sample_bound(graph, two_communities, 2, 0.5, 0.2, 0.2)
    assert psi_sample_bound(graph, two_communities, 2, 0.9, 0.2, 0.2) <= base
    assert psi_sample_bound(graph, two_communities, 2, 0.5, 0.4, 0.2) < base
    with pytest.raises(SolverError):
        psi_sample_bound(graph, two_communities, 2, 0.0, 0.2, 0.2)


def test_psi_grows_with_n(two_communities):
    small = from_edge_list(6, [])
    big = from_edge_list(600, [])
    assert psi_sample_bound(
        big, two_communities, 2, 0.5, 0.2, 0.2
    ) > psi_sample_bound(small, two_communities, 2, 0.5, 0.2, 0.2)


def test_lambda_threshold_positive_and_decreasing_in_epsilon():
    lam = lambda_stop_threshold(0.2, 0.2)
    assert lam > 100  # substantial for the paper's parameters
    assert lambda_stop_threshold(0.4, 0.2) < lam
    with pytest.raises(SolverError):
        lambda_stop_threshold(1.5, 0.2)


# ------------------------------------------------------ Estimate (Alg 6)


def test_estimate_benefit_converges_to_exact():
    graph = from_edge_list(4, [(0, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)])
    communities = CommunityStructure(
        [Community(members=(2, 3), threshold=2, benefit=1.0)]
    )
    sampler = RICSampler(graph, communities, seed=21)
    exact = community_benefit_exact(graph, communities, [0, 1])
    result = estimate_benefit(sampler, [0, 1], epsilon=0.1, delta=0.1)
    assert result.converged
    assert result.value == pytest.approx(exact, rel=0.15)


def test_estimate_benefit_budget_exhaustion_returns_none():
    graph = from_edge_list(3, [(0, 1, 0.01)])
    communities = CommunityStructure(
        [Community(members=(1, 2), threshold=2, benefit=1.0)]
    )
    sampler = RICSampler(graph, communities, seed=22)
    # Seeds {0} can never influence (node 2 unreachable): zero mean.
    result = estimate_benefit(
        sampler, [0], epsilon=0.2, delta=0.2, max_trials=100
    )
    assert not result.converged
    assert result.value is None


def test_estimate_benefit_rejects_empty_seed_set():
    graph = from_edge_list(2, [(0, 1, 0.5)])
    communities = CommunityStructure(
        [Community(members=(1,), threshold=1, benefit=1.0)]
    )
    sampler = RICSampler(graph, communities, seed=23)
    with pytest.raises(SolverError):
        estimate_benefit(sampler, [], epsilon=0.2, delta=0.2)


# ---------------------------------------------------------------- IMCAF


def test_solve_imc_returns_valid_result(small_imc_instance):
    graph, communities = small_imc_instance
    result = solve_imc(
        graph, communities, k=4, solver=UBG(), seed=31, max_samples=8000
    )
    assert 1 <= len(result.selection.seeds) <= 4
    assert result.stopped_by in ("estimate", "psi", "max_samples")
    assert result.num_samples >= math.ceil(result.lambda_threshold)
    assert result.alpha > 0
    assert result.psi > result.lambda_threshold


def test_solve_imc_quality_near_exhaustive(small_imc_instance):
    """IMCAF+UBG solution close to Monte-Carlo-scored brute force on a
    tiny budget."""
    graph, communities = small_imc_instance
    result = solve_imc(
        graph, communities, k=2, solver=UBG(), seed=32, max_samples=8000
    )
    from repro.diffusion.simulator import community_benefit_monte_carlo

    ours = community_benefit_monte_carlo(
        graph, communities, result.selection.seeds, num_trials=2000, seed=1
    )
    # Compare against each community's threshold-pair (the natural
    # candidate optima for k=2).
    best_pair = max(
        community_benefit_monte_carlo(
            graph, communities, communities[i].members[:2], num_trials=2000, seed=1
        )
        for i in range(communities.r)
    )
    assert ours >= 0.8 * best_pair


def test_solve_imc_estimate_stop_on_generous_budget(small_imc_instance):
    graph, communities = small_imc_instance
    result = solve_imc(
        graph, communities, k=6, solver=MAF(seed=5), seed=33, max_samples=60_000
    )
    if result.stopped_by == "estimate":
        assert result.benefit_estimate is not None
        assert result.selection.objective <= (
            1 + result.metadata["epsilon"] / 4
        ) * result.benefit_estimate + 1e-9


def test_solve_imc_validates_k(small_imc_instance):
    graph, communities = small_imc_instance
    with pytest.raises(SolverError):
        solve_imc(graph, communities, k=0, solver=UBG())
    with pytest.raises(SolverError):
        solve_imc(graph, communities, k=graph.num_nodes + 1, solver=UBG())


def test_solve_imc_rejects_foreign_pool(small_imc_instance):
    graph, communities = small_imc_instance
    other_graph = from_edge_list(3, [(0, 1, 0.5)])
    other_com = CommunityStructure(
        [Community(members=(1,), threshold=1, benefit=1.0)]
    )
    foreign = RICSamplePool(RICSampler(other_graph, other_com, seed=1))
    with pytest.raises(SolverError):
        solve_imc(graph, communities, k=2, solver=UBG(), pool=foreign)


def test_solve_imc_reuses_supplied_pool(small_imc_instance):
    graph, communities = small_imc_instance
    pool = RICSamplePool(RICSampler(graph, communities, seed=44))
    pool.grow(100)
    result = solve_imc(
        graph,
        communities,
        k=3,
        solver=MAF(seed=2),
        seed=45,
        max_samples=4000,
        pool=pool,
    )
    assert result.num_samples == len(pool)
    assert len(pool) >= 100


def test_solve_imc_deterministic_given_seed(small_imc_instance):
    graph, communities = small_imc_instance
    a = solve_imc(
        graph, communities, k=3, solver=MAF(seed=1), seed=77, max_samples=3000
    )
    b = solve_imc(
        graph, communities, k=3, solver=MAF(seed=1), seed=77, max_samples=3000
    )
    assert a.selection.seeds == b.selection.seeds
    assert a.num_samples == b.num_samples


def test_solve_imc_progress_callback(small_imc_instance):
    graph, communities = small_imc_instance
    events = []
    solve_imc(
        graph,
        communities,
        k=3,
        solver=MAF(seed=4),
        seed=55,
        max_samples=2000,
        progress=events.append,
    )
    assert events, "progress hook never fired"
    for event in events:
        assert set(event) == {
            "stage",
            "num_samples",
            "coverage",
            "objective",
            "lambda",
            "psi",
            "sampling_profile",
        }
        # Serial engine: unified profile schema with trivial fan-out.
        profile = event["sampling_profile"]
        from repro.sampling.profile import PROFILE_KEYS

        assert tuple(profile) == PROFILE_KEYS
        assert profile["mode"] == "serial"
        assert profile["workers"] == 1
        assert profile["worker_utilization"] is None
        assert profile["retries"] == 0
    stages = [e["stage"] for e in events]
    assert stages == list(range(1, len(events) + 1))
    sizes = [e["num_samples"] for e in events]
    assert sizes == sorted(sizes)
