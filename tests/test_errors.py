"""Exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "GraphError",
        "CommunityError",
        "SamplingError",
        "SolverError",
        "EstimationError",
        "DatasetError",
        "ExperimentError",
        "WorkerCrashError",
        "DeadlineExceededError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_worker_crash_error_is_a_sampling_error_with_attempts():
    exc = errors.WorkerCrashError("pool died", attempts=3)
    assert isinstance(exc, errors.SamplingError)
    assert exc.attempts == 3


def test_robustness_errors_reachable_from_top_level():
    import repro

    for name in ("WorkerCrashError", "DeadlineExceededError"):
        assert getattr(repro, name) is getattr(errors, name)
        assert name in repro.__all__


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_catching_base_catches_specific():
    with pytest.raises(errors.ReproError):
        raise errors.GraphError("boom")
