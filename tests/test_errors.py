"""Exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "GraphError",
        "CommunityError",
        "SamplingError",
        "SolverError",
        "EstimationError",
        "DatasetError",
        "ExperimentError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_catching_base_catches_specific():
    with pytest.raises(errors.ReproError):
        raise errors.GraphError("boom")
