"""Property-based tests for solvers and baselines.

- KS's knapsack DP is exactly optimal vs brute force;
- every MAXR solver's result respects its proved guarantee on random
  pools (Theorems 3-5 made executable at property scale);
- seed sets never exceed the budget and never contain duplicates.
"""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.knapsack import knapsack_communities, ks_seeds
from repro.communities.structure import Community, CommunityStructure
from repro.core.bt import BT, MB
from repro.core.maf import MAF
from repro.core.ubg import UBG
from repro.graph.digraph import DiGraph
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler

# ------------------------------------------------------------ knapsack


@st.composite
def knapsack_instances(draw):
    r = draw(st.integers(1, 7))
    communities = []
    next_node = 0
    for _ in range(r):
        size = draw(st.integers(1, 4))
        members = tuple(range(next_node, next_node + size))
        next_node += size
        communities.append(
            Community(
                members=members,
                threshold=draw(st.integers(1, size)),
                benefit=float(draw(st.integers(0, 10))),
            )
        )
    budget = draw(st.integers(1, 10))
    return CommunityStructure(communities), budget


@given(knapsack_instances())
@settings(max_examples=200, deadline=None)
def test_knapsack_matches_brute_force(args):
    structure, budget = args
    chosen = knapsack_communities(structure, budget)
    costs = structure.thresholds()
    values = structure.benefits()
    assert sum(costs[i] for i in chosen) <= budget
    best = 0.0
    for size in range(structure.r + 1):
        for combo in itertools.combinations(range(structure.r), size):
            if sum(costs[i] for i in combo) <= budget:
                best = max(best, sum(values[i] for i in combo))
    assert sum(values[i] for i in chosen) == best


@given(knapsack_instances())
@settings(max_examples=100, deadline=None)
def test_ks_seeds_within_budget_and_distinct(args):
    structure, budget = args
    seeds = ks_seeds(structure, budget)
    assert len(seeds) <= budget
    assert len(seeds) == len(set(seeds))


# -------------------------------------------------- solver guarantees

NUM_NODES = 9


@st.composite
def bounded_pools(draw):
    """Pools whose thresholds are bounded by 2 (BT/MB's precondition)."""
    num_communities = draw(st.integers(1, 3))
    communities = []
    next_node = 0
    for _ in range(num_communities):
        size = draw(st.integers(1, 3))
        members = tuple(range(next_node, next_node + size))
        next_node += size
        communities.append(
            Community(
                members=members,
                threshold=min(2, draw(st.integers(1, size))),
                benefit=1.0,
            )
        )
    structure = CommunityStructure(communities)
    pool = RICSamplePool(RICSampler(DiGraph(NUM_NODES), structure, seed=0))
    for _ in range(draw(st.integers(1, 5))):
        idx = draw(st.integers(0, num_communities - 1))
        community = structure[idx]
        reaches = tuple(
            frozenset(
                draw(st.sets(st.integers(0, NUM_NODES - 1), max_size=3))
                | {member}
            )
            for member in community.members
        )
        pool.add(RICSample(idx, community.threshold, community.members, reaches))
    k = draw(st.integers(1, 4))
    return pool, k


def _brute_force_optimum(pool, k):
    nodes = pool.touching_nodes()
    if not nodes:
        return 0.0
    best = 0.0
    for size in range(1, min(k, len(nodes)) + 1):
        for combo in itertools.combinations(nodes, size):
            best = max(best, pool.estimate_benefit(combo))
    return best


@given(bounded_pools())
@settings(max_examples=60, deadline=None)
def test_maf_respects_theorem3(args):
    pool, k = args
    result = MAF(seed=1).solve(pool, k)
    communities = pool.sampler.communities
    h = communities.max_threshold
    guarantee = min(1.0, (k // h) / communities.r)
    optimum = _brute_force_optimum(pool, k)
    assert result.objective >= guarantee * optimum - 1e-9


@given(bounded_pools())
@settings(max_examples=60, deadline=None)
def test_bt_respects_theorem4(args):
    pool, k = args
    result = BT().solve(pool, k)
    guarantee = (1 - 1 / math.e) / k
    optimum = _brute_force_optimum(pool, k)
    assert result.objective >= guarantee * optimum - 1e-9


@given(bounded_pools())
@settings(max_examples=60, deadline=None)
def test_mb_respects_theorem5(args):
    pool, k = args
    result = MB(seed=2).solve(pool, k)
    r = pool.sampler.communities.r
    if k >= 2:
        guarantee = math.sqrt((1 - 1 / math.e) * (k // 2) / (k * r))
    else:
        guarantee = (1 - 1 / math.e) / k
    optimum = _brute_force_optimum(pool, k)
    assert result.objective >= guarantee * optimum - 1e-9


@given(bounded_pools())
@settings(max_examples=60, deadline=None)
def test_ubg_respects_sandwich_bound(args):
    pool, k = args
    result = UBG().solve(pool, k)
    ratio = result.metadata["sandwich_ratio"]
    optimum = _brute_force_optimum(pool, k)
    assert result.objective >= ratio * (1 - 1 / math.e) * optimum - 1e-9


@given(bounded_pools())
@settings(max_examples=60, deadline=None)
def test_all_solvers_budget_and_distinctness(args):
    pool, k = args
    for solver in (UBG(), MAF(seed=3), BT(), MB(seed=3)):
        seeds = solver.solve(pool, k).seeds
        assert len(seeds) <= max(
            k, pool.sampler.communities.max_threshold
        )
        assert len(seeds) == len(set(seeds))
