"""Tracer tests: no-op gating, nesting, exception safety, capture/ingest."""

import pytest

from repro.obs import NOOP_SPAN, phase_timings, session, trace

pytestmark = pytest.mark.obs


def test_span_is_noop_while_disabled():
    span = trace.span("should/not/record", k=3)
    assert span is NOOP_SPAN
    with span as inner:
        assert inner.set(extra=1) is inner
    assert trace.snapshot() == []


def test_spans_nest_and_record_parent_links():
    with session():
        with trace.span("outer", stage=1) as outer:
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with trace.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        records = trace.snapshot()
    by_name = {r["name"]: r for r in records}
    assert set(by_name) == {"outer", "inner", "sibling"}
    assert by_name["outer"]["parent_id"] is None
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["attrs"] == {"stage": 1}
    assert all(r["duration_seconds"] >= 0 for r in records)
    assert all(r["status"] == "ok" for r in records)


def test_span_ids_unique_and_pid_prefixed():
    import os

    with session():
        ids = []
        for _ in range(50):
            with trace.span("x") as span:
                ids.append(span.span_id)
        assert len(set(ids)) == 50
        assert all(i.startswith(f"{os.getpid():x}.") for i in ids)


def test_exception_records_error_and_propagates():
    with pytest.raises(ValueError, match="boom"):
        with session():
            with pytest.raises(ValueError, match="boom"):
                with trace.span("outer"):
                    with trace.span("failing"):
                        raise ValueError("boom")
            records = trace.snapshot()
            failing = next(r for r in records if r["name"] == "failing")
            assert failing["status"] == "error"
            assert failing["error"] == "ValueError: boom"
            # The stack unwound: a fresh span is a root again.
            with trace.span("after") as after:
                assert after.parent_id is None
            raise ValueError("boom")  # session() must close on raise too
    assert trace.span("post") is NOOP_SPAN  # gate is off again


def test_set_merges_attributes():
    with session() as recorder:
        with trace.span("s", a=1) as span:
            span.set(b=2).set(a=3)
    (record,) = recorder.spans
    assert record["attrs"] == {"a": 3, "b": 2}


def test_capture_buffers_without_global_session():
    assert trace.snapshot() == []
    with trace.capture() as buffer:
        with trace.span("worker/unit", batch=0):
            pass
        assert len(buffer) == 1
    assert buffer[0]["name"] == "worker/unit"
    # The global tracer saw nothing and the gate is off again.
    assert trace.snapshot() == []
    assert trace.span("x") is NOOP_SPAN


def test_ingest_reparents_roots_under_current_span():
    with trace.capture() as shipped:
        with trace.span("worker/batch"):
            with trace.span("worker/step"):
                pass
    with session() as recorder:
        with trace.span("dispatch") as dispatch:
            trace.ingest(shipped)
    by_name = {r["name"]: r for r in recorder.spans}
    assert by_name["worker/batch"]["parent_id"] == dispatch.span_id
    # Non-root shipped spans keep their original parent.
    assert (
        by_name["worker/step"]["parent_id"]
        == by_name["worker/batch"]["span_id"]
    )


def test_ingest_is_noop_while_disabled():
    trace.ingest([{"type": "span", "name": "ghost", "parent_id": None}])
    assert trace.snapshot() == []


def test_phase_timings_aggregates_by_name():
    records = [
        {"type": "span", "name": "a", "duration_seconds": 0.5, "status": "ok"},
        {"type": "span", "name": "a", "duration_seconds": 1.5, "status": "error"},
        {"type": "span", "name": "b", "duration_seconds": 0.25, "status": "ok"},
        {"type": "metric", "name": "ignored"},
    ]
    phases = phase_timings(records)
    assert set(phases) == {"a", "b"}
    assert phases["a"]["count"] == 2
    assert phases["a"]["total_seconds"] == pytest.approx(2.0)
    assert phases["a"]["min_seconds"] == 0.5
    assert phases["a"]["max_seconds"] == 1.5
    assert phases["a"]["errors"] == 1
    assert phases["b"]["errors"] == 0
