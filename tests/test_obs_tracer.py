"""Tracer tests: no-op gating, nesting, exception safety, capture/ingest,
and cross-process trace-context propagation (adopt, stamp, headers)."""

import pytest

from repro.obs import (
    NOOP_SPAN,
    PARENT_HEADER,
    TRACE_HEADER,
    new_trace_id,
    phase_timings,
    session,
    trace,
)

pytestmark = pytest.mark.obs


def test_span_is_noop_while_disabled():
    span = trace.span("should/not/record", k=3)
    assert span is NOOP_SPAN
    with span as inner:
        assert inner.set(extra=1) is inner
    assert trace.snapshot() == []


def test_spans_nest_and_record_parent_links():
    with session():
        with trace.span("outer", stage=1) as outer:
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with trace.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        records = trace.snapshot()
    by_name = {r["name"]: r for r in records}
    assert set(by_name) == {"outer", "inner", "sibling"}
    assert by_name["outer"]["parent_id"] is None
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["attrs"] == {"stage": 1}
    assert all(r["duration_seconds"] >= 0 for r in records)
    assert all(r["status"] == "ok" for r in records)


def test_span_ids_unique_and_pid_prefixed():
    import os

    with session():
        ids = []
        for _ in range(50):
            with trace.span("x") as span:
                ids.append(span.span_id)
        assert len(set(ids)) == 50
        assert all(i.startswith(f"{os.getpid():x}.") for i in ids)


def test_exception_records_error_and_propagates():
    with pytest.raises(ValueError, match="boom"):
        with session():
            with pytest.raises(ValueError, match="boom"):
                with trace.span("outer"):
                    with trace.span("failing"):
                        raise ValueError("boom")
            records = trace.snapshot()
            failing = next(r for r in records if r["name"] == "failing")
            assert failing["status"] == "error"
            assert failing["error"] == "ValueError: boom"
            # The stack unwound: a fresh span is a root again.
            with trace.span("after") as after:
                assert after.parent_id is None
            raise ValueError("boom")  # session() must close on raise too
    assert trace.span("post") is NOOP_SPAN  # gate is off again


def test_set_merges_attributes():
    with session() as recorder:
        with trace.span("s", a=1) as span:
            span.set(b=2).set(a=3)
    (record,) = recorder.spans
    assert record["attrs"] == {"a": 3, "b": 2}


def test_capture_buffers_without_global_session():
    assert trace.snapshot() == []
    with trace.capture() as buffer:
        with trace.span("worker/unit", batch=0):
            pass
        assert len(buffer) == 1
    assert buffer[0]["name"] == "worker/unit"
    # The global tracer saw nothing and the gate is off again.
    assert trace.snapshot() == []
    assert trace.span("x") is NOOP_SPAN


def test_ingest_reparents_roots_under_current_span():
    with trace.capture() as shipped:
        with trace.span("worker/batch"):
            with trace.span("worker/step"):
                pass
    with session() as recorder:
        with trace.span("dispatch") as dispatch:
            trace.ingest(shipped)
    by_name = {r["name"]: r for r in recorder.spans}
    assert by_name["worker/batch"]["parent_id"] == dispatch.span_id
    # Non-root shipped spans keep their original parent.
    assert (
        by_name["worker/step"]["parent_id"]
        == by_name["worker/batch"]["span_id"]
    )


def test_ingest_is_noop_while_disabled():
    trace.ingest([{"type": "span", "name": "ghost", "parent_id": None}])
    assert trace.snapshot() == []


def test_context_adopts_remote_parent_and_stamps_trace_id():
    with session() as recorder:
        with trace.context("cafe01", "babe.02"):
            with trace.span("serving/request") as root:
                assert root.parent_id == "babe.02"
                with trace.span("serving/compute"):
                    pass
    by_name = {r["name"]: r for r in recorder.spans}
    assert by_name["serving/request"]["parent_id"] == "babe.02"
    # Children parent locally but still carry the shared trace id.
    assert all(r["trace_id"] == "cafe01" for r in recorder.spans)
    assert (
        by_name["serving/compute"]["parent_id"]
        == by_name["serving/request"]["span_id"]
    )


def test_context_restores_previous_context_and_none_is_a_noop():
    with session() as recorder:
        with trace.context("outer-trace"):
            with trace.context(None):  # no-op: outer context survives
                assert trace.current_context().trace_id == "outer-trace"
            with trace.context("inner-trace"):
                assert trace.current_context().trace_id == "inner-trace"
            assert trace.current_context().trace_id == "outer-trace"
            with trace.span("imc/select"):
                pass
        assert trace.current_context() is None
        with trace.span("imc/evaluate"):
            pass
    by_name = {r["name"]: r for r in recorder.spans}
    assert by_name["imc/select"]["trace_id"] == "outer-trace"
    assert "trace_id" not in by_name["imc/evaluate"]


def test_propagation_headers_carry_trace_and_current_span():
    assert trace.propagation_headers() == {}  # no context, no headers
    with session():
        with trace.context("feed5", "dead.01"):
            # No span open yet: the remote parent is forwarded as-is.
            assert trace.propagation_headers() == {
                TRACE_HEADER: "feed5",
                PARENT_HEADER: "dead.01",
            }
            with trace.span("router/forward") as span:
                headers = trace.propagation_headers()
                assert headers[TRACE_HEADER] == "feed5"
                assert headers[PARENT_HEADER] == span.span_id
    assert trace.propagation_headers() == {}


def test_new_trace_ids_are_unique_hex():
    ids = {new_trace_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(int(i, 16) >= 0 and len(i) == 32 for i in ids)


def test_ingest_stamps_active_trace_id_on_shipped_spans():
    with trace.capture() as shipped:
        with trace.span("worker/unit"):
            pass
    with session() as recorder:
        with trace.context("abc123"):
            with trace.span("ric/sample_many"):
                trace.ingest(shipped)
    by_name = {r["name"]: r for r in recorder.spans}
    assert by_name["worker/unit"]["trace_id"] == "abc123"


def test_phase_timings_aggregates_by_name():
    records = [
        {"type": "span", "name": "a", "duration_seconds": 0.5, "status": "ok"},
        {"type": "span", "name": "a", "duration_seconds": 1.5, "status": "error"},
        {"type": "span", "name": "b", "duration_seconds": 0.25, "status": "ok"},
        {"type": "metric", "name": "ignored"},
    ]
    phases = phase_timings(records)
    assert set(phases) == {"a", "b"}
    assert phases["a"]["count"] == 2
    assert phases["a"]["total_seconds"] == pytest.approx(2.0)
    assert phases["a"]["min_seconds"] == 0.5
    assert phases["a"]["max_seconds"] == 1.5
    assert phases["a"]["errors"] == 1
    assert phases["b"]["errors"] == 0
