"""Cross-representation consistency properties.

Three independent code paths compute the MAXR objectives — the pool's
set-based scans, the incremental `CoverageState`, and the per-sample
`RICSample.is_influenced_by` — plus the bitset engine. For any pool and
any seed set they must all agree exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.communities.structure import Community, CommunityStructure
from repro.core.bitset_engine import BitsetCoverage
from repro.core.objective import CoverageState
from repro.graph.digraph import DiGraph
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSample, RICSampler

NUM_NODES = 10


@st.composite
def pool_and_seeds(draw):
    num_communities = draw(st.integers(1, 3))
    communities = []
    next_node = 0
    for _ in range(num_communities):
        size = draw(st.integers(1, 3))
        members = tuple(range(next_node, next_node + size))
        next_node += size
        communities.append(
            Community(
                members=members,
                threshold=draw(st.integers(1, size)),
                benefit=float(draw(st.integers(1, 5))),
            )
        )
    structure = CommunityStructure(communities)
    pool = RICSamplePool(RICSampler(DiGraph(NUM_NODES), structure, seed=0))
    for _ in range(draw(st.integers(1, 6))):
        idx = draw(st.integers(0, num_communities - 1))
        community = structure[idx]
        reaches = tuple(
            frozenset(
                draw(st.sets(st.integers(0, NUM_NODES - 1), max_size=4))
                | {member}
            )
            for member in community.members
        )
        pool.add(RICSample(idx, community.threshold, community.members, reaches))
    seeds = draw(
        st.lists(
            st.integers(0, NUM_NODES - 1), unique=True, min_size=0, max_size=5
        )
    )
    return pool, seeds


@given(pool_and_seeds())
@settings(max_examples=150, deadline=None)
def test_influenced_count_three_ways(args):
    pool, seeds = args
    # 1. Pool scan.
    scan = pool.influenced_count(seeds)
    # 2. Per-sample indicator.
    per_sample = sum(
        1 for sample in pool.samples if sample.is_influenced_by(seeds)
    )
    # 3. Incremental engines.
    state = CoverageState(pool)
    bitset = BitsetCoverage(pool)
    for v in seeds:
        state.add_seed(v)
        bitset.add_seed(v)
    assert scan == per_sample == state.influenced_count == bitset.influenced_count


@given(pool_and_seeds())
@settings(max_examples=150, deadline=None)
def test_benefit_and_bound_agree_across_engines(args):
    pool, seeds = args
    state = CoverageState(pool)
    bitset = BitsetCoverage(pool)
    for v in seeds:
        state.add_seed(v)
        bitset.add_seed(v)
    assert pool.estimate_benefit(seeds) == pytest.approx(
        state.estimate_benefit()
    )
    assert pool.estimate_benefit(seeds) == pytest.approx(
        bitset.estimate_benefit()
    )
    assert pool.estimate_upper_bound(seeds) == pytest.approx(
        state.estimate_upper_bound()
    )
    assert pool.estimate_upper_bound(seeds) == pytest.approx(
        bitset.estimate_upper_bound()
    )


@given(pool_and_seeds())
@settings(max_examples=100, deadline=None)
def test_covered_members_matches_fractional_numerator(args):
    pool, seeds = args
    total = sum(
        min(sample.covered_members(seeds) / sample.threshold, 1.0)
        for sample in pool.samples
    )
    assert pool.fractional_count(seeds) == pytest.approx(total)
