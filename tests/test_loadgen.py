"""Load-harness tests: phases, golden extraction, chaos hook timing.

The HTTP-facing pieces run against an in-process shard server (tiny
synthetic instance, one worker); the :class:`PhaseResult` assertions
(error detection, duplicate-answer mismatch, volatile-field stripping)
are exercised on hand-built results so every failure branch is pinned
without needing a misbehaving server.
"""

from __future__ import annotations

import json

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.errors import ClusterError
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.serving import (
    LoadGenerator,
    LoadPhase,
    PhaseResult,
    ScenarioSpec,
    ShardApp,
    ShardStore,
    start_http_server,
)
from repro.serving.loadgen import percentile

pytestmark = [pytest.mark.serve, pytest.mark.cluster]


def _instance(seed: int = 17):
    graph, blocks = planted_partition_graph(
        [5] * 6, p_in=0.6, p_out=0.03, directed=True, seed=seed
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph.freeze(), communities


@pytest.fixture(scope="module")
def served():
    spec = ScenarioSpec(
        name="planted", dataset="facebook", seed=99, pool_size=60
    )
    store = ShardStore(
        {spec.name: spec},
        instances={spec.name: _instance()},
        workers=1,
        round_size=60,
    )
    app = ShardApp(store)
    server = start_http_server(app)
    yield server.server_address[1]
    server.shutdown()
    server.server_close()
    app.close()


class TestPercentile:
    def test_known_values(self):
        ordered = [float(i) for i in range(1, 101)]
        assert percentile(ordered, 50) == 50.0
        assert percentile(ordered, 95) == 95.0
        assert percentile(ordered, 99) == 99.0
        assert percentile(ordered, 100) == 100.0
        assert percentile([3.0], 50) == 3.0

    def test_validation(self):
        with pytest.raises(ClusterError, match="no samples"):
            percentile([], 50)
        with pytest.raises(ClusterError, match="percentile"):
            percentile([1.0], 101)


class TestLoadPhase:
    def test_validation(self):
        with pytest.raises(ClusterError, match="no queries"):
            LoadPhase("empty", [])
        with pytest.raises(ClusterError, match="client"):
            LoadPhase("none", [{"budget": 1}], clients=0)


class TestPhaseResult:
    def _result(self, responses, queries=None, errors=()):
        queries = queries or [{"q": i} for i in range(len(responses))]
        result = PhaseResult(phase="t", queries=queries)
        result.responses = responses
        result.latencies = [0.01 * (i + 1) for i in range(len(responses))]
        result.errors = list(errors)
        return result

    def test_golden_strips_volatile_fields(self):
        body_a = json.dumps(
            {"seeds": [1], "objective": 5.0, "batched": False,
             "cache_hit": False}
        ).encode()
        body_b = json.dumps(
            {"seeds": [1], "objective": 5.0, "batched": True,
             "cache_hit": True}
        ).encode()
        queries = [{"q": 0}, {"q": 0}]
        result = self._result(
            [(200, body_a), (200, body_b)], queries=queries
        )
        golden = result.golden()
        assert len(golden) == 1  # one distinct query
        assert b"batched" not in next(iter(golden.values()))

    def test_golden_raises_on_transport_errors(self):
        result = self._result([(200, b"{}")], errors=["boom"])
        with pytest.raises(ClusterError, match="transport"):
            result.golden()

    def test_golden_raises_on_non_200(self):
        result = self._result([(503, b'{"error": "down"}')])
        with pytest.raises(ClusterError, match="503"):
            result.golden()

    def test_golden_raises_on_deterministic_mismatch(self):
        queries = [{"q": 0}, {"q": 0}]
        result = self._result(
            [
                (200, json.dumps({"seeds": [1]}).encode()),
                (200, json.dumps({"seeds": [2]}).encode()),
            ],
            queries=queries,
        )
        with pytest.raises(ClusterError, match="two ways"):
            result.golden()

    def test_percentiles_come_from_latencies(self):
        result = self._result([(200, b"{}")] * 100)
        p = result.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]
        assert p["p99"] == pytest.approx(0.99)


class TestLoadGenerator:
    def test_phase_round_trip_and_golden(self, served):
        generator = LoadGenerator("127.0.0.1", served)
        queries = [{"scenario": "planted", "budget": 3}] * 6
        result = generator.run_phase(
            LoadPhase("roundtrip", queries, clients=3)
        )
        assert result.statuses() == [200] * 6
        golden = result.golden()
        assert len(golden) == 1
        assert json.loads(next(iter(golden.values())))["num_samples"] == 60
        assert len(result.latencies) == 6
        assert result.duration_seconds > 0

    def test_error_statuses_are_collected_not_raised(self, served):
        generator = LoadGenerator("127.0.0.1", served)
        result = generator.run_phase(
            LoadPhase(
                "bad", [{"scenario": "nope", "budget": 3}], clients=1
            )
        )
        assert result.statuses() == [404]
        with pytest.raises(ClusterError, match="404"):
            result.golden()

    def test_chaos_fires_once_at_the_completion_threshold(self, served):
        fired = []
        generator = LoadGenerator("127.0.0.1", served)
        queries = [{"scenario": "planted", "budget": 3}] * 8
        result = generator.run_phase(
            LoadPhase(
                "chaos",
                queries,
                clients=2,
                chaos=lambda: fired.append(1),
                chaos_after=3,
            )
        )
        assert fired == [1]  # exactly once, despite 8 completions
        assert result.statuses() == [200] * 8

    def test_chaos_after_zero_fires_before_any_request(self, served):
        order = []
        generator = LoadGenerator("127.0.0.1", served)
        result = generator.run_phase(
            LoadPhase(
                "pre-chaos",
                [{"scenario": "planted", "budget": 3}],
                clients=1,
                chaos=lambda: order.append("chaos"),
                chaos_after=0,
            )
        )
        assert order == ["chaos"]
        assert result.statuses() == [200]

    def test_transport_failures_land_in_errors(self):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            dead_port = sock.getsockname()[1]
        generator = LoadGenerator("127.0.0.1", dead_port, timeout=2)
        result = generator.run_phase(
            LoadPhase("dead", [{"scenario": "planted", "budget": 3}])
        )
        assert len(result.errors) == 1
        assert result.statuses() == [0]  # never answered
