"""Unit tests for the retry/deadline/fault-injection primitives."""

import pickle

import pytest

from repro.errors import DeadlineExceededError, ReproError, SolverError
from repro.utils.faults import Fault, FaultInjected, FaultInjector
from repro.utils.retry import Deadline, RetryPolicy, TimeBudget, as_deadline


class FakeClock:
    """Manually advanced monotonic clock for deterministic timing tests."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------


def test_deadline_expires_on_fake_clock():
    clock = FakeClock()
    deadline = Deadline(5.0, clock=clock)
    assert not deadline.expired()
    assert deadline.remaining() == pytest.approx(5.0)
    clock.advance(4.999)
    assert not deadline.expired()
    clock.advance(0.001)
    assert deadline.expired()
    assert deadline.remaining() <= 0.0


def test_deadline_check_raises_with_context():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    deadline.check("stage")  # not expired: no-op
    clock.advance(2.0)
    with pytest.raises(DeadlineExceededError, match="stage"):
        deadline.check("stage")


def test_deadline_never_does_not_expire():
    deadline = Deadline.never()
    assert not deadline.expired()
    assert deadline.remaining() == float("inf")
    deadline.check()


def test_deadline_rejects_negative_seconds():
    with pytest.raises(SolverError):
        Deadline(-1.0)


def test_as_deadline_coercions():
    assert as_deadline(None) is None
    deadline = Deadline(1.0)
    assert as_deadline(deadline) is deadline
    coerced = as_deadline(0.5)
    assert isinstance(coerced, Deadline)
    assert 0.0 < coerced.remaining() <= 0.5
    with pytest.raises(SolverError):
        as_deadline("soon")


# ----------------------------------------------------------------------
# TimeBudget
# ----------------------------------------------------------------------


def test_time_budget_only_ticks_inside_charge():
    clock = FakeClock()
    budget = TimeBudget(10.0, clock=clock)
    clock.advance(100.0)  # outside charge: free
    assert budget.remaining() == pytest.approx(10.0)
    with budget.charge():
        clock.advance(4.0)
    assert budget.remaining() == pytest.approx(6.0)
    assert not budget.exhausted()
    with budget.charge():
        clock.advance(7.0)
    assert budget.exhausted()


def test_time_budget_live_charge_and_deadline():
    clock = FakeClock()
    budget = TimeBudget(10.0, clock=clock)
    with budget.charge():
        clock.advance(3.0)
        # Mid-charge, the elapsed time counts live.
        assert budget.remaining() == pytest.approx(7.0)
        deadline = budget.deadline()
        assert deadline.remaining() == pytest.approx(7.0)
    with pytest.raises(SolverError):
        with budget.charge():
            with budget.charge():
                pass


def test_time_budget_rejects_negative():
    with pytest.raises(SolverError):
        TimeBudget(-0.1)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


def test_retry_policy_delays_are_deterministic_and_bounded():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.1, max_delay=0.5, multiplier=2.0,
        jitter=0.5, seed=42,
    )
    first = list(policy.delays())
    second = list(policy.delays())
    assert first == second  # seeded jitter: identical schedules
    assert len(first) == 4
    for i, delay in enumerate(first):
        base = min(0.5, 0.1 * 2.0 ** i)
        assert base <= delay <= base * 1.5


def test_retry_policy_delay_for_matches_the_iterator_schedule():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.1, max_delay=0.5, multiplier=2.0,
        jitter=0.5, seed=42,
    )
    schedule = list(policy.delays())
    assert [policy.delay_for(i) for i in (1, 2, 3, 4)] == schedule
    # Random access replays, it does not advance: asking twice for the
    # same retry returns the same delay.
    assert policy.delay_for(2) == schedule[1]


def test_retry_policy_delay_for_rejects_out_of_schedule():
    policy = RetryPolicy(max_attempts=3)
    with pytest.raises(SolverError, match="retry_number"):
        policy.delay_for(0)
    with pytest.raises(SolverError, match="retry_number"):
        policy.delay_for(3)  # only 2 retries exist for 3 attempts


def test_retry_policy_call_retries_then_succeeds():
    attempts = []
    observed = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise ValueError("transient")
        return "ok"

    policy = RetryPolicy(
        max_attempts=3, base_delay=0.0, jitter=0.0, sleep=lambda s: None
    )
    result = policy.call(flaky, on_retry=lambda n, exc: observed.append(n))
    assert result == "ok"
    assert len(attempts) == 3
    assert observed == [1, 2]


def test_retry_policy_exhaustion_reraises_last_error():
    def always_fails():
        raise ValueError("permanent")

    policy = RetryPolicy(
        max_attempts=2, base_delay=0.0, jitter=0.0, sleep=lambda s: None
    )
    with pytest.raises(ValueError, match="permanent"):
        policy.call(always_fails)


def test_retry_policy_non_retryable_propagates_immediately():
    attempts = []

    def fails():
        attempts.append(1)
        raise KeyError("nope")

    policy = RetryPolicy(
        max_attempts=5, base_delay=0.0, jitter=0.0,
        retry_on=(ValueError,), sleep=lambda s: None,
    )
    with pytest.raises(KeyError):
        policy.call(fails)
    assert len(attempts) == 1


def test_retry_policy_respects_deadline():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    attempts = []

    def fails():
        attempts.append(1)
        clock.advance(2.0)  # the first try blows the budget
        raise ValueError("transient")

    policy = RetryPolicy(
        max_attempts=10, base_delay=0.0, jitter=0.0, sleep=lambda s: None
    )
    with pytest.raises(ValueError):
        policy.call(fails, deadline=deadline)
    assert len(attempts) == 1


def test_retry_policy_validation():
    with pytest.raises(SolverError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(SolverError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(SolverError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(SolverError):
        RetryPolicy(jitter=2.0)


def test_retry_policy_is_picklable():
    policy = RetryPolicy(max_attempts=4, seed=9)
    clone = pickle.loads(pickle.dumps(policy))
    assert list(clone.delays()) == list(policy.delays())


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------


def test_fault_injector_raises_on_nth_call():
    injector = FaultInjector([Fault.raise_on("stage", call=2)])
    injector.fire("stage")
    injector.fire("stage")
    with pytest.raises(FaultInjected, match="injected fault"):
        injector.fire("stage")  # 0-based call #2
    assert injector.fired == {"stage": 1}
    assert injector.call_count("stage") == 3


def test_fault_injector_matches_explicit_coordinates():
    injector = FaultInjector(
        [Fault.raise_on("batch", message="batch 8 down", start=8)]
    )
    injector.fire("batch", start=0)
    injector.fire("batch", start=16)
    with pytest.raises(FaultInjected, match="batch 8 down"):
        injector.fire("batch", start=8)


def test_fault_injector_custom_exception_type():
    injector = FaultInjector(
        [Fault.raise_on("io", exception_type=OSError, message="disk gone")]
    )
    with pytest.raises(OSError, match="disk gone"):
        injector.fire("io")


def test_fault_injector_delay_fires_and_counts():
    injector = FaultInjector([Fault.delay_on("slow", seconds=0.0, call=0)])
    injector.fire("slow")
    assert injector.fired == {"slow": 1}
    injector.fire("slow")  # only call 0 delays
    assert injector.fired == {"slow": 1}


def test_fault_injector_pickle_resets_counters():
    injector = FaultInjector([Fault.raise_on("site", call=0)])
    with pytest.raises(FaultInjected):
        injector.fire("site")
    clone = pickle.loads(pickle.dumps(injector))
    assert clone.call_count("site") == 0
    assert clone.fired == {}
    with pytest.raises(FaultInjected):
        clone.fire("site")  # counts restart: call 0 fires again


def test_fault_injected_is_not_a_repro_error():
    # Injected faults simulate infrastructure failures, which the
    # library must treat as foreign exceptions, not library errors.
    assert not issubclass(FaultInjected, ReproError)


def test_fault_rejects_unknown_action():
    with pytest.raises(ReproError):
        Fault(site="x", action="explode")


def test_fault_injector_add_extends_plan():
    injector = FaultInjector()
    injector.fire("site")
    injector.add(Fault.raise_on("site", call=1))
    with pytest.raises(FaultInjected):
        injector.fire("site")
