"""Linear Threshold model tests."""

import pytest

from repro.diffusion.linear_threshold import simulate_lt
from repro.errors import GraphError
from repro.graph.builders import from_edge_list
from repro.graph.weights import assign_weighted_cascade
from repro.rng import make_rng


def test_seeds_always_active():
    g = from_edge_list(3, [(0, 1, 0.5)])
    assert 0 in simulate_lt(g, [0], seed=1)


def test_strict_rejects_overweight_node():
    g = from_edge_list(3, [(0, 2, 0.8), (1, 2, 0.8)])
    with pytest.raises(GraphError, match="sum to <= 1"):
        simulate_lt(g, [0], seed=1)


def test_non_strict_allows_overweight():
    g = from_edge_list(3, [(0, 2, 0.8), (1, 2, 0.8)])
    active = simulate_lt(g, [0, 1], seed=1, strict=False)
    assert {0, 1} <= active


def test_weighted_cascade_weights_are_lt_valid():
    g = from_edge_list(4, [(0, 3), (1, 3), (2, 3), (3, 0)])
    assign_weighted_cascade(g)
    simulate_lt(g, [0], seed=2)  # no exception


def test_full_incoming_mass_forces_activation():
    # Node 1's only in-edge carries weight 1.0; thresholds are in [0,1),
    # so an active 0 always activates 1.
    g = from_edge_list(2, [(0, 1, 1.0)])
    for s in range(30):
        assert simulate_lt(g, [0], seed=s) == {0, 1}


def test_activation_probability_equals_incoming_weight():
    # With a single in-edge of weight w, Pr[activate] = Pr[theta <= w] = w.
    g = from_edge_list(2, [(0, 1, 0.3)])
    rng = make_rng(11)
    trials = 20_000
    hits = sum(1 in simulate_lt(g, [0], seed=rng) for _ in range(trials))
    assert hits / trials == pytest.approx(0.3, abs=0.02)


def test_lt_accumulates_across_neighbors():
    # Two in-edges of 0.5 each: both sources active -> always activated.
    g = from_edge_list(3, [(0, 2, 0.5), (1, 2, 0.5)])
    for s in range(30):
        active = simulate_lt(g, [0, 1], seed=s)
        assert 2 in active


def test_empty_seed_set():
    g = from_edge_list(2, [(0, 1, 0.5)])
    assert simulate_lt(g, [], seed=1) == set()


def test_deterministic_with_seed():
    g = from_edge_list(4, [(0, 1, 0.5), (1, 2, 0.5), (0, 3, 0.5)])
    assert simulate_lt(g, [0], seed=5) == simulate_lt(g, [0], seed=5)
