"""Fault-tolerance integration tests: crash recovery, retry exhaustion,
deadline degradation, and close-while-sampling semantics.

These tests use the deterministic :class:`~repro.utils.faults.FaultInjector`
to kill/fail worker processes at planned coordinates, then assert the
self-healing parallel sampler recovers *byte-identically* to a serial
run — the library's central robustness contract: recovery never changes
results.
"""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.bt import MB
from repro.core.framework import solve_imc
from repro.core.greedy import greedy_maxr, lazy_greedy_nu
from repro.core.maf import MAF
from repro.core.ubg import UBG, GreedyC
from repro.errors import SamplingError, WorkerCrashError
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.parallel import ParallelRICSampler
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler
from repro.utils.faults import Fault, FaultInjected, FaultInjector
from repro.utils.retry import Deadline, RetryPolicy

#: Fast retry schedule so healing tests don't sleep.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def instance():
    graph, blocks = planted_partition_graph(
        [6] * 5, p_in=0.5, p_out=0.05, directed=True, seed=5
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph, communities


# ------------------------------------------------- worker crash healing


@pytest.mark.fault
def test_worker_kill_recovers_byte_identical(instance):
    graph, communities = instance
    count = 48
    expected = RICSampler(graph, communities, seed=11).sample_many(count)
    injector = FaultInjector(
        # Hard-kill the worker handling batch start=8 on the first
        # attempt only; the re-dispatched batch (attempt 1) survives.
        [Fault.kill_on("sample", start=8, attempt=0, index=2)]
    )
    with ParallelRICSampler(
        graph,
        communities,
        seed=11,
        workers=2,
        batch_size=8,
        retry=FAST_RETRY,
        fault_injector=injector,
    ) as sampler:
        got = sampler.sample_many(count)
        profile = sampler.last_profile()
    assert got == expected
    assert profile["worker_restarts"] >= 1
    assert profile["retries"] >= 1
    assert 8 in profile["failed_batches"]
    assert profile["attempts"] >= 2


@pytest.mark.fault
def test_worker_exception_heals_without_pool_restart(instance):
    graph, communities = instance
    count = 48
    expected = RICSampler(graph, communities, seed=11).sample_many(count)
    injector = FaultInjector(
        # A plain exception (not a crash): the pool itself stays healthy,
        # only the failed batch is re-dispatched.
        [Fault.raise_on("generate_batch", start=16, attempt=0)]
    )
    with ParallelRICSampler(
        graph,
        communities,
        seed=11,
        workers=2,
        batch_size=8,
        retry=FAST_RETRY,
        fault_injector=injector,
    ) as sampler:
        got = sampler.sample_many(count)
        profile = sampler.last_profile()
    assert got == expected
    assert profile["worker_restarts"] == 0
    assert profile["failed_batches"] == [16]
    assert profile["retries"] == 1


@pytest.mark.fault
def test_retry_exhaustion_raises_worker_crash_error(instance):
    graph, communities = instance
    injector = FaultInjector(
        # No attempt constraint: batch 0 fails on *every* attempt.
        [Fault.raise_on("generate_batch", start=0)]
    )
    with ParallelRICSampler(
        graph,
        communities,
        seed=11,
        workers=2,
        batch_size=8,
        retry=FAST_RETRY,
        fault_injector=injector,
    ) as sampler:
        with pytest.raises(WorkerCrashError) as excinfo:
            sampler.sample_many(48)
    assert excinfo.value.attempts == FAST_RETRY.max_attempts
    assert isinstance(excinfo.value, SamplingError)


@pytest.mark.fault
def test_crashed_pool_then_clean_reuse(instance):
    graph, communities = instance
    expected = RICSampler(graph, communities, seed=11).sample_many(96)
    injector = FaultInjector(
        [Fault.kill_on("generate_batch", start=8, attempt=0)]
    )
    with ParallelRICSampler(
        graph,
        communities,
        seed=11,
        workers=2,
        batch_size=8,
        retry=FAST_RETRY,
        fault_injector=injector,
    ) as sampler:
        first = sampler.sample_many(48)
        # The rebuilt pool keeps serving subsequent calls normally.
        second = sampler.sample_many(48)
    assert first + second == expected


# ------------------------------------------------- close() semantics


def test_close_is_idempotent(instance):
    graph, communities = instance
    sampler = ParallelRICSampler(graph, communities, seed=3, workers=2)
    sampler.sample_many(24)
    sampler.close()
    sampler.close()  # double-close must be a no-op


def test_sampling_after_close_uses_fresh_pool(instance):
    graph, communities = instance
    expected = RICSampler(graph, communities, seed=3).sample_many(48)
    sampler = ParallelRICSampler(
        graph, communities, seed=3, workers=2, batch_size=8
    )
    first = sampler.sample_many(24)
    sampler.close()
    # After close(), the next dispatch lazily builds a new executor and
    # continues the master seed stream exactly where it left off.
    second = sampler.sample_many(24)
    sampler.close()
    assert first + second == expected


def test_close_while_sampling_raises_sampling_error(instance):
    graph, communities = instance
    injector = FaultInjector(
        # The first batch stalls long enough for close() to win the race.
        [Fault.delay_on("generate_batch", seconds=0.4)]
    )
    sampler = ParallelRICSampler(
        graph,
        communities,
        seed=3,
        workers=2,
        batch_size=8,
        fault_injector=injector,
    )
    import threading

    threading.Timer(0.1, sampler.close).start()
    with pytest.raises(SamplingError, match="closed while sampling"):
        sampler.sample_many(200)


# ------------------------------------------------- deadline degradation


@pytest.fixture(scope="module")
def pool(instance):
    graph, communities = instance
    p = RICSamplePool(RICSampler(graph, communities, seed=99))
    p.grow(300)
    return p


def test_expired_deadline_still_selects_one_seed(pool):
    # "Best-so-far, never empty-handed": the first greedy round always
    # completes, so even an already-expired deadline yields a seed.
    expired = Deadline(0.0)
    assert len(greedy_maxr(pool, 5, deadline=expired)) == 1
    assert len(lazy_greedy_nu(pool, 5, deadline=expired)) == 1


@pytest.mark.parametrize(
    "solver_factory",
    [
        lambda d: UBG(deadline=d),
        lambda d: MAF(seed=1, deadline=d),
        lambda d: MB(seed=1, deadline=d),
        lambda d: GreedyC(deadline=d),
    ],
)
def test_solvers_truncate_on_expired_deadline(pool, solver_factory):
    selection = solver_factory(Deadline(0.0)).solve(pool, 5)
    assert selection.truncated
    assert selection.seeds  # degraded, not empty-handed
    assert len(selection.seeds) <= 5


def test_solvers_without_deadline_are_unchanged(pool):
    bounded = UBG(deadline=Deadline.never()).solve(pool, 5)
    unbounded = UBG().solve(pool, 5)
    assert bounded.seeds == unbounded.seeds
    assert not unbounded.truncated and not bounded.truncated


def test_solve_imc_deadline_returns_truncated_best_so_far(instance):
    graph, communities = instance
    result = solve_imc(
        graph, communities, k=4, solver=UBG(), seed=7, deadline=0.0
    )
    assert result.stopped_by == "deadline"
    assert result.selection.truncated
    assert result.selection.seeds
    unbounded = solve_imc(graph, communities, k=4, solver=UBG(), seed=7)
    assert unbounded.stopped_by != "deadline"
    assert not unbounded.selection.truncated


def test_solve_imc_restores_solver_deadline(instance):
    graph, communities = instance
    solver = UBG()
    solve_imc(graph, communities, k=4, solver=solver, seed=7, deadline=0.0)
    assert solver.deadline is None  # lent for the call, then returned
