"""Hop distance / effective diameter tests."""

import pytest

from repro.errors import GraphError
from repro.graph.builders import from_edge_list, from_undirected_edge_list
from repro.graph.digraph import DiGraph
from repro.graph.paths import (
    average_shortest_path_length,
    bfs_distances,
    effective_diameter,
)


@pytest.fixture
def path_graph():
    return from_edge_list(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])


def test_bfs_distances_directed(path_graph):
    assert bfs_distances(path_graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3}
    assert bfs_distances(path_graph, 3) == {3: 0}


def test_bfs_distances_undirected_view(path_graph):
    assert bfs_distances(path_graph, 3, directed=False) == {
        3: 0,
        2: 1,
        1: 2,
        0: 3,
    }


def test_bfs_distances_validates_source(path_graph):
    with pytest.raises(GraphError):
        bfs_distances(path_graph, 9)


def test_effective_diameter_path(path_graph):
    # All sources used (n <= num_sources); distances 1,2,3,1,2,1 (dir).
    diameter = effective_diameter(
        path_graph, percentile=1.0, directed=True, seed=1
    )
    assert diameter == 3.0


def test_effective_diameter_percentile_interpolates(path_graph):
    d90 = effective_diameter(path_graph, percentile=0.9, directed=True, seed=1)
    d100 = effective_diameter(path_graph, percentile=1.0, directed=True, seed=1)
    assert d90 <= d100


def test_effective_diameter_empty_and_edgeless():
    assert effective_diameter(DiGraph(0), seed=1) == 0.0
    assert effective_diameter(DiGraph(5), seed=1) == 0.0


def test_effective_diameter_validates():
    g = DiGraph(3)
    with pytest.raises(GraphError):
        effective_diameter(g, percentile=0.0)
    with pytest.raises(GraphError):
        effective_diameter(g, num_sources=0)


def test_small_world_social_generator():
    from repro.graph.generators import barabasi_albert_graph

    g = barabasi_albert_graph(300, 3, directed=False, seed=2)
    diameter = effective_diameter(g, seed=3)
    assert 1.0 <= diameter <= 6.0  # small world


def test_average_shortest_path_length(path_graph):
    # Undirected path 0-1-2-3: distances sum 2*(1+2+3+1+2+1)=20, pairs 12.
    value = average_shortest_path_length(path_graph, directed=False)
    assert value == pytest.approx(20 / 12)


def test_average_shortest_path_guard():
    g = DiGraph(501)
    with pytest.raises(GraphError):
        average_shortest_path_length(g)


def test_average_shortest_path_edgeless_zero():
    assert average_shortest_path_length(DiGraph(4)) == 0.0
