"""Dataset registry tests (Table I stand-ins)."""

import pytest

from repro.datasets.registry import (
    DATASETS,
    dataset_names,
    dataset_statistics,
    load_dataset,
)
from repro.errors import DatasetError


def test_all_five_table1_datasets_registered():
    assert dataset_names() == ["facebook", "wikivote", "epinions", "dblp", "pokec"]


def test_specs_record_paper_statistics():
    fb = DATASETS["facebook"]
    assert fb.paper_nodes == 747
    assert fb.paper_edges == 60_050
    assert not fb.directed
    assert DATASETS["pokec"].directed
    for spec in DATASETS.values():
        assert spec.substitution  # every stand-in documents itself


def test_load_unknown_dataset():
    with pytest.raises(DatasetError, match="unknown dataset"):
        load_dataset("snapchat")


def test_load_invalid_scale():
    with pytest.raises(DatasetError):
        load_dataset("facebook", scale=0.0)


def test_load_scales_node_count():
    small = load_dataset("wikivote", scale=0.1, seed=1)
    smaller = load_dataset("wikivote", scale=0.05, seed=1)
    assert small.num_nodes > smaller.num_nodes
    assert small.num_nodes == round(DATASETS["wikivote"].reference_nodes * 0.1)


def test_load_minimum_size_floor():
    tiny = load_dataset("facebook", scale=0.001, seed=1)
    assert tiny.num_nodes == 50


def test_weighted_cascade_applied_by_default():
    ds = load_dataset("epinions", scale=0.05, seed=2)
    for v in range(ds.num_nodes):
        sources, weights = ds.graph.in_adjacency(v)
        if sources:
            assert sum(weights) == pytest.approx(1.0)


def test_raw_structural_graph_option():
    ds = load_dataset("epinions", scale=0.05, seed=2, weighted_cascade=False)
    assert all(w == 1.0 for _, _, w in ds.graph.edges())


def test_deterministic_given_seed():
    a = load_dataset("dblp", scale=0.05, seed=9)
    b = load_dataset("dblp", scale=0.05, seed=9)
    assert a.graph == b.graph


def test_different_datasets_different_graphs():
    a = load_dataset("wikivote", scale=0.1, seed=9)
    b = load_dataset("pokec", scale=0.0175, seed=9)  # similar node count
    assert a.graph != b.graph


def test_undirected_datasets_are_symmetric():
    ds = load_dataset("facebook", scale=0.1, seed=3, weighted_cascade=False)
    for u, v, _ in ds.graph.edges():
        assert ds.graph.has_edge(v, u)


def test_average_degree_in_right_ballpark():
    """Stand-ins should roughly match the paper's edge/node ratios."""
    for name, lo, hi in (
        ("wikivote", 8, 25),
        ("pokec", 12, 30),
        ("epinions", 2, 15),
    ):
        ds = load_dataset(name, scale=0.2, seed=4)
        avg = ds.num_edges / ds.num_nodes
        assert lo <= avg <= hi, (name, avg)


def test_dataset_statistics_rows():
    rows = dataset_statistics(scale=0.05, seed=5)
    assert len(rows) == 5
    for row in rows:
        assert row["nodes"] > 0 and row["edges"] > 0
        assert row["type"] in ("Directed", "Undirected")
        assert row["paper_nodes"] > 0
