"""Parallel RIC sampling engine: determinism, wire format, plumbing.

The engine's contract is exact: for a fixed seed the parallel sampler
must produce the *same sample sequence* as the serial sampler, for every
worker count and batch size, so switching engines can never change a
solver's output.
"""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.framework import solve_imc
from repro.core.ubg import UBG
from repro.errors import SamplingError
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.parallel import (
    ParallelRICSampler,
    compact_sample,
    expand_sample,
)
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler


@pytest.fixture(scope="module")
def instance():
    graph, blocks = planted_partition_graph(
        [6] * 5, p_in=0.5, p_out=0.05, directed=True, seed=5
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    return graph, communities


# ------------------------------------------------------- wire format


def test_compact_roundtrip(instance):
    graph, communities = instance
    for sample in RICSampler(graph, communities, seed=3).sample_many(20):
        assert expand_sample(compact_sample(sample)) == sample


def test_compact_encoding_is_canonical_tuples(instance):
    graph, communities = instance
    sample = RICSampler(graph, communities, seed=3).sample()
    compact = compact_sample(sample)
    community_index, threshold, members, reaches = compact
    assert isinstance(community_index, int) and isinstance(threshold, int)
    assert isinstance(members, tuple)
    for reach in reaches:
        assert isinstance(reach, tuple)
        assert list(reach) == sorted(reach)


# ------------------------------------------------------- determinism


@pytest.mark.parametrize("workers", [1, 2, 3, 4])
def test_parallel_matches_serial_for_all_worker_counts(instance, workers):
    graph, communities = instance
    serial = RICSampler(graph, communities, seed=42).sample_many(48)
    with ParallelRICSampler(
        graph, communities, seed=42, workers=workers
    ) as parallel:
        assert parallel.sample_many(48) == serial


@pytest.mark.parametrize("batch_size", [1, 3, 7, 100])
def test_parallel_deterministic_across_batch_sizes(instance, batch_size):
    graph, communities = instance
    serial = RICSampler(graph, communities, seed=9).sample_many(30)
    with ParallelRICSampler(
        graph, communities, seed=9, workers=2, batch_size=batch_size
    ) as parallel:
        assert parallel.sample_many(30) == serial


def test_parallel_pools_byte_identical(instance):
    """Acceptance check: pools built by either engine are identical in
    samples AND in every inverted index."""
    graph, communities = instance
    serial_pool = RICSamplePool(RICSampler(graph, communities, seed=7))
    serial_pool.grow(40)
    with ParallelRICSampler(graph, communities, seed=7, workers=3) as sampler:
        parallel_pool = RICSamplePool(sampler)
        parallel_pool.grow(40)
    assert parallel_pool.samples == serial_pool.samples
    assert parallel_pool._coverage == serial_pool._coverage
    assert parallel_pool._touch_counts == serial_pool._touch_counts
    assert parallel_pool.community_counts() == serial_pool.community_counts()


def test_interleaved_sample_and_sample_many_match_serial(instance):
    graph, communities = instance
    serial = RICSampler(graph, communities, seed=13)
    expected = [serial.sample() for _ in range(40)]
    with ParallelRICSampler(graph, communities, seed=13, workers=2) as par:
        got = [par.sample(), par.sample()]
        got.extend(par.sample_many(30))
        got.extend(par.sample() for _ in range(8))
    assert got == expected


def test_parallel_lt_model_matches_serial(instance):
    graph, communities = instance
    serial = RICSampler(graph, communities, seed=21, model="lt").sample_many(24)
    with ParallelRICSampler(
        graph, communities, seed=21, model="lt", workers=2
    ) as parallel:
        assert parallel.sample_many(24) == serial


# ------------------------------------------------------- profile & lifecycle


def test_profile_reports_parallel_run(instance):
    graph, communities = instance
    with ParallelRICSampler(graph, communities, seed=1, workers=2) as sampler:
        assert sampler.last_profile() is None
        sampler.sample_many(32)
        profile = sampler.last_profile()
    assert profile["mode"] == "parallel"
    assert profile["samples"] == 32
    assert profile["workers"] == 2
    assert profile["samples_per_sec"] > 0
    assert profile["batches"] >= 2
    assert 0.0 <= profile["worker_utilization"] <= 1.0


def test_profile_reports_inline_run_below_dispatch_floor(instance):
    graph, communities = instance
    with ParallelRICSampler(graph, communities, seed=1, workers=2) as sampler:
        sampler.sample_many(4)
        profile = sampler.last_profile()
    assert profile["mode"] == "inline"
    assert profile["worker_utilization"] is None


def test_serial_and_parallel_profiles_share_key_set(instance):
    """Consumers must never branch on the engine: both samplers report
    the unified schema (``repro.sampling.profile.PROFILE_KEYS``)."""
    from repro.sampling.profile import PROFILE_KEYS

    graph, communities = instance
    serial = RICSampler(graph, communities, seed=1)
    serial.sample_many(16)
    serial_profile = serial.last_profile()
    with ParallelRICSampler(graph, communities, seed=1, workers=2) as sampler:
        sampler.sample_many(32)
        parallel_profile = sampler.last_profile()
    assert tuple(serial_profile) == PROFILE_KEYS
    assert tuple(parallel_profile) == PROFILE_KEYS
    assert serial_profile["mode"] == "serial"
    assert serial_profile["workers"] == 1
    assert parallel_profile["mode"] == "parallel"


def test_close_is_idempotent_and_allows_resampling(instance):
    graph, communities = instance
    sampler = ParallelRICSampler(graph, communities, seed=2, workers=2)
    sampler.sample_many(20)
    sampler.close()
    sampler.close()
    # A closed sampler lazily rebuilds its worker pool.
    assert len(sampler.sample_many(20)) == 20
    sampler.close()


def test_validation_errors(instance):
    graph, communities = instance
    with pytest.raises(SamplingError):
        ParallelRICSampler(graph, communities, workers=0)
    with pytest.raises(SamplingError):
        ParallelRICSampler(graph, communities, batch_size=0)
    with ParallelRICSampler(graph, communities, seed=1, workers=1) as sampler:
        with pytest.raises(SamplingError):
            sampler.sample_many(-1)
        assert sampler.sample_many(0) == []


# ------------------------------------------------------- solver plumbing


def test_solve_imc_engine_parallel_matches_serial(instance):
    graph, communities = instance
    kwargs = dict(k=3, solver=UBG(), seed=33, max_samples=600)
    serial = solve_imc(graph, communities, engine="serial", **kwargs)
    parallel = solve_imc(
        graph, communities, engine="parallel", workers=2, **kwargs
    )
    assert parallel.selection.seeds == serial.selection.seeds
    assert parallel.num_samples == serial.num_samples
    assert parallel.selection.objective == serial.selection.objective


def test_solve_imc_rejects_unknown_engine(instance):
    graph, communities = instance
    from repro.errors import SolverError

    with pytest.raises(SolverError):
        solve_imc(
            graph, communities, k=2, solver=UBG(), seed=1, engine="threads"
        )


def test_solve_imc_progress_carries_sampling_profile(instance):
    graph, communities = instance
    events = []
    solve_imc(
        graph,
        communities,
        k=2,
        solver=UBG(),
        seed=3,
        max_samples=400,
        engine="parallel",
        workers=2,
        progress=events.append,
    )
    assert events
    profiles = [e["sampling_profile"] for e in events if e["sampling_profile"]]
    assert profiles, "parallel engine never reported a sampling profile"
    assert all("samples_per_sec" in p for p in profiles)
