"""Community / CommunityStructure data-model tests."""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.errors import CommunityError


def test_community_basic_fields():
    c = Community(members=(3, 1, 2), threshold=2, benefit=5.0)
    assert c.size == 3
    assert len(c) == 3
    assert 1 in c and 9 not in c


def test_community_rejects_empty_members():
    with pytest.raises(CommunityError):
        Community(members=(), threshold=1, benefit=1.0)


def test_community_rejects_duplicate_members():
    with pytest.raises(CommunityError):
        Community(members=(1, 1, 2), threshold=1, benefit=1.0)


@pytest.mark.parametrize("threshold", [0, -1, 4])
def test_community_rejects_out_of_range_threshold(threshold):
    with pytest.raises(CommunityError):
        Community(members=(0, 1, 2), threshold=threshold, benefit=1.0)


def test_community_rejects_negative_benefit():
    with pytest.raises(CommunityError):
        Community(members=(0,), threshold=1, benefit=-0.5)


def test_structure_disjointness_enforced():
    with pytest.raises(CommunityError, match="disjoint"):
        CommunityStructure(
            [
                Community(members=(0, 1), threshold=1, benefit=1.0),
                Community(members=(1, 2), threshold=1, benefit=1.0),
            ]
        )


def test_structure_requires_at_least_one_community():
    with pytest.raises(CommunityError):
        CommunityStructure([])


def test_structure_paper_notation(two_communities):
    assert two_communities.r == 2
    assert two_communities.total_benefit == 4.0
    assert two_communities.min_benefit == 1.0
    assert two_communities.max_threshold == 2
    assert two_communities.covered_nodes == 6


def test_benefit_distribution(two_communities):
    rho = two_communities.benefit_distribution()
    assert rho == pytest.approx([0.75, 0.25])
    assert sum(rho) == pytest.approx(1.0)


def test_benefit_distribution_all_zero_raises():
    structure = CommunityStructure(
        [Community(members=(0,), threshold=1, benefit=0.0)]
    )
    with pytest.raises(CommunityError):
        structure.benefit_distribution()


def test_community_of(two_communities):
    assert two_communities.community_of(0) == 0
    assert two_communities.community_of(4) == 1
    assert two_communities.community_of(99) is None


def test_container_protocol(two_communities):
    assert len(two_communities) == 2
    assert [c.threshold for c in two_communities] == [2, 1]
    assert two_communities[1].members == (3, 4, 5)


def test_thresholds_and_benefits_aligned(two_communities):
    assert two_communities.thresholds() == [2, 1]
    assert two_communities.benefits() == [3.0, 1.0]


def test_max_threshold_at_most(two_communities):
    assert two_communities.max_threshold_at_most(2)
    assert not two_communities.max_threshold_at_most(1)


def test_validate_against(two_communities):
    two_communities.validate_against(6)
    with pytest.raises(CommunityError):
        two_communities.validate_against(5)


def test_repr_mentions_r(two_communities):
    assert "r=2" in repr(two_communities)
