"""Solvers on LT-mode pools and remaining solver edge cases.

The MAXR solvers are model-agnostic — they consume reach sets, not the
diffusion model. These tests run every solver on LT-realised pools and
cover the remaining solver corner cases (deep BT recursion shortcut,
MB metadata, GreedyC on LT, framework over an LT pool at h=1 where the
problem collapses to classic coverage).
"""

import pytest

from repro.communities.structure import Community, CommunityStructure
from repro.core.bt import BT, MB
from repro.core.maf import MAF
from repro.core.ubg import UBG, GreedyC
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler


@pytest.fixture(scope="module")
def lt_pool():
    graph, blocks = planted_partition_graph(
        [5] * 4, p_in=0.6, p_out=0.05, directed=True, seed=71
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(members=tuple(b), threshold=2, benefit=float(len(b)))
            for b in blocks
        ]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=72, model="lt"))
    pool.grow(400)
    return pool


@pytest.mark.parametrize(
    "solver_factory",
    [
        lambda: UBG(),
        lambda: GreedyC(),
        lambda: MAF(seed=1),
        lambda: BT(candidate_limit=15),
        lambda: MB(candidate_limit=15, seed=1),
    ],
    ids=["UBG", "GreedyC", "MAF", "BT", "MB"],
)
def test_every_solver_runs_on_lt_pool(lt_pool, solver_factory):
    result = solver_factory().solve(lt_pool, 5)
    assert 1 <= len(result.seeds) <= 5
    assert result.objective == pytest.approx(
        lt_pool.estimate_benefit(result.seeds)
    )
    assert result.objective > 0


def test_lt_worlds_are_in_degree_one_functional_graphs():
    """Under weighted-cascade weights every node's incoming mass is
    exactly 1, so the LT triggering draw keeps exactly one in-edge per
    node with in-neighbours — the realised world is a functional graph
    on its reverse edges. (Notably this means LT reach is NOT generally
    smaller than IC reach here: IC keeps each in-edge only with
    probability 1/d and often keeps none.)"""
    graph, blocks = planted_partition_graph(
        [5] * 4, p_in=0.6, p_out=0.05, directed=True, seed=73
    )
    assign_weighted_cascade(graph)
    from repro.diffusion.linear_threshold import lt_live_edge_graph

    for trial in range(20):
        world = lt_live_edge_graph(graph, seed=trial)
        for v in graph.nodes():
            if graph.in_degree(v) > 0:
                assert world.in_degree(v) == 1
            else:
                assert world.in_degree(v) == 0


def test_bt_depth_shortcut_on_unit_thresholds():
    """BT with a d=3 bound but an all-h=1 collection must shortcut to
    plain greedy (max_threshold() <= 1 branch) and still be optimal."""
    communities = CommunityStructure(
        [
            Community(members=(i,), threshold=1, benefit=1.0)
            for i in range(4)
        ]
    )
    from repro.graph.digraph import DiGraph
    from repro.sampling.ric import RICSample

    pool = RICSamplePool(RICSampler(DiGraph(10), communities, seed=75))
    for i in range(4):
        pool.add(
            RICSample(i, 1, (i,), (frozenset({i, 8}),))
        )
    result = BT(threshold_bound=3).solve(pool, 1)
    assert result.seeds == (8,)  # covers all four samples
    assert pool.influenced_count(result.seeds) == 4


def test_mb_metadata_reports_both_arms(lt_pool):
    result = MB(candidate_limit=10, seed=2).solve(lt_pool, 4)
    assert result.metadata["arm"] in ("MAF", "BT")
    assert result.metadata["value_maf"] >= 0
    assert result.metadata["value_bt"] >= 0
    assert result.objective == max(
        result.metadata["value_maf"], result.metadata["value_bt"]
    )


def test_framework_lt_h1_reduces_to_coverage():
    """At h=1 the LT IMC is classic LT influence maximization; UBG's
    two arms coincide (Lemma 4) so the sandwich ratio is exactly 1."""
    graph, blocks = planted_partition_graph(
        [4] * 3, p_in=0.7, p_out=0.05, directed=True, seed=76
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [Community(members=tuple(b), threshold=1, benefit=1.0) for b in blocks]
    )
    pool = RICSamplePool(RICSampler(graph, communities, seed=77, model="lt"))
    pool.grow(300)
    result = UBG().solve(pool, 3)
    assert result.metadata["sandwich_ratio"] == pytest.approx(1.0)
