"""Seeded RNG plumbing."""

import random

from repro.rng import derive_seed, make_rng, spawn_rng


def test_make_rng_from_int_is_deterministic():
    a = make_rng(42)
    b = make_rng(42)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_make_rng_passthrough_for_random_instance():
    rng = random.Random(1)
    assert make_rng(rng) is rng


def test_make_rng_none_gives_fresh_stream():
    # Two unseeded streams should (overwhelmingly) differ.
    a, b = make_rng(None), make_rng(None)
    assert isinstance(a, random.Random) and isinstance(b, random.Random)


def test_spawn_rng_children_are_independent_and_deterministic():
    parent1, parent2 = make_rng(7), make_rng(7)
    child_a, child_b = spawn_rng(parent1), spawn_rng(parent1)
    # Same parent seed reproduces the same child sequence.
    child_a2 = spawn_rng(parent2)
    assert child_a.random() == child_a2.random()
    # Sibling children differ.
    assert child_a.random() != child_b.random()


def test_derive_seed_deterministic_and_component_sensitive():
    assert derive_seed(1, "x", 2) == derive_seed(1, "x", 2)
    assert derive_seed(1, "x", 2) != derive_seed(1, "y", 2)
    assert derive_seed(1, "x", 2) != derive_seed(1, "x", 3)
    assert derive_seed(2, "x", 2) != derive_seed(1, "x", 2)


def test_derive_seed_none_base_stays_none():
    assert derive_seed(None, "anything", 5) is None


def test_derive_seed_range():
    seed = derive_seed(123456789, "component", 42)
    assert 0 <= seed < 2**32
