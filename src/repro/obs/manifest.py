"""Per-run manifests: what ran, on what code, with which seeds.

A manifest is one JSON document that makes a run *attributable* after
the fact: git SHA and platform (where), RNG seeds and a configuration
hash (what), phase timings aggregated from the trace and the final
metrics snapshot (how it went). It is written with the same atomic
temp-file + ``fsync`` + ``os.replace`` discipline as
:class:`~repro.experiments.checkpoint.CheckpointStore`, so it can sit
safely alongside checkpoint/campaign artifacts.

Schema (``repro-run-manifest/1``)::

    {
      "schema": "repro-run-manifest/1",
      "run_id":        unique hex id for this run,
      "created_at":    UTC ISO-8601 stamp,
      "command":       logical entry point ("solve", "compare", ...),
      "config":        JSON-safe dict of the run's parameters,
      "config_hash":   sha256 of the canonicalised config,
      "seeds":         the RNG seeds the run was launched with,
      "environment":   environment_fingerprint() block,
      "phase_timings": {span name: {count, total_seconds, ...}},
      "metrics":       metrics registry snapshot,
      "artifacts":     {label: path} of files the run produced,
      "estimator":     ConvergenceMonitor.summary() block — final
                       mean/CI/sample count, ĉ(S) trajectory and pool
                       composition (present only when the run attached
                       a convergence monitor),
    }
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from typing import Any, Dict, Iterable, Optional

from repro.errors import ObservabilityError
from repro.obs.environment import environment_fingerprint
from repro.obs.metrics import metrics
from repro.obs.tracer import phase_timings, trace

#: Manifest schema identifier (bump when the document shape changes).
MANIFEST_SCHEMA = "repro-run-manifest/1"


def config_hash(config: Dict[str, Any]) -> str:
    """Order-independent sha256 of a JSON-safe config dict.

    Two runs with the same parameters hash identically regardless of
    dict insertion order; non-JSON values are stringified.
    """
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_manifest(
    command: str,
    config: Optional[Dict[str, Any]] = None,
    seeds: Optional[Dict[str, Any]] = None,
    spans: Optional[Iterable[Dict[str, Any]]] = None,
    metrics_snapshot: Optional[Dict[str, Any]] = None,
    artifacts: Optional[Dict[str, str]] = None,
    estimator: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest document for the current (or a finished) run.

    ``spans`` and ``metrics_snapshot`` default to the live tracer /
    registry state, so calling this at the end of an instrumented run
    captures everything; an already-closed
    :class:`~repro.obs.session.Recorder` passes its retained copies.
    ``estimator`` is a
    :meth:`~repro.obs.diagnostics.ConvergenceMonitor.summary` dict
    (``result.metadata["estimator"]`` from a monitored ``solve_imc``);
    the key is included only when provided, so unmonitored manifests
    keep their PR-4 shape.
    """
    config = dict(config or {})
    span_records = list(spans) if spans is not None else trace.snapshot()
    document = {
        "schema": MANIFEST_SCHEMA,
        "run_id": uuid.uuid4().hex[:16],
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "command": command,
        "config": config,
        "config_hash": config_hash(config),
        "seeds": dict(seeds or {}),
        "environment": environment_fingerprint(),
        "phase_timings": phase_timings(span_records),
        "metrics": (
            metrics_snapshot
            if metrics_snapshot is not None
            else metrics.snapshot()
        ),
        "artifacts": dict(artifacts or {}),
    }
    if estimator is not None:
        document["estimator"] = dict(estimator)
    return document


def write_manifest(manifest: Dict[str, Any], path: str) -> str:
    """Write ``manifest`` to ``path`` atomically; returns ``path``.

    Same crash discipline as the checkpoint store: sibling temp file,
    ``fsync``, ``os.replace`` — a reader (or a post-crash resume) never
    observes a partial manifest.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_manifest(path: str) -> Dict[str, Any]:
    """Read a manifest back, validating its schema stamp."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("schema") != MANIFEST_SCHEMA:
        raise ObservabilityError(
            f"{path!r} is not a {MANIFEST_SCHEMA!r} manifest "
            f"(schema: {document.get('schema') if isinstance(document, dict) else None!r})"
        )
    return document


def manifest_path_for(artifact_path: str) -> str:
    """Conventional manifest path next to an artifact.

    ``run.jsonl`` → ``run.manifest.json``; extension-less paths get
    ``.manifest.json`` appended. Used by the CLI (``--trace-out``) and
    the checkpointed experiment drivers.
    """
    base, _ = os.path.splitext(os.fspath(artifact_path))
    return f"{base}.manifest.json"
