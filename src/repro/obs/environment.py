"""Environment fingerprinting: git state, interpreter, platform.

Perf and reproduction claims are only attributable when the artifact
records *which code* produced them — a timestamp alone cannot be
diffed against a commit. These helpers are deliberately tolerant:
outside a git checkout (or without a ``git`` binary) the git fields
come back ``None`` and everything else still works, so library users
installing from a wheel are unaffected.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional

from repro.errors import ReproError

#: Bound on how long a git subprocess may take before we give up and
#: report "unknown" — observability must never hang the workload.
_GIT_TIMEOUT_SECONDS = 5.0


def _run_git(args, cwd: Optional[str]) -> Optional[str]:
    """Run ``git <args>`` and return stripped stdout, or ``None`` on
    any failure (no repo, no binary, timeout)."""
    try:
        completed = subprocess.run(
            ["git", *args],
            cwd=cwd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            timeout=_GIT_TIMEOUT_SECONDS,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.decode("utf-8", "replace").strip()


def git_info(cwd: Optional[str] = None) -> Dict[str, Any]:
    """``{"sha": str | None, "dirty": bool | None}`` for the checkout
    containing ``cwd`` (default: the process working directory).

    ``sha`` is the full HEAD commit; ``dirty`` is whether the working
    tree has uncommitted changes (``git status --porcelain`` non-empty,
    untracked files included). Both are ``None`` when the answer cannot
    be determined — callers must treat *unknown* differently from
    *clean* (the bench recorder allows unknown, refuses dirty).
    """
    sha = _run_git(["rev-parse", "HEAD"], cwd)
    if sha is None:
        return {"sha": None, "dirty": None}
    status = _run_git(["status", "--porcelain"], cwd)
    dirty = None if status is None else bool(status)
    return {"sha": sha, "dirty": dirty}


def working_tree_dirty(cwd: Optional[str] = None) -> Optional[bool]:
    """Whether the enclosing git working tree has uncommitted changes.

    ``None`` when unknown (not a checkout / no git binary).
    """
    return git_info(cwd)["dirty"]


def require_clean_tree(allow_dirty: bool = False,
                       cwd: Optional[str] = None) -> None:
    """Raise :class:`~repro.errors.ReproError` when the working tree is
    dirty and ``allow_dirty`` is not set.

    Used by ``python -m repro bench --record`` and
    ``benchmarks/record_bench.py``: a perf-trajectory entry stamped
    with a commit SHA is a lie if the tree it ran on differs from that
    commit. An *unknown* state (no git) is allowed — the entry simply
    records no SHA.
    """
    if allow_dirty:
        return
    if working_tree_dirty(cwd):
        raise ReproError(
            "refusing to record a benchmark entry from a dirty working "
            "tree (the stamped git SHA would not describe the measured "
            "code); commit your changes or pass --allow-dirty"
        )


def environment_fingerprint(cwd: Optional[str] = None) -> Dict[str, Any]:
    """One JSON-ready dict identifying code + interpreter + machine.

    Keys: ``git_sha``, ``git_dirty``, ``python``, ``implementation``,
    ``platform``, ``machine``, ``cpu_count``. This is the block stamped
    into ``BENCH_kernels.json`` entries and run manifests.
    """
    git = git_info(cwd)
    return {
        "git_sha": git["sha"],
        "git_dirty": git["dirty"],
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
