"""The module-level enabled flag guarding all instrumentation.

Every hot-path touchpoint (``trace.span``, ``metrics.inc``, ...) checks
``_gate.active`` first and returns immediately when it is ``False`` —
the default. Keeping the flag in its own tiny module avoids import
cycles between the tracer, the metrics registry and the session layer,
and makes the no-op cost of disabled instrumentation two attribute
lookups plus a branch (verified by the perf smoke test in
``tests/test_perf_smoke.py``).

The flag is flipped only by :mod:`repro.obs.session` (and, transiently,
by :meth:`repro.obs.tracer.Tracer.capture` inside parallel-sampling
workers). User code should never write it directly.
"""

from __future__ import annotations

#: Whether instrumentation is currently collecting. Off by default.
active: bool = False
