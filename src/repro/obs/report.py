"""Human-readable rendering of manifests, traces and metrics dumps.

Backs ``python -m repro report <file>``: point it at a run manifest
(``*.manifest.json``), a raw span trace (``*.jsonl``) or a metrics dump
(the ``--metrics-out`` JSONL of typed counter/gauge/histogram records)
and it prints a plain-text summary — environment, per-phase timing
table, counters, gauges, histogram bucket tables, and (for monitored
runs) the estimator-quality block with its convergence-trajectory
sparkline. Pure string formatting, no dependencies beyond the standard
library.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List, Optional

from repro.errors import ObservabilityError
from repro.obs.events import merge_event_logs
from repro.obs.manifest import MANIFEST_SCHEMA, load_manifest
from repro.obs.sinks import read_jsonl
from repro.obs.tracer import phase_timings


def _fmt_seconds(value: float) -> str:
    """Compact duration formatting for the timing table."""
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _timing_lines(phases: Dict[str, Dict[str, Any]]) -> List[str]:
    """Render a phase-timings dict as aligned table rows."""
    if not phases:
        return ["  (no spans recorded)"]
    width = max(len(name) for name in phases)
    lines = [
        f"  {'phase'.ljust(width)}  {'count':>6}  {'total':>10}  "
        f"{'mean':>10}  {'max':>10}  errors"
    ]
    ordered = sorted(
        phases.items(), key=lambda item: -item[1]["total_seconds"]
    )
    for name, entry in ordered:
        mean = entry["total_seconds"] / max(entry["count"], 1)
        lines.append(
            f"  {name.ljust(width)}  {entry['count']:>6}  "
            f"{_fmt_seconds(entry['total_seconds']):>10}  "
            f"{_fmt_seconds(mean):>10}  "
            f"{_fmt_seconds(entry['max_seconds']):>10}  "
            f"{entry['errors']}"
        )
    return lines


#: Glyph ramp for text sparklines, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _sparkline(values: List[float]) -> str:
    """Render ``values`` as a fixed-height unicode sparkline."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_GLYPHS[0] * len(values)
    span = hi - lo
    top = len(SPARK_GLYPHS) - 1
    return "".join(
        SPARK_GLYPHS[min(top, int((v - lo) / span * top + 0.5))]
        for v in values
    )


def _fmt_edge(value: Any) -> str:
    """Bucket-edge label: integral edges print without the .0."""
    number = float(value)
    if number == int(number):
        return str(int(number))
    return f"{number:g}"


def _histogram_lines(name: str, hist: Dict[str, Any]) -> List[str]:
    """Render one histogram as a per-bucket table with a bar column."""
    count = hist.get("count", 0)
    total = hist.get("sum", 0.0)
    mean = total / count if count else 0.0
    lines = [f"  {name}: count={count} sum={total:.6g} mean={mean:.6g}"]
    edges = list(hist.get("buckets") or [])
    counts = list(hist.get("counts") or [])
    if not edges or not counts or not count:
        return lines
    labels = [f"<= {_fmt_edge(edge)}" for edge in edges]
    if len(counts) > len(edges):
        labels.append(f"> {_fmt_edge(edges[-1])}")
    width = max(len(label) for label in labels)
    peak = max(counts)
    for label, bucket_count in zip(labels, counts):
        bar = "█" * round(bucket_count / peak * 20) if peak else ""
        lines.append(
            f"    {label.rjust(width)}  {bucket_count:>8}  {bar}"
        )
    return lines


def _metrics_lines(snapshot: Dict[str, Any]) -> List[str]:
    """Render a metrics snapshot (counters/gauges/histograms)."""
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name} = {gauges[name]}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            lines.extend(_histogram_lines(name, histograms[name]))
    if not lines:
        lines.append("(no metrics recorded)")
    return lines


def _estimator_lines(block: Dict[str, Any]) -> List[str]:
    """Render a manifest ``estimator`` block (ConvergenceMonitor
    summary): final statistics, the ĉ(S)-vs-samples trajectory as a
    sparkline plus table, the most-activated communities and the pool
    composition line."""
    lines = ["estimator:"]
    mean = block.get("mean")
    halfwidth = block.get("halfwidth")
    relative = block.get("relative_width")
    parts = []
    if mean is not None:
        parts.append(f"ĉ(S) = {mean:.6g}")
    if halfwidth is not None:
        parts.append(f"± {halfwidth:.4g}")
    if relative is not None:
        parts.append(f"(relative width {relative:.4g})")
    if parts:
        lines.append("  " + " ".join(parts))
    criterion = block.get("criterion")
    status = "converged" if block.get("converged") else "not converged"
    if criterion:
        lines.append(
            f"  stopping rule: relative width <= {criterion.get('ci_width')} "
            f"after >= {criterion.get('min_samples')} samples "
            f"({criterion.get('method')}, delta={criterion.get('delta')}) "
            f"— {status}"
        )
    lines.append(
        f"  samples used: {block.get('samples', 0)} over "
        f"{block.get('stages', 0)} stage(s)"
    )
    trajectory = block.get("trajectory") or []
    if trajectory:
        estimates = [point.get("estimate", 0.0) for point in trajectory]
        lines.append(f"  trajectory: {_sparkline(estimates)}")
        lines.append(
            f"    {'samples':>10}  {'ĉ(S)':>12}  {'halfwidth':>10}  "
            f"{'rel.width':>10}"
        )
        for point in trajectory:
            rel = point.get("relative_width")
            lines.append(
                f"    {point.get('samples', 0):>10}  "
                f"{point.get('estimate', 0.0):>12.6g}  "
                f"{point.get('halfwidth', 0.0):>10.4g}  "
                f"{(f'{rel:.4g}' if rel is not None else '—'):>10}"
            )
    trials = block.get("estimate_trials")
    if trials:
        lines.append(
            f"  cross-check trials: {trials.get('count', 0)} "
            f"(mean {trials.get('mean', 0.0):.4g}, "
            f"std {trials.get('std', 0.0):.4g})"
        )
    communities = block.get("communities") or {}
    if communities:
        ranked = sorted(
            communities.items(),
            key=lambda item: -item[1].get("rate", 0.0),
        )[:5]
        rendered = ", ".join(
            f"{index}: {entry.get('rate', 0.0):.3f} "
            f"({entry.get('influenced', 0)}/{entry.get('seen', 0)})"
            for index, entry in ranked
        )
        lines.append(f"  top community activation: {rendered}")
    pool = block.get("pool") or {}
    if pool:
        lines.append(
            f"  pool: {pool.get('samples', 0)} samples, "
            f"{pool.get('unique_reach_sets', 0)}/"
            f"{pool.get('reach_sets', 0)} distinct reach sets "
            f"(ratio {pool.get('unique_ratio', 0.0):.3f}), "
            f"~{pool.get('bytes', 0)} bytes"
        )
    return lines


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Render a loaded manifest document as a plain-text report."""
    env = manifest.get("environment") or {}
    lines = [
        f"run {manifest.get('run_id', '?')} — "
        f"command: {manifest.get('command', '?')}",
        f"created: {manifest.get('created_at', '?')}",
        f"config hash: {manifest.get('config_hash', '?')}",
        "environment:",
        f"  git: {env.get('git_sha') or 'unknown'}"
        + (" (dirty)" if env.get("git_dirty") else ""),
        f"  python: {env.get('python', '?')} "
        f"({env.get('implementation', '?')}) on "
        f"{env.get('platform', '?')}",
    ]
    seeds = manifest.get("seeds") or {}
    if seeds:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(seeds.items()))
        lines.append(f"seeds: {pairs}")
    artifacts = manifest.get("artifacts") or {}
    if artifacts:
        lines.append("artifacts:")
        for label in sorted(artifacts):
            lines.append(f"  {label}: {artifacts[label]}")
    lines.append("phase timings:")
    lines.extend(_timing_lines(manifest.get("phase_timings") or {}))
    lines.extend(_metrics_lines(manifest.get("metrics") or {}))
    estimator = manifest.get("estimator")
    if estimator:
        lines.extend(_estimator_lines(estimator))
    return "\n".join(lines)


def render_trace(records: List[Dict[str, Any]]) -> str:
    """Render raw span records (a trace JSONL) as a timing report."""
    spans = [r for r in records if r.get("type") == "span"]
    lines = [f"trace: {len(spans)} spans", "phase timings:"]
    lines.extend(_timing_lines(phase_timings(spans)))
    return "\n".join(lines)


_METRIC_RECORD_TYPES = {"counter", "gauge", "histogram"}


def render_metrics(records: List[Dict[str, Any]]) -> str:
    """Render a metrics dump (the ``--metrics-out`` JSONL of typed
    counter/gauge/histogram records, or a raw snapshot dict) including
    per-bucket histogram tables."""
    if isinstance(records, dict):
        snapshot: Dict[str, Any] = records
    else:
        snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
        for record in records:
            kind = record.get("type")
            name = record.get("name", "?")
            if kind == "counter":
                snapshot["counters"][name] = record.get("value")
            elif kind == "gauge":
                snapshot["gauges"][name] = record.get("value")
            elif kind == "histogram":
                snapshot["histograms"][name] = {
                    key: record.get(key)
                    for key in ("buckets", "counts", "count", "sum")
                }
    total = (
        len(snapshot["counters"])
        + len(snapshot["gauges"])
        + len(snapshot["histograms"])
    )
    lines = [f"metrics: {total} series"]
    lines.extend(_metrics_lines(snapshot))
    return "\n".join(lines)


#: Event keys that are envelope, not payload — everything else renders
#: as ``key=value`` detail on the timeline line.
_EVENT_ENVELOPE_KEYS = {"type", "event", "ts", "pid", "source"}

#: Cap on rendered timeline lines (a long chaos soak can log thousands
#: of heartbeat misses; the cap keeps reports terminal-sized).
_TIMELINE_LIMIT = 200


def _event_lines(events: List[Dict[str, Any]]) -> List[str]:
    """Render merged event records as a relative-time timeline."""
    if not events:
        return ["  (no events recorded)"]
    t0 = events[0].get("ts", 0.0)
    source_width = max(
        (len(str(e.get("source", ""))) for e in events), default=0
    )
    lines = []
    shown = events[:_TIMELINE_LIMIT]
    for event in shown:
        offset = float(event.get("ts", t0)) - t0
        detail = " ".join(
            f"{key}={event[key]}"
            for key in sorted(event)
            if key not in _EVENT_ENVELOPE_KEYS
        )
        source = str(event.get("source", "")).ljust(source_width)
        line = f"  +{offset:9.3f}s  {source}  {event.get('event', '?')}"
        if detail:
            line += f"  {detail}"
        lines.append(line)
    if len(events) > len(shown):
        lines.append(f"  ... {len(events) - len(shown)} more events")
    return lines


def _event_summary_lines(events: List[Dict[str, Any]]) -> List[str]:
    """One-line incident summary: restarts, breaker trips, misses."""
    by_type: Dict[str, int] = {}
    for event in events:
        name = event.get("event", "?")
        by_type[name] = by_type.get(name, 0) + 1
    interesting = [
        ("replica.killed", "kills"),
        ("replica.respawned", "restarts"),
        ("replica.heartbeat.missed", "heartbeat misses"),
        ("breaker.opened", "breakers opened"),
        ("shard.evicted", "evictions"),
        ("server.drain.begin", "drains"),
    ]
    parts = [
        f"{label}={by_type[name]}"
        for name, label in interesting
        if by_type.get(name)
    ]
    if not parts:
        return []
    return [f"incidents: {', '.join(parts)}"]


def _trace_roots(
    spans: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Root span per trace id (the request-scoped exemplar anchors).

    A root is a span whose parent is absent from its own trace — the
    router's ``router/solve`` span normally, or the replica's
    ``serving/request`` when only replica traces survived.
    """
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        trace_id = span.get("trace_id")
        if trace_id:
            by_trace.setdefault(trace_id, []).append(span)
    roots = []
    for trace_id, members in by_trace.items():
        ids = {span.get("span_id") for span in members}
        candidates = [
            span for span in members if span.get("parent_id") not in ids
        ]
        if not candidates:
            continue
        root = max(
            candidates, key=lambda s: float(s.get("duration_seconds", 0.0))
        )
        root = dict(root)
        root["_trace_spans"] = sorted(
            members,
            key=lambda s: -float(s.get("duration_seconds", 0.0)),
        )
        roots.append(root)
    return roots


def _slowest_trace_lines(
    spans: List[Dict[str, Any]], limit: int = 5
) -> List[str]:
    """Render the slowest end-to-end traces with per-span breakdowns."""
    roots = sorted(
        _trace_roots(spans),
        key=lambda s: -float(s.get("duration_seconds", 0.0)),
    )[:limit]
    if not roots:
        return ["  (no request-scoped traces recorded)"]
    lines = []
    for root in roots:
        lines.append(
            f"  {root.get('trace_id')}  "
            f"{_fmt_seconds(float(root.get('duration_seconds', 0.0)))}  "
            f"root={root.get('name')} status={root.get('status', '?')}"
        )
        for span in root["_trace_spans"][:8]:
            if span.get("span_id") == root.get("span_id"):
                continue
            lines.append(
                f"    {_fmt_seconds(float(span.get('duration_seconds', 0.0))):>10}"
                f"  {span.get('name')}"
                + (
                    f" [{span.get('status')}]"
                    if span.get("status") != "ok"
                    else ""
                )
            )
    return lines


def _cluster_topology_lines(manifest: Optional[Dict[str, Any]]) -> List[str]:
    """Render the cluster topology block from the cluster manifest."""
    if not manifest:
        return ["  (no cluster manifest found)"]
    config = manifest.get("config") or {}
    lines = [
        f"  started: {manifest.get('created_at', '?')}  "
        f"router: {config.get('router_host', '?')}:"
        f"{config.get('router_port', '?')}"
    ]
    for replica in config.get("replicas") or []:
        scenarios = ",".join(replica.get("scenarios") or [])
        lines.append(
            f"  replica {replica.get('replica_id', '?')}: "
            f"port={replica.get('port', '?')} "
            f"workers={replica.get('workers', '?')} "
            f"scenarios=[{scenarios}]"
        )
    return lines


def render_cluster_report(rundir: str) -> str:
    """Stitch a cluster run directory into one rendered report.

    Backs ``python -m repro report --cluster RUNDIR``. Reads whatever
    the run left behind — ``cluster.manifest.json`` (topology),
    ``events.jsonl`` plus per-replica ``*.events.jsonl`` (lifecycle
    timeline), ``*.trace.jsonl`` from the router and every replica
    incarnation (phase timings and slowest-trace exemplars), and
    ``cluster.metrics.json`` (the final fleet aggregation) — and
    tolerates any subset being absent, since a SIGKILL'd replica never
    writes its final dumps. Raises
    :class:`~repro.errors.ObservabilityError` when the directory has no
    cluster artifacts at all.
    """
    if not os.path.isdir(rundir):
        raise ObservabilityError(f"{rundir!r} is not a run directory")
    manifest_path = os.path.join(rundir, "cluster.manifest.json")
    manifest = None
    if os.path.exists(manifest_path):
        manifest = load_manifest(manifest_path)
    event_paths = sorted(glob.glob(os.path.join(rundir, "*.events.jsonl")))
    top_journal = os.path.join(rundir, "events.jsonl")
    if os.path.exists(top_journal):
        event_paths.insert(0, top_journal)
    events = merge_event_logs(event_paths)
    trace_paths = sorted(glob.glob(os.path.join(rundir, "*.trace.jsonl")))
    spans: List[Dict[str, Any]] = []
    for path in trace_paths:
        spans.extend(
            r for r in read_jsonl(path) if r.get("type") == "span"
        )
    metrics_path = os.path.join(rundir, "cluster.metrics.json")
    aggregation = None
    if os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as handle:
            aggregation = json.load(handle)
    if manifest is None and not events and not spans and aggregation is None:
        raise ObservabilityError(
            f"{rundir!r} contains no cluster observability artifacts "
            "(expected cluster.manifest.json, events.jsonl, *.trace.jsonl "
            "or cluster.metrics.json)"
        )
    lines = [f"cluster run: {rundir}", "topology:"]
    lines.extend(_cluster_topology_lines(manifest))
    lines.extend(_event_summary_lines(events))
    lines.append(f"timeline: {len(events)} events")
    lines.extend(_event_lines(events))
    lines.append(
        f"phase timings: {len(spans)} spans from "
        f"{len(trace_paths)} trace file(s)"
    )
    lines.extend(_timing_lines(phase_timings(spans)))
    lines.append("slowest traces:")
    lines.extend(_slowest_trace_lines(spans))
    if aggregation is not None:
        snapshot = aggregation.get("snapshot") or aggregation
        replicas = aggregation.get("replicas") or {}
        lines.append(
            f"fleet metrics (aggregated over {len(replicas)} replica "
            f"scrape(s)):"
        )
        lines.extend(_metrics_lines(snapshot))
    return "\n".join(lines)


def render_report(path: str) -> str:
    """Render whatever observability artifact lives at ``path``.

    Detects the format: a JSON document stamped ``repro-run-manifest/1``
    is rendered as a manifest; JSONL whose records are all typed
    ``counter``/``gauge``/``histogram`` entries is rendered as a metrics
    dump (bucket tables included); any other parseable JSONL is rendered
    as a span trace. Raises
    :class:`~repro.errors.ObservabilityError` when the file is none of
    those.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.read(4096)
    except OSError as exc:
        raise ObservabilityError(f"cannot read {path!r}: {exc}") from exc
    # A manifest is a single pretty-printed JSON document (its schema
    # stamp may sit past any fixed head-read once large blocks sort
    # before "schema"); JSONL artifacts are one object per line, so a
    # bare "{" first line is unambiguous.
    if MANIFEST_SCHEMA in head or head.lstrip().startswith("{\n"):
        try:
            return render_manifest(load_manifest(path))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path!r} looks like a manifest but is not valid JSON: "
                f"{exc}"
            ) from exc
    try:
        records = read_jsonl(path)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"{path!r} is neither a run manifest, a metrics dump, nor "
            f"a JSONL trace"
        ) from exc
    if records and all(
        isinstance(r, dict) and r.get("type") in _METRIC_RECORD_TYPES
        for r in records
    ):
        return render_metrics(records)
    return render_trace(records)
