"""Human-readable rendering of manifests, traces and metrics dumps.

Backs ``python -m repro report <file>``: point it at a run manifest
(``*.manifest.json``), a raw span trace (``*.jsonl``) or a metrics dump
(the ``--metrics-out`` JSONL of typed counter/gauge/histogram records)
and it prints a plain-text summary — environment, per-phase timing
table, counters, gauges, histogram bucket tables, and (for monitored
runs) the estimator-quality block with its convergence-trajectory
sparkline. Pure string formatting, no dependencies beyond the standard
library.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import ObservabilityError
from repro.obs.manifest import MANIFEST_SCHEMA, load_manifest
from repro.obs.sinks import read_jsonl
from repro.obs.tracer import phase_timings


def _fmt_seconds(value: float) -> str:
    """Compact duration formatting for the timing table."""
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _timing_lines(phases: Dict[str, Dict[str, Any]]) -> List[str]:
    """Render a phase-timings dict as aligned table rows."""
    if not phases:
        return ["  (no spans recorded)"]
    width = max(len(name) for name in phases)
    lines = [
        f"  {'phase'.ljust(width)}  {'count':>6}  {'total':>10}  "
        f"{'mean':>10}  {'max':>10}  errors"
    ]
    ordered = sorted(
        phases.items(), key=lambda item: -item[1]["total_seconds"]
    )
    for name, entry in ordered:
        mean = entry["total_seconds"] / max(entry["count"], 1)
        lines.append(
            f"  {name.ljust(width)}  {entry['count']:>6}  "
            f"{_fmt_seconds(entry['total_seconds']):>10}  "
            f"{_fmt_seconds(mean):>10}  "
            f"{_fmt_seconds(entry['max_seconds']):>10}  "
            f"{entry['errors']}"
        )
    return lines


#: Glyph ramp for text sparklines, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _sparkline(values: List[float]) -> str:
    """Render ``values`` as a fixed-height unicode sparkline."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_GLYPHS[0] * len(values)
    span = hi - lo
    top = len(SPARK_GLYPHS) - 1
    return "".join(
        SPARK_GLYPHS[min(top, int((v - lo) / span * top + 0.5))]
        for v in values
    )


def _fmt_edge(value: Any) -> str:
    """Bucket-edge label: integral edges print without the .0."""
    number = float(value)
    if number == int(number):
        return str(int(number))
    return f"{number:g}"


def _histogram_lines(name: str, hist: Dict[str, Any]) -> List[str]:
    """Render one histogram as a per-bucket table with a bar column."""
    count = hist.get("count", 0)
    total = hist.get("sum", 0.0)
    mean = total / count if count else 0.0
    lines = [f"  {name}: count={count} sum={total:.6g} mean={mean:.6g}"]
    edges = list(hist.get("buckets") or [])
    counts = list(hist.get("counts") or [])
    if not edges or not counts or not count:
        return lines
    labels = [f"<= {_fmt_edge(edge)}" for edge in edges]
    if len(counts) > len(edges):
        labels.append(f"> {_fmt_edge(edges[-1])}")
    width = max(len(label) for label in labels)
    peak = max(counts)
    for label, bucket_count in zip(labels, counts):
        bar = "█" * round(bucket_count / peak * 20) if peak else ""
        lines.append(
            f"    {label.rjust(width)}  {bucket_count:>8}  {bar}"
        )
    return lines


def _metrics_lines(snapshot: Dict[str, Any]) -> List[str]:
    """Render a metrics snapshot (counters/gauges/histograms)."""
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name} = {gauges[name]}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            lines.extend(_histogram_lines(name, histograms[name]))
    if not lines:
        lines.append("(no metrics recorded)")
    return lines


def _estimator_lines(block: Dict[str, Any]) -> List[str]:
    """Render a manifest ``estimator`` block (ConvergenceMonitor
    summary): final statistics, the ĉ(S)-vs-samples trajectory as a
    sparkline plus table, the most-activated communities and the pool
    composition line."""
    lines = ["estimator:"]
    mean = block.get("mean")
    halfwidth = block.get("halfwidth")
    relative = block.get("relative_width")
    parts = []
    if mean is not None:
        parts.append(f"ĉ(S) = {mean:.6g}")
    if halfwidth is not None:
        parts.append(f"± {halfwidth:.4g}")
    if relative is not None:
        parts.append(f"(relative width {relative:.4g})")
    if parts:
        lines.append("  " + " ".join(parts))
    criterion = block.get("criterion")
    status = "converged" if block.get("converged") else "not converged"
    if criterion:
        lines.append(
            f"  stopping rule: relative width <= {criterion.get('ci_width')} "
            f"after >= {criterion.get('min_samples')} samples "
            f"({criterion.get('method')}, delta={criterion.get('delta')}) "
            f"— {status}"
        )
    lines.append(
        f"  samples used: {block.get('samples', 0)} over "
        f"{block.get('stages', 0)} stage(s)"
    )
    trajectory = block.get("trajectory") or []
    if trajectory:
        estimates = [point.get("estimate", 0.0) for point in trajectory]
        lines.append(f"  trajectory: {_sparkline(estimates)}")
        lines.append(
            f"    {'samples':>10}  {'ĉ(S)':>12}  {'halfwidth':>10}  "
            f"{'rel.width':>10}"
        )
        for point in trajectory:
            rel = point.get("relative_width")
            lines.append(
                f"    {point.get('samples', 0):>10}  "
                f"{point.get('estimate', 0.0):>12.6g}  "
                f"{point.get('halfwidth', 0.0):>10.4g}  "
                f"{(f'{rel:.4g}' if rel is not None else '—'):>10}"
            )
    trials = block.get("estimate_trials")
    if trials:
        lines.append(
            f"  cross-check trials: {trials.get('count', 0)} "
            f"(mean {trials.get('mean', 0.0):.4g}, "
            f"std {trials.get('std', 0.0):.4g})"
        )
    communities = block.get("communities") or {}
    if communities:
        ranked = sorted(
            communities.items(),
            key=lambda item: -item[1].get("rate", 0.0),
        )[:5]
        rendered = ", ".join(
            f"{index}: {entry.get('rate', 0.0):.3f} "
            f"({entry.get('influenced', 0)}/{entry.get('seen', 0)})"
            for index, entry in ranked
        )
        lines.append(f"  top community activation: {rendered}")
    pool = block.get("pool") or {}
    if pool:
        lines.append(
            f"  pool: {pool.get('samples', 0)} samples, "
            f"{pool.get('unique_reach_sets', 0)}/"
            f"{pool.get('reach_sets', 0)} distinct reach sets "
            f"(ratio {pool.get('unique_ratio', 0.0):.3f}), "
            f"~{pool.get('bytes', 0)} bytes"
        )
    return lines


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Render a loaded manifest document as a plain-text report."""
    env = manifest.get("environment") or {}
    lines = [
        f"run {manifest.get('run_id', '?')} — "
        f"command: {manifest.get('command', '?')}",
        f"created: {manifest.get('created_at', '?')}",
        f"config hash: {manifest.get('config_hash', '?')}",
        "environment:",
        f"  git: {env.get('git_sha') or 'unknown'}"
        + (" (dirty)" if env.get("git_dirty") else ""),
        f"  python: {env.get('python', '?')} "
        f"({env.get('implementation', '?')}) on "
        f"{env.get('platform', '?')}",
    ]
    seeds = manifest.get("seeds") or {}
    if seeds:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(seeds.items()))
        lines.append(f"seeds: {pairs}")
    artifacts = manifest.get("artifacts") or {}
    if artifacts:
        lines.append("artifacts:")
        for label in sorted(artifacts):
            lines.append(f"  {label}: {artifacts[label]}")
    lines.append("phase timings:")
    lines.extend(_timing_lines(manifest.get("phase_timings") or {}))
    lines.extend(_metrics_lines(manifest.get("metrics") or {}))
    estimator = manifest.get("estimator")
    if estimator:
        lines.extend(_estimator_lines(estimator))
    return "\n".join(lines)


def render_trace(records: List[Dict[str, Any]]) -> str:
    """Render raw span records (a trace JSONL) as a timing report."""
    spans = [r for r in records if r.get("type") == "span"]
    lines = [f"trace: {len(spans)} spans", "phase timings:"]
    lines.extend(_timing_lines(phase_timings(spans)))
    return "\n".join(lines)


_METRIC_RECORD_TYPES = {"counter", "gauge", "histogram"}


def render_metrics(records: List[Dict[str, Any]]) -> str:
    """Render a metrics dump (the ``--metrics-out`` JSONL of typed
    counter/gauge/histogram records, or a raw snapshot dict) including
    per-bucket histogram tables."""
    if isinstance(records, dict):
        snapshot: Dict[str, Any] = records
    else:
        snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
        for record in records:
            kind = record.get("type")
            name = record.get("name", "?")
            if kind == "counter":
                snapshot["counters"][name] = record.get("value")
            elif kind == "gauge":
                snapshot["gauges"][name] = record.get("value")
            elif kind == "histogram":
                snapshot["histograms"][name] = {
                    key: record.get(key)
                    for key in ("buckets", "counts", "count", "sum")
                }
    total = (
        len(snapshot["counters"])
        + len(snapshot["gauges"])
        + len(snapshot["histograms"])
    )
    lines = [f"metrics: {total} series"]
    lines.extend(_metrics_lines(snapshot))
    return "\n".join(lines)


def render_report(path: str) -> str:
    """Render whatever observability artifact lives at ``path``.

    Detects the format: a JSON document stamped ``repro-run-manifest/1``
    is rendered as a manifest; JSONL whose records are all typed
    ``counter``/``gauge``/``histogram`` entries is rendered as a metrics
    dump (bucket tables included); any other parseable JSONL is rendered
    as a span trace. Raises
    :class:`~repro.errors.ObservabilityError` when the file is none of
    those.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.read(4096)
    except OSError as exc:
        raise ObservabilityError(f"cannot read {path!r}: {exc}") from exc
    # A manifest is a single pretty-printed JSON document (its schema
    # stamp may sit past any fixed head-read once large blocks sort
    # before "schema"); JSONL artifacts are one object per line, so a
    # bare "{" first line is unambiguous.
    if MANIFEST_SCHEMA in head or head.lstrip().startswith("{\n"):
        try:
            return render_manifest(load_manifest(path))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path!r} looks like a manifest but is not valid JSON: "
                f"{exc}"
            ) from exc
    try:
        records = read_jsonl(path)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"{path!r} is neither a run manifest, a metrics dump, nor "
            f"a JSONL trace"
        ) from exc
    if records and all(
        isinstance(r, dict) and r.get("type") in _METRIC_RECORD_TYPES
        for r in records
    ):
        return render_metrics(records)
    return render_trace(records)
