"""Human-readable rendering of manifests and trace files.

Backs ``python -m repro report <file>``: point it at a run manifest
(``*.manifest.json``) or a raw span trace (``*.jsonl``) and it prints a
plain-text summary — environment, per-phase timing table, counters,
gauges and histograms. Pure string formatting, no dependencies beyond
the standard library.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import ObservabilityError
from repro.obs.manifest import MANIFEST_SCHEMA, load_manifest
from repro.obs.sinks import read_jsonl
from repro.obs.tracer import phase_timings


def _fmt_seconds(value: float) -> str:
    """Compact duration formatting for the timing table."""
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _timing_lines(phases: Dict[str, Dict[str, Any]]) -> List[str]:
    """Render a phase-timings dict as aligned table rows."""
    if not phases:
        return ["  (no spans recorded)"]
    width = max(len(name) for name in phases)
    lines = [
        f"  {'phase'.ljust(width)}  {'count':>6}  {'total':>10}  "
        f"{'mean':>10}  {'max':>10}  errors"
    ]
    ordered = sorted(
        phases.items(), key=lambda item: -item[1]["total_seconds"]
    )
    for name, entry in ordered:
        mean = entry["total_seconds"] / max(entry["count"], 1)
        lines.append(
            f"  {name.ljust(width)}  {entry['count']:>6}  "
            f"{_fmt_seconds(entry['total_seconds']):>10}  "
            f"{_fmt_seconds(mean):>10}  "
            f"{_fmt_seconds(entry['max_seconds']):>10}  "
            f"{entry['errors']}"
        )
    return lines


def _metrics_lines(snapshot: Dict[str, Any]) -> List[str]:
    """Render a metrics snapshot (counters/gauges/histograms)."""
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name} = {gauges[name]}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist.get("count", 0)
            total = hist.get("sum", 0.0)
            mean = total / count if count else 0.0
            lines.append(
                f"  {name}: count={count} sum={total:.6g} mean={mean:.6g}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return lines


def render_manifest(manifest: Dict[str, Any]) -> str:
    """Render a loaded manifest document as a plain-text report."""
    env = manifest.get("environment") or {}
    lines = [
        f"run {manifest.get('run_id', '?')} — "
        f"command: {manifest.get('command', '?')}",
        f"created: {manifest.get('created_at', '?')}",
        f"config hash: {manifest.get('config_hash', '?')}",
        "environment:",
        f"  git: {env.get('git_sha') or 'unknown'}"
        + (" (dirty)" if env.get("git_dirty") else ""),
        f"  python: {env.get('python', '?')} "
        f"({env.get('implementation', '?')}) on "
        f"{env.get('platform', '?')}",
    ]
    seeds = manifest.get("seeds") or {}
    if seeds:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(seeds.items()))
        lines.append(f"seeds: {pairs}")
    artifacts = manifest.get("artifacts") or {}
    if artifacts:
        lines.append("artifacts:")
        for label in sorted(artifacts):
            lines.append(f"  {label}: {artifacts[label]}")
    lines.append("phase timings:")
    lines.extend(_timing_lines(manifest.get("phase_timings") or {}))
    lines.extend(_metrics_lines(manifest.get("metrics") or {}))
    return "\n".join(lines)


def render_trace(records: List[Dict[str, Any]]) -> str:
    """Render raw span records (a trace JSONL) as a timing report."""
    spans = [r for r in records if r.get("type") == "span"]
    lines = [f"trace: {len(spans)} spans", "phase timings:"]
    lines.extend(_timing_lines(phase_timings(spans)))
    return "\n".join(lines)


def render_report(path: str) -> str:
    """Render whatever observability artifact lives at ``path``.

    Detects the format: a JSON document stamped ``repro-run-manifest/1``
    is rendered as a manifest; anything else parseable as JSONL is
    rendered as a span trace. Raises
    :class:`~repro.errors.ObservabilityError` when the file is neither.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.read(4096)
    except OSError as exc:
        raise ObservabilityError(f"cannot read {path!r}: {exc}") from exc
    if MANIFEST_SCHEMA in head:
        try:
            return render_manifest(load_manifest(path))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path!r} looks like a manifest but is not valid JSON: "
                f"{exc}"
            ) from exc
    try:
        records = read_jsonl(path)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"{path!r} is neither a run manifest nor a JSONL trace"
        ) from exc
    return render_trace(records)
