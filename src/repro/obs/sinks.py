"""JSONL sinks for traces and metrics.

Two write disciplines, matched to the artifact:

- :class:`JsonlSink` *streams*: one line per record, flushed as
  written, so a crashed run leaves a readable prefix (the same
  torn-tail-tolerant JSONL convention the checkpoint store uses).
- :func:`write_jsonl` writes a whole record list *atomically* (sibling
  temp file, ``fsync``, ``os.replace``) — used for end-of-run artifacts
  like the metrics dump, where a half-written file is worse than none.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Optional


class JsonlSink:
    """Append-as-you-go JSONL writer (one JSON object per line).

    Opens ``path`` for writing immediately; each :meth:`write` emits one
    line and flushes, so the file is always a valid JSONL prefix of the
    records emitted so far. Usable as a context manager.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._handle: Optional[Any] = open(  # noqa: SIM115 - long-lived
            self.path, "w", encoding="utf-8"
        )

    def write(self, record: Dict[str, Any]) -> None:
        """Serialise ``record`` as one JSONL line and flush."""
        if self._handle is None:
            raise ValueError(f"sink {self.path!r} is closed")
        self._handle.write(json.dumps(record, sort_keys=True, default=str))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_jsonl(path: str, records: Iterable[Dict[str, Any]]) -> str:
    """Write ``records`` to ``path`` as JSONL, atomically.

    The records go to a sibling ``<path>.tmp`` first, are ``fsync``-ed,
    then ``os.replace``-d over ``path`` — a crash cannot leave a torn
    file. Returns ``path``.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically (same tmp/fsync/replace
    discipline as :func:`write_jsonl`). Used for non-JSONL end-of-run
    artifacts like the Prometheus metrics export. Returns ``path``.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_jsonl(path: str) -> list:
    """Read a JSONL file back into a list of records.

    Safe against a *live* :class:`JsonlSink` writer appending to the
    same file (a server reading its own sinks for ``/status``): a final
    line with no terminating newline is an in-flight partial flush and
    is skipped **without being parsed** — a flush boundary can land
    anywhere inside a record, and a partial line must never be promoted
    to a record just because its prefix happens to parse. A terminated
    but malformed final line is also tolerated (crash-mid-write
    signature, same convention as the checkpoint store) and dropped;
    malformed earlier lines raise ``json.JSONDecodeError``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    lines = text.splitlines()
    if lines and not text.endswith("\n"):
        # In-flight tail: the writer has not finished this line. Do not
        # attempt to parse it — skip it; a later read sees it complete.
        lines.pop()
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines):
                break
            raise
    return records
