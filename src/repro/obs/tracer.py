"""Span-based tracer: nested, exception-safe, process-portable.

A *span* is one named, timed phase of work::

    from repro.obs import trace

    with trace.span("imc/select", k=k) as span:
        seeds = run_selection()
        span.set(num_seeds=len(seeds))

Spans nest: each thread keeps a stack of open spans, and a span opened
while another is active records it as its parent, so the finished
records form a tree (``parent_id`` links). Durations come from
``time.perf_counter()`` (monotonic); a wall-clock stamp is kept per
span purely for human correlation. Span IDs embed the process id plus a
process-global counter, so IDs minted concurrently in several threads —
or in parallel-sampling worker *processes* — never collide and worker
spans can be shipped back to the master and :meth:`Tracer.ingest`-ed
into its trace.

When instrumentation is disabled (the default), :meth:`Tracer.span`
returns a shared no-op span: no allocation beyond the kwargs dict, no
locking, no recording — cheap enough to leave in hot paths.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional

from repro.obs import _gate

#: HTTP header carrying the trace id across the router -> replica hop.
TRACE_HEADER = "X-Repro-Trace-Id"

#: HTTP header carrying the sender's open span id, which becomes the
#: parent of the receiver's root span.
PARENT_HEADER = "X-Repro-Parent-Span"

#: Every span name the codebase may emit, with a one-line meaning.
#: ``scripts/check_span_names.py`` lints literal-name span call sites
#: against this catalogue (both directions), and
#: ``tests/test_docs_consistency.py`` checks each name is documented.
SPAN_CATALOG: Dict[str, str] = {
    "ric/sample_many": "draw a batch of RIC samples (serial or fan-out)",
    "ric/worker_batch": "one parallel-sampling worker's slice of a batch",
    "imc/select": "IMC seed selection (solver dispatch)",
    "imc/evaluate": "IMC objective evaluation of a fixed seed set",
    "imc/estimate": "sample-average objective estimate",
    "ubg/nu_arm": "UBG nu-greedy arm (node-greedy candidate)",
    "ubg/c_arm": "UBG c-greedy arm (community-greedy candidate)",
    "greedyc/select": "community-greedy baseline selection",
    "maf/s1_communities": "MAF stage 1: community budget allocation",
    "maf/s2_nodes": "MAF stage 2: in-community node selection",
    "bt/select": "BT (benefit-threshold) baseline selection",
    "mb/maf_arm": "MB arm running MAF",
    "mb/bt_arm": "MB arm running BT",
    "experiment/run_algorithm": "one algorithm run inside an experiment",
    "experiment/evaluate": "common-pool evaluation of one algorithm's seeds",
    "campaign/cell": "one (dataset, scale, algorithm) campaign cell",
    "checkpoint/record": "campaign checkpoint write",
    "bench/sampling": "sampling benchmark lane",
    "bench/engine": "engine benchmark lane",
    "router/solve": "router-side request span (one client /solve)",
    "router/forward": "one forward attempt to a replica (failover = siblings)",
    "serving/request": "replica-side request span (adopted trace context)",
    "serving/compute": "batch leader's shard solve (warm + solve + cache)",
    "serving/resolve": "follower re-solve after an unsatisfying coalesced width",
    "serving/topup": "shard pool top-up merge rounds toward a CI-width target",
}

#: Process-global span-id counter (``itertools.count`` increments
#: atomically under the GIL, so no lock is needed).
_SPAN_IDS = itertools.count(1)

_STACKS = threading.local()


class TraceContext(NamedTuple):
    """Cross-process trace context adopted by a thread.

    ``trace_id`` groups every span of one client request across the
    router and replica processes; ``parent_span_id`` is the sender's
    open span, which re-parents the receiver's root spans.
    """

    trace_id: str
    parent_span_id: Optional[str]


def new_trace_id() -> str:
    """Mint a fleet-unique trace id (32 hex chars)."""
    return uuid.uuid4().hex


def _context() -> Optional[TraceContext]:
    return getattr(_STACKS, "context", None)


def _stack() -> List[str]:
    """This thread's stack of open span ids."""
    stack = getattr(_STACKS, "stack", None)
    if stack is None:
        stack = []
        _STACKS.stack = stack
    return stack


def _new_span_id() -> str:
    """A span id unique across threads *and* processes.

    Format ``"<pid-hex>.<counter-hex>"`` — the pid component is what
    keeps ids from parallel-sampling workers distinct from the
    master's, so shipped-back spans can be merged without collisions.
    """
    return f"{os.getpid():x}.{next(_SPAN_IDS):x}"


class Span:
    """One live span; use as a context manager (``with trace.span(...)``).

    On exit the span appends a finished-span record (a plain dict, JSON
    serialisable) to its tracer. Exceptions propagate unchanged — the
    record's ``status`` becomes ``"error"`` and ``error`` holds the
    exception's type and message, so a trace of a failed run shows
    exactly which phase died.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_tracer",
                 "_t0", "_wall")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = _new_span_id()
        self.parent_id: Optional[str] = None
        self._tracer = tracer
        self._t0 = 0.0
        self._wall = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Merge extra attributes into the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self.parent_id = stack[-1]
        else:
            # A thread-root span re-parents under an adopted remote
            # context, so replica spans hang off the router's forward
            # span exactly like ingested worker spans hang off the
            # dispatch span.
            context = _context()
            self.parent_id = context.parent_span_id if context else None
        stack.append(self.span_id)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = _stack()
        # Exception-safe unwind: pop our own id even if inner spans
        # leaked (they cannot via the context-manager protocol, but a
        # defensive pop keeps one bug from corrupting the whole stack).
        while stack and stack[-1] != self.span_id:
            stack.pop()
        if stack:
            stack.pop()
        record: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "thread": threading.get_ident(),
            "wall_start": self._wall,
            "duration_seconds": duration,
            "status": "ok" if exc_type is None else "error",
            "attrs": self.attrs,
        }
        context = _context()
        if context is not None:
            record["trace_id"] = context.trace_id
        if exc_type is not None:
            record["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._record(record)
        return False  # never swallow exceptions


class _NoopSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        """Ignore attributes (chainable, like :meth:`Span.set`)."""
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished-span records; the module exposes one instance
    as :data:`repro.obs.trace`.

    Records accumulate in memory (thread-safe) and, when a sink is
    attached by the session layer, stream to a JSONL file as each span
    closes — so a crashed run still leaves a readable trace prefix.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._sink = None  # duck-typed: needs .write(record)

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span named ``name`` with initial attributes ``attrs``.

        Returns the shared no-op span when instrumentation is disabled;
        use as ``with trace.span("ric/sample_many", samples=n):``.
        """
        if not _gate.active:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def current_span_id(self) -> Optional[str]:
        """Id of this thread's innermost open span (``None`` outside)."""
        stack = _stack()
        return stack[-1] if stack else None

    # -- cross-process trace context -----------------------------------

    @contextmanager
    def context(self, trace_id: Optional[str],
                parent_span_id: Optional[str] = None) -> Iterator[None]:
        """Adopt a cross-process trace context on this thread.

        While active, every finished span records ``trace_id`` and
        thread-root spans parent under ``parent_span_id`` — the HTTP
        analogue of :meth:`ingest`'s re-parenting. Contexts nest
        (restored on exit) and ``trace_id=None`` is a no-op, so call
        sites can pass an optional inbound header straight through.
        Adoption itself is not gated: it only changes what spans record,
        and spans are already no-ops while instrumentation is off.
        """
        if trace_id is None:
            yield
            return
        previous = _context()
        _STACKS.context = TraceContext(trace_id, parent_span_id)
        try:
            yield
        finally:
            _STACKS.context = previous

    def current_context(self) -> Optional[TraceContext]:
        """This thread's adopted trace context, if any."""
        return _context()

    def propagation_headers(self) -> Dict[str, str]:
        """Headers to attach to an outbound hop from this thread.

        Carries the adopted trace id plus the innermost open span id as
        the remote parent. Empty when no context is adopted.
        """
        context = _context()
        if context is None:
            return {}
        headers = {TRACE_HEADER: context.trace_id}
        span_id = self.current_span_id()
        if span_id is None:
            span_id = context.parent_span_id
        if span_id is not None:
            headers[PARENT_HEADER] = span_id
        return headers

    def _record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)
            if self._sink is not None:
                self._sink.write(record)

    def ingest(self, records: Iterable[Dict[str, Any]],
               parent_id: Optional[str] = None) -> None:
        """Merge finished-span records produced elsewhere (e.g. shipped
        back from a parallel-sampling worker with its batch results).

        Root records (``parent_id is None``) are re-parented under
        ``parent_id`` — defaulting to the ingesting thread's current
        open span — so worker spans hang off the dispatch span that
        shipped their batch. No-op while instrumentation is disabled.
        """
        if not _gate.active:
            return
        if parent_id is None:
            parent_id = self.current_span_id()
        context = _context()
        for record in records:
            if record.get("parent_id") is None and parent_id is not None:
                record = dict(record)
                record["parent_id"] = parent_id
            if context is not None and "trace_id" not in record:
                record = dict(record)
                record["trace_id"] = context.trace_id
            self._record(record)

    # -- capture (worker-side) -----------------------------------------

    @contextmanager
    def capture(self) -> Iterator[List[Dict[str, Any]]]:
        """Record spans into a private buffer, regardless of the global
        enabled flag, and yield that buffer.

        Used inside parallel-sampling worker processes: the worker has
        no session of its own, so it captures its batch spans locally
        and returns them with the batch for the master to
        :meth:`ingest`. Restores the previous recording state on exit.
        """
        with self._lock:
            previous_records, self._records = self._records, []
            previous_sink, self._sink = self._sink, None
        previous_active = _gate.active
        _gate.active = True
        try:
            yield self._records
        finally:
            _gate.active = previous_active
            with self._lock:
                self._records = previous_records
                self._sink = previous_sink

    # -- inspection / lifecycle ----------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        """Copy of all finished-span records collected so far."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        """Drop all collected records (sinks are left attached)."""
        with self._lock:
            self._records.clear()

    def attach_sink(self, sink) -> None:
        """Stream every subsequently finished span to ``sink.write``."""
        with self._lock:
            self._sink = sink

    def detach_sink(self) -> None:
        """Stop streaming spans to the attached sink, if any."""
        with self._lock:
            self._sink = None


def phase_timings(
    records: Iterable[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Aggregate finished-span records into per-name phase timings.

    Returns ``{span_name: {count, total_seconds, min_seconds,
    max_seconds, errors}}`` — the summary embedded in run manifests and
    printed by ``python -m repro report``.
    """
    phases: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        name = record["name"]
        duration = float(record.get("duration_seconds", 0.0))
        entry = phases.get(name)
        if entry is None:
            entry = phases[name] = {
                "count": 0,
                "total_seconds": 0.0,
                "min_seconds": duration,
                "max_seconds": duration,
                "errors": 0,
            }
        entry["count"] += 1
        entry["total_seconds"] += duration
        entry["min_seconds"] = min(entry["min_seconds"], duration)
        entry["max_seconds"] = max(entry["max_seconds"], duration)
        if record.get("status") == "error":
            entry["errors"] += 1
    return phases


#: The process-wide tracer instance every instrumented module imports.
trace = Tracer()
