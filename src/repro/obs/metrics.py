"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Names are dotted paths grouped by subsystem (see
``docs/observability.md`` for the registry of names this package
emits), e.g. ``ric.samples.generated``, ``coverage.resyncs``,
``heap.compactions``, ``parallel.batches.redispatched``,
``deadline.truncated``.

All mutators are no-ops while instrumentation is disabled (the
default), so call sites can stay in place permanently. Histograms use
*fixed* bucket edges chosen at first observation — cumulative-style
counts per upper edge plus an overflow bucket — so two runs of the same
workload produce directly comparable distributions.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.obs import _gate

#: Default histogram bucket upper edges, in seconds — spans the range
#: from sub-millisecond kernel calls to minutes-long campaign cells.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)


class MetricsRegistry:
    """Thread-safe registry; the module exposes one instance as
    :data:`repro.obs.metrics`.

    Counters only go up (per run), gauges hold the last value set, and
    histograms count observations into fixed buckets. :meth:`snapshot`
    returns a JSON-ready dict; :meth:`reset` clears everything for the
    next run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        # name -> (edges, per-bucket counts [+1 overflow], total, sum)
        self._histograms: Dict[str, Dict[str, Any]] = {}

    # -- mutators (no-ops while disabled) ------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``."""
        if not _gate.active:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not _gate.active:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        """Count ``value`` into histogram ``name``.

        ``buckets`` (ascending upper edges) is honoured only on the
        histogram's *first* observation; later calls reuse the fixed
        edges so the distribution stays comparable within the run.
        """
        if not _gate.active:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                edges = tuple(buckets) if buckets else DEFAULT_TIME_BUCKETS
                if list(edges) != sorted(edges):
                    raise ValueError(
                        f"histogram {name!r} bucket edges must ascend: "
                        f"{edges}"
                    )
                hist = self._histograms[name] = {
                    "buckets": edges,
                    "counts": [0] * (len(edges) + 1),
                    "count": 0,
                    "sum": 0.0,
                }
            hist["counts"][bisect.bisect_left(hist["buckets"], value)] += 1
            hist["count"] += 1
            hist["sum"] += value

    # -- inspection ----------------------------------------------------

    def get_counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never touched)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready copy: ``{"counters", "gauges", "histograms"}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "buckets": list(hist["buckets"]),
                        "counts": list(hist["counts"]),
                        "count": hist["count"],
                        "sum": hist["sum"],
                    }
                    for name, hist in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Clear all counters, gauges and histograms."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry instance every instrumented module imports.
metrics = MetricsRegistry()
