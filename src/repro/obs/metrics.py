"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Names are dotted paths grouped by subsystem (see
``docs/observability.md`` for the registry of names this package
emits), e.g. ``ric.samples.generated``, ``coverage.resyncs``,
``heap.compactions``, ``parallel.batches.redispatched``,
``deadline.truncated``.

All mutators are no-ops while instrumentation is disabled (the
default), so call sites can stay in place permanently. Histograms use
*fixed* bucket edges chosen at first observation — cumulative-style
counts per upper edge plus an overflow bucket — so two runs of the same
workload produce directly comparable distributions.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.obs import _gate

#: Default histogram bucket upper edges, in seconds — spans the range
#: from sub-millisecond kernel calls to minutes-long campaign cells.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

#: Catalogue of every metric name the package emits, mapped to a
#: one-line description. ``scripts/check_metric_names.py`` greps ``src/``
#: for ``inc(``/``set_gauge(``/``observe(`` call sites and fails when a
#: literal name is missing here, and the docs-consistency test requires
#: every catalogued name to appear in ``docs/observability.md`` — so
#: this dict, the code and the docs cannot drift apart. Add the entry
#: *first* when introducing a metric.
CATALOG: Dict[str, str] = {
    # counters
    "ric.samples.generated": "RIC samples generated (both engines)",
    "coverage.resyncs": "coverage-engine rebuilds after pool growth",
    "heap.compactions": "lazy-heap compaction passes",
    "pool.compactions": "pool compact()/interning passes",
    "parallel.batches.redispatched": "parallel batches retried after worker loss",
    "parallel.worker.restarts": "parallel worker processes restarted",
    "deadline.truncated": "runs truncated by an expired deadline",
    "experiment.runs.completed": "experiment repetitions completed",
    "experiment.runs.skipped": "experiment repetitions skipped (resume)",
    "campaign.cells.completed": "campaign grid cells completed",
    "campaign.cells.skipped": "campaign grid cells skipped (resume)",
    "checkpoint.records.written": "checkpoint records appended",
    "estimator.stages": "stop-stage ĉ(S) evaluations observed",
    "estimator.trials.observed": "Algorithm 6 (Dagum) trial draws observed",
    "estimator.adaptive.stops": "adaptive early stops (CI criterion met)",
    "serving.requests.total": "solve requests answered by the shard server",
    "serving.requests.batched": "solve requests coalesced onto another's solve",
    "serving.requests.failed": "solve requests answered with an error",
    "serving.shards.hits": "shard lookups served from a warm shard",
    "serving.shards.misses": "shard lookups that built (or rebuilt) a shard",
    "serving.shards.evictions": "cold shards evicted under the byte budget",
    "serving.requests.width_coalesced": (
        "ci_width requests answered from a shared cross-width top-up"
    ),
    "cluster.replica.restarts": "replica processes respawned by the supervisor",
    "cluster.heartbeat.failures": "replica heartbeat probes that failed",
    "router.requests.total": "solve requests accepted by the cluster router",
    "router.requests.failed": "router requests answered with an error",
    "router.failovers": "requests re-routed to a rendezvous successor",
    "router.circuit.opened": "per-replica circuit breakers tripped open",
    "router.trace.minted": "trace ids minted at the router front door",
    "router.trace.adopted": "inbound trace contexts adopted by the router",
    "serving.trace.adopted": "inbound trace contexts adopted by a replica",
    "cluster.events.recorded": "lifecycle events appended to an event journal",
    # gauges
    "pool.coverage_entries": "inverted-index (sample, member) pairs at last compact()",
    "pool.bytes": "approximate pool memory footprint in bytes",
    "pool.reach.unique_ratio": "distinct reach sets / total reach sets",
    "estimator.mean": "latest stop-stage benefit estimate ĉ(S)",
    "estimator.ci.halfwidth": "latest CI halfwidth of ĉ(S) (benefit units)",
    "estimator.ci.width": "latest relative CI width (halfwidth / ĉ)",
    "estimator.samples.used": "pool samples behind the latest ĉ(S)",
    "serving.shards.active": "warm shards currently resident",
    "serving.shards.bytes": "summed resident shard footprint in bytes",
    "cluster.replicas.active": "replica processes currently healthy",
    "cluster.scrape.replicas": "replicas successfully scraped at last aggregation",
    "cluster.slo.p50.seconds": "fleet p50 request latency from merged histograms",
    "cluster.slo.p95.seconds": "fleet p95 request latency from merged histograms",
    "cluster.slo.p99.seconds": "fleet p99 request latency from merged histograms",
    "cluster.slo.error.rate": "fleet error rate (failed / accepted requests)",
    # histograms
    "pool.reach.histogram": "reach-set size distribution",
    "pool.sources.histogram": "samples-per-source-community distribution",
    "serving.request.seconds": "shard-server solve request latency",
    "router.request.seconds": "router end-to-end solve request latency",
    "serving.batch.wait.seconds": "follower wait for a coalesced flight's leader",
}


class MetricsRegistry:
    """Thread-safe registry; the module exposes one instance as
    :data:`repro.obs.metrics`.

    Counters only go up (per run), gauges hold the last value set, and
    histograms count observations into fixed buckets. :meth:`snapshot`
    returns a JSON-ready dict; :meth:`reset` clears everything for the
    next run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        # name -> (edges, per-bucket counts [+1 overflow], total, sum)
        self._histograms: Dict[str, Dict[str, Any]] = {}

    # -- mutators (no-ops while disabled) ------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to counter ``name``.

        Counters are monotone: a negative ``value`` raises
        ``ValueError`` (use a gauge for values that go down). The gate
        is checked first, so a buggy negative increment on a disabled
        registry stays a silent no-op — exactly as cheap as every other
        disabled mutator — and only trips once instrumentation is on.
        """
        if not _gate.active:
            return
        if value < 0:
            raise ValueError(
                f"counter {name!r} cannot be decremented (got {value}); "
                "counters are monotone — use set_gauge for values that "
                "go down"
            )
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not _gate.active:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        """Count ``value`` into histogram ``name``.

        ``buckets`` (ascending upper edges) is honoured only on the
        histogram's *first* observation; later calls reuse the fixed
        edges so the distribution stays comparable within the run.

        Edges are *upper-inclusive*: a value exactly equal to an edge
        counts in that edge's bucket (Prometheus ``le`` semantics), and
        anything above the last edge lands in the overflow bucket.
        """
        if not _gate.active:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                edges = tuple(buckets) if buckets else DEFAULT_TIME_BUCKETS
                if list(edges) != sorted(edges):
                    raise ValueError(
                        f"histogram {name!r} bucket edges must ascend: "
                        f"{edges}"
                    )
                hist = self._histograms[name] = {
                    "buckets": edges,
                    "counts": [0] * (len(edges) + 1),
                    "count": 0,
                    "sum": 0.0,
                }
            hist["counts"][bisect.bisect_left(hist["buckets"], value)] += 1
            hist["count"] += 1
            hist["sum"] += value

    # -- aggregation ---------------------------------------------------

    def merge_snapshot(self, snapshot: Dict[str, Any],
                       source: Optional[str] = None) -> None:
        """Merge a foreign :meth:`snapshot` document into this registry.

        This is *explicit aggregation* — unlike the mutators it works
        regardless of the instrumentation gate, because the fleet
        aggregator merges scraped replica snapshots into a private
        registry, not the ambient one.

        Merge semantics (the fleet contract, see
        ``docs/observability.md``):

        - **counters** are summed; a negative foreign value is rejected
          with ``ValueError`` (counters are monotone everywhere).
        - **gauges never sum** — summing "last observed value" metrics
          across replicas is meaningless. With ``source=None`` the
          foreign value overwrites (last write wins); with a ``source``
          the gauge is kept apart under the decorated name
          ``name{replica="<source>"}``, which renders as a proper
          Prometheus label.
        - **histograms** merge bucket-wise, which is only sound when
          both sides binned with identical edges — a mismatch (or a
          malformed counts vector) raises ``ValueError`` loudly rather
          than producing a silently wrong distribution.

        Validation runs before any mutation, so a rejected snapshot
        leaves the registry untouched.
        """
        counters = snapshot.get("counters") or {}
        gauges = snapshot.get("gauges") or {}
        histograms = snapshot.get("histograms") or {}
        for name, value in counters.items():
            if value < 0:
                raise ValueError(
                    f"cannot merge negative counter {name!r} "
                    f"(got {value}); counters are monotone"
                )
        with self._lock:
            for name, foreign in histograms.items():
                edges = tuple(foreign.get("buckets", ()))
                counts = list(foreign.get("counts", ()))
                if len(counts) != len(edges) + 1:
                    raise ValueError(
                        f"histogram {name!r} is malformed: {len(edges)} "
                        f"edges need {len(edges) + 1} bucket counts, "
                        f"got {len(counts)}"
                    )
                mine = self._histograms.get(name)
                if mine is not None and tuple(mine["buckets"]) != edges:
                    raise ValueError(
                        f"histogram {name!r} bucket edges differ — "
                        f"mine {tuple(mine['buckets'])} vs foreign "
                        f"{edges}; bucket-wise merge would be meaningless"
                    )
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in gauges.items():
                key = name
                if source is not None:
                    key = f'{name}{{replica="{source}"}}'
                self._gauges[key] = value
            for name, foreign in histograms.items():
                edges = tuple(foreign["buckets"])
                counts = list(foreign["counts"])
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = {
                        "buckets": edges,
                        "counts": counts,
                        "count": int(foreign.get("count", sum(counts))),
                        "sum": float(foreign.get("sum", 0.0)),
                    }
                else:
                    mine["counts"] = [
                        a + b for a, b in zip(mine["counts"], counts)
                    ]
                    mine["count"] += int(foreign.get("count", sum(counts)))
                    mine["sum"] += float(foreign.get("sum", 0.0))

    # -- inspection ----------------------------------------------------

    def get_counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never touched)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready copy: ``{"counters", "gauges", "histograms"}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "buckets": list(hist["buckets"]),
                        "counts": list(hist["counts"]),
                        "count": hist["count"],
                        "sum": hist["sum"],
                    }
                    for name, hist in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Clear all counters, gauges and histograms."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def histogram_quantile(hist: Dict[str, Any], q: float) -> float:
    """Estimate the ``q``-quantile (0 ≤ q ≤ 1) of a snapshot histogram.

    Uses Prometheus-style linear interpolation inside the bucket that
    crosses the target rank; the first bucket interpolates from 0 and
    anything landing in the overflow bucket clamps to the last edge
    (the histogram carries no upper bound beyond it). Returns 0.0 for
    an empty histogram.
    """
    count = int(hist.get("count", 0))
    if count <= 0:
        return 0.0
    target = max(0.0, min(1.0, q)) * count
    cumulative = 0.0
    lower = 0.0
    edges = hist["buckets"]
    for edge, bucket_count in zip(edges, hist["counts"]):
        if bucket_count and cumulative + bucket_count >= target:
            fraction = (target - cumulative) / bucket_count
            return lower + (float(edge) - lower) * max(0.0, min(1.0, fraction))
        cumulative += bucket_count
        lower = float(edge)
    return float(edges[-1]) if edges else 0.0


def _prom_name(name: str, suffix: str = "") -> str:
    """Sanitize a dotted metric name for the Prometheus exposition
    format: dots and any other illegal characters become underscores."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized + suffix


def _prom_value(value: float) -> str:
    """Render a sample value; integers print without a trailing .0."""
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict in the Prometheus
    text exposition format (version 0.0.4).

    Counters gain the conventional ``_total`` suffix, gauges export
    as-is, and histograms expand into *cumulative* ``_bucket{le="..."}``
    series (plus the mandatory ``le="+Inf"`` bucket, ``_sum`` and
    ``_count``) — the registry's upper-inclusive buckets are already
    ``le``-compatible, so the only transformation is the running sum.
    Dotted names are sanitized (``pool.bytes`` → ``pool_bytes``) and
    ``# HELP``/``# TYPE`` headers are emitted per family, with HELP text
    drawn from :data:`CATALOG` when the name is catalogued. Output is
    sorted by family name so exports diff cleanly across runs.

    Gauge names decorated by :meth:`MetricsRegistry.merge_snapshot`
    (``name{replica="r0"}``) render as one family with per-replica
    labelled samples, sharing a single ``# TYPE`` header.
    """
    lines = []
    families = []
    for name, value in snapshot.get("counters", {}).items():
        families.append((name, "counter", value))
    for name, value in snapshot.get("gauges", {}).items():
        families.append((name, "gauge", value))
    for name, hist in snapshot.get("histograms", {}).items():
        families.append((name, "histogram", hist))
    previous_family = None
    for name, kind, value in sorted(
        families, key=lambda item: (item[0].partition("{")[0], item[0])
    ):
        base, _, label = name.partition("{")
        family = _prom_name(base, "_total" if kind == "counter" else "")
        if family != previous_family:
            help_text = CATALOG.get(base)
            if help_text:
                lines.append(f"# HELP {family} {help_text}")
            lines.append(f"# TYPE {family} {kind}")
            previous_family = family
        if kind == "histogram":
            cumulative = 0
            for edge, count in zip(value["buckets"], value["counts"]):
                cumulative += count
                lines.append(
                    f'{family}_bucket{{le="{_prom_value(edge)}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{family}_bucket{{le="+Inf"}} {value["count"]}'
            )
            lines.append(f"{family}_sum {_prom_value(value['sum'])}")
            lines.append(f"{family}_count {value['count']}")
        else:
            sample = f"{family}{{{label}" if label else family
            lines.append(f"{sample} {_prom_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide registry instance every instrumented module imports.
metrics = MetricsRegistry()
