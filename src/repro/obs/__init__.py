"""Zero-dependency instrumentation: tracing, metrics, run manifests.

The package is dormant by default — every span, counter and gauge call
in the library is a near-free no-op until a session is opened. Open one
(via :func:`session`, :func:`enable`, or the CLI's ``--trace-out`` /
``--metrics-out`` flags) and the same call sites produce a structured
record of the run:

- **Spans** (:data:`trace`): nested, timed phases — sampling, solver
  arms, evaluation — streamed to JSONL as they finish.
- **Metrics** (:data:`metrics`): counters, gauges and fixed-bucket
  histograms for discrete events (samples generated, coverage resyncs,
  heap compactions, redispatched batches, deadline truncations).
- **Manifests** (:func:`build_manifest`): one JSON document per run
  binding git SHA, platform, RNG seeds, a config hash, phase timings
  and the metrics snapshot — written atomically alongside checkpoint /
  campaign artifacts.

See ``docs/observability.md`` for the span and metric name registry and
end-to-end examples.
"""

from repro.obs.environment import (
    environment_fingerprint,
    git_info,
    require_clean_tree,
    working_tree_dirty,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    load_manifest,
    manifest_path_for,
    write_manifest,
)
from repro.obs.diagnostics import (
    ActivationTracker,
    ConvergenceCriterion,
    ConvergenceMonitor,
    StreamingMoments,
    bernoulli_sample_variance,
    empirical_bernstein_halfwidth,
    normal_halfwidth,
    observe_pool,
    pool_composition,
    pool_memory_bytes,
)
from repro.obs.events import (
    EVENT_TYPES,
    EventJournal,
    merge_event_logs,
    read_events,
)
from repro.obs.metrics import (
    CATALOG,
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    metrics,
    to_prometheus_text,
)
from repro.obs.report import render_cluster_report, render_metrics, render_report
from repro.obs.session import Recorder, disable, enable, enabled, session
from repro.obs.sinks import JsonlSink, read_jsonl, write_jsonl
from repro.obs.tracer import (
    NOOP_SPAN,
    PARENT_HEADER,
    SPAN_CATALOG,
    TRACE_HEADER,
    Span,
    TraceContext,
    Tracer,
    new_trace_id,
    phase_timings,
    trace,
)

__all__ = [
    # tracer
    "trace",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "SPAN_CATALOG",
    "TraceContext",
    "TRACE_HEADER",
    "PARENT_HEADER",
    "new_trace_id",
    "phase_timings",
    # metrics
    "metrics",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "CATALOG",
    "to_prometheus_text",
    "histogram_quantile",
    # lifecycle events
    "EventJournal",
    "EVENT_TYPES",
    "read_events",
    "merge_event_logs",
    # estimator-quality diagnostics
    "StreamingMoments",
    "ActivationTracker",
    "ConvergenceCriterion",
    "ConvergenceMonitor",
    "normal_halfwidth",
    "empirical_bernstein_halfwidth",
    "bernoulli_sample_variance",
    "pool_composition",
    "pool_memory_bytes",
    "observe_pool",
    # sinks
    "JsonlSink",
    "write_jsonl",
    "read_jsonl",
    # session lifecycle
    "session",
    "enable",
    "disable",
    "enabled",
    "Recorder",
    # manifests
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_path_for",
    "config_hash",
    # environment
    "environment_fingerprint",
    "git_info",
    "working_tree_dirty",
    "require_clean_tree",
    # reporting
    "render_report",
    "render_metrics",
    "render_cluster_report",
]
