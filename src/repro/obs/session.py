"""Session lifecycle: turn instrumentation on, collect, flush, off.

The rest of the package is passive — spans and metrics are recorded
only while a session is active. Typical use (what the CLI's
``--trace-out``/``--metrics-out`` flags do)::

    from repro import obs

    with obs.session(trace_out="run.jsonl") as recorder:
        result = solve_imc(...)
    manifest = obs.build_manifest(
        "solve", config={...}, seeds={"seed": 7},
        spans=recorder.spans, metrics_snapshot=recorder.metrics,
    )
    obs.write_manifest(manifest, "run.manifest.json")

Only one session may be active per process (nested sessions raise
:class:`~repro.errors.ObservabilityError`); parallel-sampling workers
use :meth:`~repro.obs.tracer.Tracer.capture` instead, which composes
with any master-side session.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ObservabilityError
from repro.obs import _gate
from repro.obs.metrics import metrics, to_prometheus_text
from repro.obs.sinks import JsonlSink, write_jsonl, write_text
from repro.obs.tracer import phase_timings, trace

#: Accepted ``metrics_format`` values for :func:`enable`/:func:`session`.
METRICS_FORMATS = ("json", "prom")


class Recorder:
    """Handle for one instrumentation session.

    While the session is open it mostly just names the output paths;
    when it closes, :attr:`spans` and :attr:`metrics` retain the
    collected data (the global tracer/registry are reset so the next
    session starts clean).
    """

    def __init__(self, trace_path: Optional[str],
                 metrics_path: Optional[str],
                 metrics_format: str = "json") -> None:
        #: Path the span JSONL streams to (``None`` = memory only).
        self.trace_path = trace_path
        #: Path the metrics snapshot is dumped to at close.
        self.metrics_path = metrics_path
        #: Dump format for ``metrics_path``: ``"json"`` (JSONL records)
        #: or ``"prom"`` (Prometheus text exposition).
        self.metrics_format = metrics_format
        #: Finished-span records, retained at session close.
        self.spans: List[Dict[str, Any]] = []
        #: Metrics registry snapshot, retained at session close.
        self.metrics: Dict[str, Any] = {}
        #: Wall-clock duration of the session in seconds.
        self.duration_seconds: float = 0.0

    def phase_timings(self) -> Dict[str, Dict[str, Any]]:
        """Per-span-name timing aggregate of the retained spans."""
        return phase_timings(self.spans)


_CURRENT: Optional[Recorder] = None
_SINK: Optional[JsonlSink] = None
_STARTED: float = 0.0


def enabled() -> bool:
    """Whether an instrumentation session is currently active."""
    return _gate.active


def enable(trace_out: Optional[str] = None,
           metrics_out: Optional[str] = None,
           metrics_format: str = "json") -> Recorder:
    """Start collecting spans and metrics; returns the session's
    :class:`Recorder`.

    ``trace_out`` streams finished spans to a JSONL file as they
    complete; ``metrics_out`` dumps the metrics snapshot (atomically)
    when the session ends — as typed JSONL records
    (``metrics_format="json"``, the default) or in the Prometheus text
    exposition format (``"prom"``), scrapeable/diffable with standard
    tooling. Both paths optional — with neither, data is only held in
    memory for :func:`disable` to return.
    """
    global _CURRENT, _SINK, _STARTED
    if _CURRENT is not None:
        raise ObservabilityError(
            "an instrumentation session is already active; "
            "sessions do not nest"
        )
    if metrics_format not in METRICS_FORMATS:
        raise ObservabilityError(
            f"unknown metrics_format {metrics_format!r}; "
            f"expected one of {METRICS_FORMATS}"
        )
    trace.reset()
    metrics.reset()
    _SINK = JsonlSink(trace_out) if trace_out else None
    if _SINK is not None:
        trace.attach_sink(_SINK)
    _CURRENT = Recorder(trace_out, metrics_out, metrics_format)
    _STARTED = time.perf_counter()
    _gate.active = True
    return _CURRENT


def disable() -> Recorder:
    """End the active session; returns its :class:`Recorder` with the
    collected spans and metrics retained.

    Flushes/closes the trace sink, writes the metrics JSONL (if
    requested), then resets the global tracer and registry.
    """
    global _CURRENT, _SINK
    if _CURRENT is None:
        raise ObservabilityError("no instrumentation session is active")
    recorder = _CURRENT
    _gate.active = False
    recorder.duration_seconds = time.perf_counter() - _STARTED
    recorder.spans = trace.snapshot()
    recorder.metrics = metrics.snapshot()
    trace.detach_sink()
    if _SINK is not None:
        _SINK.close()
        _SINK = None
    if recorder.metrics_path:
        if recorder.metrics_format == "prom":
            write_text(recorder.metrics_path,
                       to_prometheus_text(recorder.metrics))
        else:
            write_jsonl(recorder.metrics_path,
                        _metric_records(recorder.metrics))
    trace.reset()
    metrics.reset()
    _CURRENT = None
    return recorder


def _metric_records(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten a registry snapshot into typed JSONL records."""
    records: List[Dict[str, Any]] = []
    for name in sorted(snapshot.get("counters", {})):
        records.append({
            "type": "counter", "name": name,
            "value": snapshot["counters"][name],
        })
    for name in sorted(snapshot.get("gauges", {})):
        records.append({
            "type": "gauge", "name": name,
            "value": snapshot["gauges"][name],
        })
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        records.append({"type": "histogram", "name": name, **hist})
    return records


@contextmanager
def session(trace_out: Optional[str] = None,
            metrics_out: Optional[str] = None,
            metrics_format: str = "json") -> Iterator[Recorder]:
    """Context-manager form of :func:`enable`/:func:`disable`.

    The yielded :class:`Recorder` is fully populated only after the
    block exits (the session closes even when the block raises, so a
    failing run still leaves its trace on disk).
    """
    recorder = enable(trace_out=trace_out, metrics_out=metrics_out,
                      metrics_format=metrics_format)
    try:
        yield recorder
    finally:
        disable()
