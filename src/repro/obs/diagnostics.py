"""Estimator-quality diagnostics: convergence, confidence, composition.

Everything the library reports ultimately rests on the RIC Monte-Carlo
estimate of the non-submodular objective ``c(S)``; this module
quantifies how *trustworthy* those numbers are. It provides:

- :class:`StreamingMoments` — a Welford (mean/variance) accumulator
  that never stores its observations, with a Chan-style :meth:`merge`
  so per-batch accumulators combine exactly;
- :func:`normal_halfwidth` and :func:`empirical_bernstein_halfwidth` —
  confidence-interval half-widths (normal approximation and the
  variance-adaptive Maurer–Pontil empirical-Bernstein bound);
- :class:`ActivationTracker` — per-community activation-probability
  counts (how often samples sourced at each community were influenced
  by the seed set under evaluation);
- :class:`ConvergenceMonitor` — the streaming observer ``solve_imc``
  attaches via its ``convergence=`` argument: it watches sample batches
  as they land, records the ĉ(S)-vs-sample-count trajectory, and
  optionally implements a relative-CI-width stopping rule
  (:class:`ConvergenceCriterion`) that turns monitoring into *adaptive
  sampling*;
- pool-composition diagnostics (:func:`pool_composition`,
  :func:`pool_memory_bytes`, :func:`observe_pool`) — reach-size
  histograms, sources-per-community, reach-set dedup ratio and a
  memory-footprint gauge.

Monitors are **pure observers**: they draw nothing from any RNG stream
and mutate neither pool nor sampler, so attaching one (without a
stopping rule) leaves every result byte-identical —
``tests/test_obs_diagnostics.py`` pins that down for both sampling
engines. Metric emission inside a monitor goes through
:mod:`repro.obs.metrics` and is therefore a no-op unless an
instrumentation session is active; the monitor's own summary
(:meth:`ConvergenceMonitor.summary`) works either way.

See ``docs/observability.md`` ("Estimator quality") for the statistics
and the exact stopping rule.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from statistics import NormalDist
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ObservabilityError
from repro.obs.metrics import metrics

#: Bucket upper edges for the reach-size histogram
#: (``pool.reach.histogram``): powers of two spanning singleton reach
#: sets to very large cascades.
REACH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

#: Bucket upper edges for the samples-per-source-community histogram
#: (``pool.sources.histogram``).
SOURCE_COUNT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000)


class StreamingMoments:
    """Welford's online mean/variance accumulator.

    Numerically stable, O(1) memory, exact merge: ``push`` each
    observation as it arrives; ``mean`` / ``variance`` (the unbiased
    sample variance) are available at any point. :meth:`merge` combines
    two accumulators as if their streams had been interleaved (Chan et
    al.'s pairwise update), which is what lets per-batch accumulators
    from parallel sampling be folded into one.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        #: Smallest / largest observation seen (``None`` when empty).
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def push(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def push_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations."""
        for value in values:
            self.push(value)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator's stream into this one (exactly)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        if other.min is not None and other.min < self.min:  # type: ignore[operator]
            self.min = other.min
        if other.max is not None and other.max > self.max:  # type: ignore[operator]
            self.max = other.max

    @property
    def mean(self) -> float:
        """Running mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than 2 points)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary: count, mean, variance, std, min, max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


def _check_ci_inputs(n: int, delta: float) -> None:
    if n < 1:
        raise ObservabilityError(f"confidence interval needs n >= 1, got {n}")
    if not (0.0 < delta < 1.0):
        raise ObservabilityError(
            f"delta must be in (0, 1), got {delta}"
        )


def normal_halfwidth(variance: float, n: int, delta: float) -> float:
    """Half-width of the normal-approximation ``1 - delta`` CI.

    ``z_{1-δ/2} · sqrt(V / n)`` with ``V`` the sample variance — the
    classic CLT interval. Cheap and tight for large ``n``; anti-
    conservative for tiny ``n`` or means near the support boundary
    (use :func:`empirical_bernstein_halfwidth` there).
    """
    _check_ci_inputs(n, delta)
    if variance < 0:
        raise ObservabilityError(f"variance must be >= 0, got {variance}")
    z = NormalDist().inv_cdf(1.0 - delta / 2.0)
    return z * math.sqrt(variance / n)


def empirical_bernstein_halfwidth(
    variance: float, value_range: float, n: int, delta: float
) -> float:
    """Maurer–Pontil empirical-Bernstein ``1 - delta`` half-width.

    ``sqrt(2·V·ln(2/δ)/n) + 7·R·ln(2/δ)/(3·(n-1))`` for observations in
    an interval of width ``R`` with sample variance ``V``. Unlike
    Hoeffding it adapts to the *observed* variance, and unlike the
    normal approximation it is a true finite-sample concentration bound
    — the right tool near thresholds where estimator noise decides seed
    quality. Returns ``inf`` for ``n = 1`` (the bound needs ``n >= 2``).
    """
    _check_ci_inputs(n, delta)
    if variance < 0:
        raise ObservabilityError(f"variance must be >= 0, got {variance}")
    if value_range <= 0:
        raise ObservabilityError(
            f"value_range must be positive, got {value_range}"
        )
    if n < 2:
        return float("inf")
    log_term = math.log(2.0 / delta)
    return math.sqrt(2.0 * variance * log_term / n) + (
        7.0 * value_range * log_term / (3.0 * (n - 1))
    )


def bernoulli_sample_variance(successes: float, n: int) -> float:
    """Unbiased sample variance of ``n`` Bernoulli trials.

    ``(n / (n-1)) · p̂ · (1 - p̂)`` with ``p̂ = successes / n`` — the
    closed form of pushing ``n`` indicator values through
    :class:`StreamingMoments`; 0.0 for ``n < 2``.
    """
    if n < 1:
        raise ObservabilityError(f"need n >= 1 Bernoulli trials, got {n}")
    if not (0.0 <= successes <= n):
        raise ObservabilityError(
            f"successes must be in [0, {n}], got {successes}"
        )
    if n < 2:
        return 0.0
    p = successes / n
    return n / (n - 1) * p * (1.0 - p)


@dataclass(frozen=True)
class ConvergenceCriterion:
    """Relative-CI-width stopping rule for adaptive sampling.

    Sampling may stop once the ``1 - delta`` confidence half-width of
    the running ĉ(S) estimate drops to at most ``ci_width`` of the
    estimate itself (``halfwidth / ĉ <= ci_width``) *and* at least
    ``min_samples`` samples back the estimate. ``method`` picks the
    interval: ``"normal"`` (CLT) or ``"bernstein"``
    (:func:`empirical_bernstein_halfwidth`; conservative, finite-
    sample). A zero estimate never satisfies the rule — its relative
    width is unbounded — so adaptive runs cannot stop on "no influence
    observed yet".

    Passing a criterion to ``solve_imc(..., convergence=...)`` is the
    one diagnostics feature that **changes results**: the pool stops
    growing as soon as the rule fires (``stopped_by="converged"``).
    Attaching a bare :class:`ConvergenceMonitor` instead observes
    without intervening.
    """

    ci_width: float
    min_samples: int = 100
    delta: float = 0.05
    method: str = "normal"

    def __post_init__(self) -> None:
        if self.ci_width <= 0:
            raise ObservabilityError(
                f"ci_width must be positive, got {self.ci_width}"
            )
        if self.min_samples < 1:
            raise ObservabilityError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if not (0.0 < self.delta < 1.0):
            raise ObservabilityError(
                f"delta must be in (0, 1), got {self.delta}"
            )
        if self.method not in ("normal", "bernstein"):
            raise ObservabilityError(
                f"method must be 'normal' or 'bernstein', got {self.method!r}"
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form for manifests."""
        return {
            "ci_width": self.ci_width,
            "min_samples": self.min_samples,
            "delta": self.delta,
            "method": self.method,
        }


class ActivationTracker:
    """Per-community activation-probability counts.

    Tracks, for each source community, how many influence observations
    were made on samples it sourced and how many of those came out
    influenced — the per-community activation probability ``p̂_i`` the
    seed set achieves. Feed it one observation at a time
    (:meth:`observe`, used by the Algorithm 6 trial stream) or in bulk
    (:meth:`add_counts`, used after each pool evaluation stage).
    """

    def __init__(self) -> None:
        self._seen: Dict[int, int] = {}
        self._influenced: Dict[int, int] = {}

    def observe(self, community_index: int, influenced: bool) -> None:
        """Record one influence observation for one sample."""
        self._seen[community_index] = self._seen.get(community_index, 0) + 1
        if influenced:
            self._influenced[community_index] = (
                self._influenced.get(community_index, 0) + 1
            )

    def add_counts(
        self, seen: Dict[int, int], influenced: Dict[int, int]
    ) -> None:
        """Fold bulk per-community (seen, influenced) counts in."""
        for index, count in seen.items():
            self._seen[index] = self._seen.get(index, 0) + count
        for index, count in influenced.items():
            self._influenced[index] = self._influenced.get(index, 0) + count

    def rates(self) -> Dict[int, Dict[str, float]]:
        """Per-community ``{seen, influenced, rate}``, by index."""
        return {
            index: {
                "seen": seen,
                "influenced": self._influenced.get(index, 0),
                "rate": self._influenced.get(index, 0) / seen,
            }
            for index, seen in sorted(self._seen.items())
        }


def pool_memory_bytes(pool) -> int:
    """Shallow structural memory estimate of a RIC sample pool, in bytes.

    Sums ``sys.getsizeof`` over the sample list, each sample's tuples,
    the reach-set frozensets (each *distinct object* counted once, so
    interning via ``RICSamplePool.compact()`` is reflected), and the
    inverted coverage index with its pair tuples. Element integers are
    not charged (they are shared across the process); treat the number
    as a comparable footprint gauge, not an exact RSS prediction.
    """
    total = sys.getsizeof(pool.samples)
    seen_ids = set()
    for sample in pool.samples:
        total += sys.getsizeof(sample)
        total += sys.getsizeof(sample.members)
        total += sys.getsizeof(sample.reach_sets)
        for reach in sample.reach_sets:
            if id(reach) not in seen_ids:
                seen_ids.add(id(reach))
                total += sys.getsizeof(reach)
    coverage = pool._coverage
    total += sys.getsizeof(coverage)
    for entry in coverage.values():
        total += sys.getsizeof(entry)
        for pair in entry:
            total += sys.getsizeof(pair)
    return total


def pool_composition(pool) -> Dict[str, Any]:
    """Composition diagnostics of a RIC sample pool.

    Returns reach-set counts and dedup ratio (``unique_reach_sets /
    reach_sets`` — the same numbers ``RICSamplePool.compact()`` reports,
    computed here without mutating the pool), reach-size moments,
    samples per source community, and the
    :func:`pool_memory_bytes` footprint. One full pass over the pool —
    call it at end of run (the monitor does so in
    :meth:`ConvergenceMonitor.finalize`), not per batch.
    """
    sizes = StreamingMoments()
    distinct = set()
    total_sets = 0
    for sample in pool.samples:
        for reach in sample.reach_sets:
            total_sets += 1
            sizes.push(len(reach))
            distinct.add(reach)
    unique = len(distinct)
    return {
        "samples": len(pool.samples),
        "reach_sets": total_sets,
        "unique_reach_sets": unique,
        "unique_ratio": unique / total_sets if total_sets else 1.0,
        "reach_size": sizes.as_dict(),
        "sources": {
            str(index): count
            for index, count in sorted(pool.community_counts().items())
        },
        "bytes": pool_memory_bytes(pool),
    }


def observe_pool(pool) -> Dict[str, Any]:
    """Emit a pool's composition diagnostics to the metrics registry.

    Computes :func:`pool_composition` and publishes it: the reach-size
    histogram (``pool.reach.histogram``), the samples-per-source
    histogram (``pool.sources.histogram``), the dedup-ratio gauge
    (``pool.reach.unique_ratio``) and the footprint gauge
    (``pool.bytes``). Returns the composition dict so callers can embed
    it in a manifest. All emission is gated on the instrumentation
    session like every other metric call.
    """
    composition = pool_composition(pool)
    for sample in pool.samples:
        for reach in sample.reach_sets:
            metrics.observe(
                "pool.reach.histogram", len(reach), buckets=REACH_SIZE_BUCKETS
            )
    for count in pool.community_counts().values():
        metrics.observe(
            "pool.sources.histogram", count, buckets=SOURCE_COUNT_BUCKETS
        )
    metrics.set_gauge("pool.reach.unique_ratio", composition["unique_ratio"])
    metrics.set_gauge("pool.bytes", composition["bytes"])
    return composition


class ConvergenceMonitor:
    """Streaming observer of an IMC run's estimator quality.

    Attach one via ``solve_imc(..., convergence=monitor)`` (or pass a
    :class:`ConvergenceCriterion` and let ``solve_imc`` wrap it). The
    framework then feeds the monitor:

    - :meth:`observe_batch` — every batch of RIC samples as it lands
      (from either sampling engine, alongside that engine's unified
      ``last_profile()`` dict): reach-size/member accumulators update
      and the batch shape is remembered;
    - :meth:`observe_stage` — every stop-stage evaluation of the
      candidate seed set: one ``(num_samples, ĉ, halfwidth)`` trajectory
      point plus per-community activation counts;
    - :meth:`observe_trial` — every Algorithm 6 (Dagum) cross-check
      draw: the influence indicators stream into a
      :class:`StreamingMoments`;
    - :meth:`finalize` — once, at end of run: pool-composition
      diagnostics and footprint/ratio gauges.

    The monitor is strictly read-only with respect to the run: no RNG
    draws, no pool mutation. With no criterion it never asks to stop
    and results are byte-identical to an unmonitored run; with a
    criterion, :meth:`should_stop` turns the latest trajectory point
    into an adaptive-sampling early exit. One monitor observes one run
    — attach a fresh instance per ``solve_imc`` call.
    """

    def __init__(
        self, criterion: Optional[ConvergenceCriterion] = None
    ) -> None:
        self.criterion = criterion
        #: ĉ(S) trajectory: one dict per observed stage.
        self.trajectory: List[Dict[str, Any]] = []
        #: Reach-set size moments over every observed sample.
        self.reach_sizes = StreamingMoments()
        #: Members-per-sample moments over every observed sample.
        self.members_per_sample = StreamingMoments()
        #: Algorithm 6 influence-indicator moments (Welford).
        self.trial_moments = StreamingMoments()
        #: Per-community activation counts (stages + Alg. 6 trials).
        self.activation = ActivationTracker()
        self._batch_profiles: List[Dict[str, Any]] = []
        self._samples_observed = 0
        self._converged = False
        self._composition: Optional[Dict[str, Any]] = None

    # -- observation hooks ---------------------------------------------

    def observe_batch(
        self,
        samples: Sequence[Any],
        profile: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Fold one landed batch of RIC samples into the accumulators.

        ``profile`` is the generating engine's ``last_profile()`` dict
        (the unified schema both engines share); its mode/shape is kept
        for the summary's batch log.
        """
        for sample in samples:
            self.members_per_sample.push(len(sample.members))
            for reach in sample.reach_sets:
                self.reach_sizes.push(len(reach))
                metrics.observe(
                    "pool.reach.histogram",
                    len(reach),
                    buckets=REACH_SIZE_BUCKETS,
                )
        self._samples_observed += len(samples)
        if profile is not None:
            self._batch_profiles.append(
                {
                    "mode": profile.get("mode"),
                    "samples": profile.get("samples"),
                    "samples_per_sec": profile.get("samples_per_sec"),
                    "workers": profile.get("workers"),
                }
            )

    def observe_stage(self, pool, seeds: Iterable[int], influenced: int) -> None:
        """Record one stop-stage evaluation of the candidate seed set.

        ``influenced`` is the pool coverage ``Σ_g X_g(S)`` the framework
        already computed; the monitor derives ĉ(S), its confidence
        half-width (per the criterion's method and delta, defaulting to
        a 95% normal interval when unmonitored), appends the trajectory
        point, publishes the ``estimator.*`` gauges, and folds the
        per-community influence split into the activation tracker.
        """
        n = len(pool)
        if n < 1:
            raise ObservabilityError("cannot observe a stage on an empty pool")
        b = pool.total_benefit
        delta = self.criterion.delta if self.criterion else 0.05
        method = self.criterion.method if self.criterion else "normal"
        p_variance = bernoulli_sample_variance(influenced, n)
        if method == "bernstein":
            halfwidth = b * empirical_bernstein_halfwidth(
                p_variance, 1.0, n, delta
            )
        else:
            halfwidth = b * normal_halfwidth(p_variance, n, delta)
        estimate = b * influenced / n
        relative = halfwidth / estimate if estimate > 0 else None
        self.trajectory.append(
            {
                "samples": n,
                "influenced": influenced,
                "estimate": estimate,
                "halfwidth": halfwidth,
                "relative_width": relative,
            }
        )
        seen, hit = pool.influenced_count_by_community(seeds)
        self.activation.add_counts(seen, hit)
        metrics.inc("estimator.stages")
        metrics.set_gauge("estimator.mean", estimate)
        metrics.set_gauge("estimator.ci.halfwidth", halfwidth)
        if relative is not None:
            metrics.set_gauge("estimator.ci.width", relative)
        metrics.set_gauge("estimator.samples.used", n)

    def observe_trial(
        self, value: float, community_index: Optional[int] = None
    ) -> None:
        """Record one Algorithm 6 influence-indicator draw."""
        self.trial_moments.push(value)
        if community_index is not None:
            self.activation.observe(community_index, value > 0)
        metrics.inc("estimator.trials.observed")

    # -- stopping rule -------------------------------------------------

    def should_stop(self) -> bool:
        """Whether the criterion is satisfied at the latest stage.

        Always ``False`` without a criterion (pure monitoring) or
        before the first :meth:`observe_stage`.
        """
        if self.criterion is None or not self.trajectory:
            return False
        point = self.trajectory[-1]
        if point["samples"] < self.criterion.min_samples:
            return False
        relative = point["relative_width"]
        if relative is None or relative > self.criterion.ci_width:
            return False
        self._converged = True
        return True

    @property
    def converged(self) -> bool:
        """Whether the stopping rule ever fired."""
        return self._converged

    # -- finalisation --------------------------------------------------

    def finalize(self, pool) -> None:
        """End-of-run pool diagnostics: composition, footprint, gauges.

        Idempotent per monitor; safe to skip (``summary`` then omits the
        pool block).
        """
        composition = pool_composition(pool)
        for count in pool.community_counts().values():
            metrics.observe(
                "pool.sources.histogram", count, buckets=SOURCE_COUNT_BUCKETS
            )
        metrics.set_gauge("pool.reach.unique_ratio", composition["unique_ratio"])
        metrics.set_gauge("pool.bytes", composition["bytes"])
        self._composition = composition

    def summary(self) -> Dict[str, Any]:
        """JSON-ready estimator block for manifests and reports.

        Final mean/CI/sample count, the full trajectory, the criterion
        (when adaptive), Algorithm 6 trial moments, per-community
        activation rates, batch shapes, and (after :meth:`finalize`)
        pool composition.
        """
        last = self.trajectory[-1] if self.trajectory else None
        return {
            "criterion": self.criterion.as_dict() if self.criterion else None,
            "converged": self._converged,
            "samples": last["samples"] if last else self._samples_observed,
            "mean": last["estimate"] if last else None,
            "halfwidth": last["halfwidth"] if last else None,
            "relative_width": last["relative_width"] if last else None,
            "stages": len(self.trajectory),
            "trajectory": list(self.trajectory),
            "estimate_trials": (
                self.trial_moments.as_dict()
                if self.trial_moments.count
                else None
            ),
            "communities": {
                str(index): stats
                for index, stats in self.activation.rates().items()
            },
            "batches": list(self._batch_profiles),
            "pool": self._composition,
        }
