"""Lifecycle event journal: torn-tail-safe JSONL for fleet incidents.

Traces answer "where did *this request's* time go"; the event journal
answers "what happened to *the fleet* while requests flowed" — replica
spawns and crashes, heartbeat misses, supervisor restart incidents,
circuit-breaker transitions, shard evictions and drains. Events append
to a JSONL file as they happen (flushed per line), so a SIGKILL'd
process leaves at worst one torn final line, which
:func:`repro.obs.sinks.read_jsonl` already skips.

Unlike span/metric instrumentation, the journal is *not* gated by the
observability session: it is explicit configuration (a cluster run
directory), always cheap (one dict + one write per lifecycle incident,
never per request), and most valuable exactly when things crash.

Event ``event`` types are closed over :data:`EVENT_TYPES` —
``scripts/check_span_names.py`` lints emit call sites against it and
``docs/observability.md`` documents every type.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import metrics
from repro.obs.sinks import read_jsonl

#: Every lifecycle event type the codebase may emit, with a one-line
#: meaning. Emitting an uncatalogued type raises ``ValueError`` — add
#: the entry (and its docs row) first.
EVENT_TYPES: Dict[str, str] = {
    "cluster.started": "serving cluster came up (topology attrs)",
    "cluster.stopped": "serving cluster shut down",
    "replica.spawned": "supervisor spawned a replica process",
    "replica.healthy": "replica answered its health probe",
    "replica.heartbeat.missed": "replica failed one heartbeat probe",
    "replica.crash.detected": "supervisor declared a replica dead",
    "replica.respawned": "supervisor respawned a replica (one attempt)",
    "replica.restart.failed": "restart budget exhausted; replica abandoned",
    "replica.killed": "replica killed via the chaos hook",
    "replica.stopped": "replica stopped during orderly shutdown",
    "server.started": "replica HTTP server began serving",
    "server.drain.begin": "server stopped accepting; draining in-flight",
    "server.drain.end": "drain finished (attrs say clean or timed out)",
    "shard.evicted": "a cold shard was evicted under the byte budget",
    "breaker.opened": "a per-replica circuit breaker tripped open",
    "breaker.half_open": "an open breaker began probing (half-open)",
    "breaker.closed": "a probing breaker saw success and closed",
}


class EventJournal:
    """Append-only JSONL journal of lifecycle events.

    Thread-safe; one journal per writing process. Files open in append
    mode so a supervisor that outlives replica incarnations keeps one
    continuous log, and every line is flushed immediately so readers
    (and post-mortems) see at worst one torn tail line.

    ``emit`` after :meth:`close` is a silent no-op — shutdown races a
    drain thread's final events against the journal teardown, and
    dropping a late event beats crashing the exit path.
    """

    def __init__(self, path: str, source: Optional[str] = None,
                 clock=time.time) -> None:
        self.path = str(path)
        self.source = source
        self._clock = clock
        self._lock = threading.Lock()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, event: str, **attrs: Any) -> None:
        """Append one event record (validated against the catalogue)."""
        if event not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event!r}; add it to "
                "repro.obs.events.EVENT_TYPES (and the docs) first"
            )
        record: Dict[str, Any] = {
            "type": "event",
            "event": event,
            "ts": self._clock(),
            "pid": os.getpid(),
        }
        if self.source is not None:
            record["source"] = self.source
        record.update(attrs)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
        metrics.inc("cluster.events.recorded")

    def close(self) -> None:
        """Close the underlying file; later emits become no-ops."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_events(path: str) -> List[Dict[str, Any]]:
    """Event records from one journal file (torn tail skipped)."""
    return [
        record for record in read_jsonl(path)
        if record.get("type") == "event"
    ]


def merge_event_logs(paths: Iterable[str]) -> List[Dict[str, Any]]:
    """Merge several journals into one timeline, ordered by wall clock.

    Wall clocks across processes on one host are close enough to order
    lifecycle events (seconds apart); ties keep per-file order.
    """
    merged: List[Dict[str, Any]] = []
    for path in paths:
        merged.extend(read_events(path))
    merged.sort(key=lambda record: record.get("ts", 0.0))
    return merged
