"""Wall-clock helpers for the experiment harness."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """A re-usable stopwatch measuring wall-clock seconds.

    Usage::

        with Stopwatch() as sw:
            run_solver()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> None:
        """Begin (or restart) timing."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds since :meth:`start`."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently timing."""
        return self._start is not None
