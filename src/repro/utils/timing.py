"""Wall-clock helpers for the experiment harness."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """A re-usable stopwatch measuring wall-clock seconds.

    Usage::

        with Stopwatch() as sw:
            run_solver()
        print(sw.elapsed)

    While the stopwatch is running, :attr:`elapsed` reads live (seconds
    since :meth:`start` so far) and :meth:`lap` returns the same reading
    explicitly; after :meth:`stop` both settle on the final duration.
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> None:
        """Begin (or restart) timing."""
        self._start = time.perf_counter()

    def lap(self) -> float:
        """Return seconds since :meth:`start` without stopping the watch."""
        if self._start is None:
            raise RuntimeError("Stopwatch.lap() called before start()")
        return time.perf_counter() - self._start

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds since :meth:`start`."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds — live while running, final after :meth:`stop`."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently timing."""
        return self._start is not None
