"""A max-heap with lazy deletion, used by CELF-style lazy greedy.

CELF (Cost-Effective Lazy Forward) exploits submodularity: a cached
marginal gain is always an upper bound on the current marginal gain, so
the heap only needs to re-evaluate the top entry. This heap supports that
access pattern: ``push`` with a priority, ``pop_max``, and ``update``
implemented by pushing a fresh entry and invalidating the stale one via
an entry counter.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

from repro.obs import metrics

T = TypeVar("T", bound=Hashable)


class LazyMaxHeap(Generic[T]):
    """Max-heap keyed by float priority with lazy stale-entry deletion.

    Each item has at most one *live* entry; pushing an item again simply
    supersedes the previous entry. Stale entries are discarded when they
    surface at the top, and — because long CELF runs re-push items far
    more often than they pop — the heap also compacts itself whenever
    stale entries outnumber live ones by more than 2×, bounding memory
    at O(live) instead of O(total pushes).
    """

    #: Compaction only kicks in above this heap size, so tiny heaps
    #: never pay the rebuild cost.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, T]] = []
        self._live: dict = {}
        self._counter = itertools.count()

    def _maybe_compact(self) -> None:
        """Rebuild the heap when stale entries exceed ~2× live entries.

        Each live item has exactly one matching entry, so the stale
        count is ``len(_heap) - len(_live)``. Compaction is O(heap) and
        amortises to O(1) per operation: after a rebuild the heap holds
        only live entries, so at least ``2 × live`` further pushes or
        discards must happen before the next rebuild.
        """
        if len(self._heap) < self.COMPACT_MIN_SIZE:
            return
        stale = len(self._heap) - len(self._live)
        if stale <= 2 * len(self._live):
            return
        self._heap = [
            entry for entry in self._heap
            if self._live.get(entry[2]) == entry[1]
        ]
        heapq.heapify(self._heap)
        metrics.inc("heap.compactions")

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, item: T) -> bool:
        return item in self._live

    def push(self, item: T, priority: float) -> None:
        """Insert ``item`` with ``priority``, superseding any older entry."""
        count = next(self._counter)
        self._live[item] = count
        # heapq is a min-heap; negate priorities for max behaviour.
        heapq.heappush(self._heap, (-priority, count, item))
        self._maybe_compact()

    def pop_max(self) -> Tuple[T, float]:
        """Remove and return ``(item, priority)`` with the largest priority.

        Raises ``IndexError`` when the heap is empty.
        """
        while self._heap:
            neg_priority, count, item = heapq.heappop(self._heap)
            if self._live.get(item) == count:
                del self._live[item]
                return item, -neg_priority
        raise IndexError("pop from empty LazyMaxHeap")

    def peek_max(self) -> Tuple[T, float]:
        """Return ``(item, priority)`` with the largest priority without removal."""
        while self._heap:
            neg_priority, count, item = self._heap[0]
            if self._live.get(item) == count:
                return item, -neg_priority
            heapq.heappop(self._heap)
        raise IndexError("peek on empty LazyMaxHeap")

    def discard(self, item: T) -> None:
        """Remove ``item`` if present (lazily; no-op when absent)."""
        self._live.pop(item, None)
        self._maybe_compact()

    def priority_of(self, item: T) -> Optional[float]:
        """Return the live priority of ``item`` or ``None`` when absent.

        Linear in heap size in the worst case; intended for tests and
        diagnostics rather than hot paths.
        """
        live_count = self._live.get(item)
        if live_count is None:
            return None
        for neg_priority, count, heap_item in self._heap:
            if heap_item == item and count == live_count:
                return -neg_priority
        return None

    def items(self) -> Iterator[T]:
        """Iterate over live items in arbitrary order."""
        return iter(list(self._live))
