"""Deterministic fault injection for tests and benchmarks.

Verifying a self-healing execution layer requires *reproducible*
failures: a worker that crashes on exactly the same batch every run, a
call that raises on exactly its Nth invocation, a stage that stalls for
a fixed delay. :class:`FaultInjector` provides that as a picklable plan
that can be shipped into worker processes.

A plan is a sequence of :class:`Fault` specs. Each names a *site* (a
string the instrumented code passes to :meth:`FaultInjector.fire`) and
a set of coordinate constraints (``when``) that must all match the
coordinates supplied at the fire point for the fault to trigger. The
injector automatically adds a per-site ``call`` coordinate (0-based
invocation count, tracked per process), so "raise on the Nth call"
needs no cooperation from the instrumented code.

Actions:

- ``"raise"`` — raise ``exception_type(message)``
  (:class:`FaultInjected` by default);
- ``"delay"`` — sleep ``delay_seconds`` then continue;
- ``"kill"`` — terminate the *process* via ``os._exit`` (simulating a
  worker being OOM-killed / segfaulting; inside a
  ``ProcessPoolExecutor`` this surfaces as ``BrokenProcessPool``).

Everything is plain data (frozen dataclasses, exception types by
reference), so an injector pickles cleanly into pool initializers. Call
counters are per-process: a restarted worker starts counting afresh,
which is why crash plans for the parallel sampler key on the shipped
``start``/``attempt`` coordinates rather than on call counts.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Type

from repro.errors import ReproError


class FaultInjected(RuntimeError):
    """Default exception raised by a ``"raise"`` fault.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults simulate infrastructure failures (a dying worker, a flaky
    filesystem), which the library must treat as foreign exceptions.
    """


_ACTIONS = ("raise", "delay", "kill")


@dataclass(frozen=True)
class Fault:
    """One planned failure: fire ``action`` at ``site`` when every
    ``when`` coordinate matches the fire point's coordinates."""

    site: str
    action: str
    when: Tuple[Tuple[str, int], ...] = ()
    message: str = "injected fault"
    exception_type: Type[BaseException] = FaultInjected
    delay_seconds: float = 0.0
    exit_code: int = 23

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ReproError(
                f"fault action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.delay_seconds < 0:
            raise ReproError(
                f"delay_seconds must be non-negative, got {self.delay_seconds}"
            )

    @staticmethod
    def _coords(when: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(when.items()))

    @classmethod
    def raise_on(
        cls,
        site: str,
        message: str = "injected fault",
        exception_type: Type[BaseException] = FaultInjected,
        **when: int,
    ) -> "Fault":
        """A fault raising ``exception_type(message)`` at ``site``."""
        return cls(
            site=site,
            action="raise",
            when=cls._coords(when),
            message=message,
            exception_type=exception_type,
        )

    @classmethod
    def delay_on(cls, site: str, seconds: float, **when: int) -> "Fault":
        """A fault sleeping ``seconds`` before letting ``site`` proceed."""
        return cls(
            site=site,
            action="delay",
            when=cls._coords(when),
            delay_seconds=seconds,
        )

    @classmethod
    def kill_on(cls, site: str, exit_code: int = 23, **when: int) -> "Fault":
        """A fault hard-killing the current process at ``site``."""
        return cls(
            site=site,
            action="kill",
            when=cls._coords(when),
            exit_code=exit_code,
        )

    def matches(self, site: str, coords: Mapping[str, int]) -> bool:
        """Whether this fault triggers for ``site`` with ``coords``."""
        if site != self.site:
            return False
        return all(
            key in coords and coords[key] == value
            for key, value in self.when
        )


class FaultInjector:
    """Executes a deterministic fault plan at instrumented sites.

    Instrumented code calls ``injector.fire(site, **coordinates)`` at
    the points where failures may be injected; the call is a no-op
    unless a planned :class:`Fault` matches. The injector tracks a
    0-based per-site ``call`` coordinate automatically (per process).

    ``fired`` counts triggered faults per site — assertions in tests
    use it to prove the fault actually fired (kills excepted, since the
    process is gone).
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self.faults: Tuple[Fault, ...] = tuple(faults)
        self._calls: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}

    def add(self, fault: Fault) -> None:
        """Append one more fault to the plan."""
        self.faults = self.faults + (fault,)

    def call_count(self, site: str) -> int:
        """How many times ``site`` has fired so far in this process."""
        return self._calls.get(site, 0)

    def fire(self, site: str, **coords: int) -> None:
        """Trigger any matching fault for ``site`` (no-op otherwise)."""
        n = self._calls.get(site, 0)
        self._calls[site] = n + 1
        coords.setdefault("call", n)
        for fault in self.faults:
            if fault.matches(site, coords):
                self._act(fault, site)

    def _act(self, fault: Fault, site: str) -> None:
        if fault.action == "kill":
            # Simulate a hard worker death (OOM-kill/segfault): no
            # exception propagation, no cleanup, the process just ends.
            os._exit(fault.exit_code)
        self.fired[site] = self.fired.get(site, 0) + 1
        if fault.action == "delay":
            time.sleep(fault.delay_seconds)
            return
        raise fault.exception_type(fault.message)

    def __getstate__(self) -> dict:
        # Counters are per-process state; a pickled copy shipped to a
        # (possibly restarted) worker starts counting from zero.
        return {"faults": self.faults}

    def __setstate__(self, state: dict) -> None:
        self.faults = state["faults"]
        self._calls = {}
        self.fired = {}
