"""Math helpers used by sample-complexity bounds and estimators."""

from __future__ import annotations

import math


def log_binomial(n: int, k: int) -> float:
    """Natural log of the binomial coefficient ``C(n, k)``.

    Computed via ``lgamma`` so it stays exact enough for the huge values
    that appear in union-bound sample counts (e.g. ``C(10^6, 100)``).
    Returns ``-inf`` for impossible combinations.
    """
    if k < 0 or k > n:
        return float("-inf")
    if k == 0 or k == n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def log_n_choose_k(n: int, k: int) -> float:
    """Alias of :func:`log_binomial` matching the paper's ``ln C(n,k)``."""
    return log_binomial(n, k)


def harmonic_number(n: int) -> float:
    """The ``n``-th harmonic number ``H_n = sum_{i=1..n} 1/i``.

    Uses the asymptotic expansion for large ``n`` to stay O(1).
    """
    if n <= 0:
        return 0.0
    if n < 100:
        return sum(1.0 / i for i in range(1, n + 1))
    gamma = 0.577_215_664_901_532_9
    return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    return max(low, min(high, value))


def mean(values) -> float:
    """Arithmetic mean of a non-empty iterable of numbers."""
    total = 0.0
    count = 0
    for v in values:
        total += v
        count += 1
    if count == 0:
        raise ValueError("mean of empty sequence")
    return total / count
