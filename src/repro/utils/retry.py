"""Retry and deadline primitives for fault-tolerant execution.

Long-running entry points (parallel sampling, IMCAF, campaign drivers)
share three small building blocks:

- :class:`Deadline` — a monotonic-clock point in time. Hot loops poll
  ``expired()`` between iterations and degrade gracefully instead of
  hanging; ``check()`` raises
  :class:`~repro.errors.DeadlineExceededError` for callers that have
  nothing partial to return.
- :class:`TimeBudget` — a reusable pot of seconds that only ticks
  inside ``with budget.charge():`` sections, so a solver can be charged
  for its own work but not for time spent in other components.
- :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministically seeded* jitter (via :mod:`repro.rng`), so retry
  schedules are reproducible in tests and benchmarks. The policy is a
  plain picklable dataclass; the parallel sampler ships it unchanged.

Determinism note: jitter randomness never touches any sampling RNG
stream — a retried run produces byte-identical samples because sample
child seeds are pre-drawn before dispatch (see
:mod:`repro.sampling.parallel`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.errors import DeadlineExceededError, SolverError
from repro.rng import make_rng

Clock = Callable[[], float]


class Deadline:
    """A point on the monotonic clock after which work should stop.

    ``Deadline(seconds)`` expires ``seconds`` from construction;
    :meth:`never` builds a deadline that cannot expire (useful as a
    no-op default so call sites avoid ``if deadline is not None``
    branching). The clock is injectable for tests.
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(
        self, seconds: float, clock: Clock = time.monotonic
    ) -> None:
        if seconds < 0:
            raise SolverError(
                f"deadline seconds must be non-negative, got {seconds}"
            )
        self._clock = clock
        self._expires_at = clock() + seconds

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline infinitely far in the future (never expires)."""
        deadline = cls.__new__(cls)
        deadline._clock = time.monotonic
        deadline._expires_at = float("inf")
        return deadline

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired, ``inf`` never)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self._clock() >= self._expires_at

    def check(self, context: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the deadline passed."""
        if self.expired():
            raise DeadlineExceededError(
                f"{context} exceeded its deadline "
                f"(over by {-self.remaining():.3f}s)"
            )

    # -- pickling -------------------------------------------------------
    #
    # ``_expires_at`` is an anchor on *this process's* monotonic clock,
    # whose epoch is unspecified and need not match any other process's
    # (``time.monotonic`` only promises meaningful differences within
    # one process). A deadline shipped raw to a freshly spawned shard
    # worker would therefore measure a different clock and expire
    # arbitrarily early or late. Pickling ships the *remaining budget*
    # plus a wall-clock send stamp instead; unpickling re-anchors on the
    # receiver's monotonic clock, charging the (same-machine) transit
    # time against the budget. Injected test clocks do not survive the
    # trip — the re-anchored deadline always runs on ``time.monotonic``.

    def __getstate__(self) -> dict:
        return {"remaining": self.remaining(), "sent_wall": time.time()}

    def __setstate__(self, state: dict) -> None:
        transit = max(0.0, time.time() - state["sent_wall"])
        remaining = state["remaining"]
        self._clock = time.monotonic
        if remaining == float("inf"):
            self._expires_at = float("inf")
        else:
            self._expires_at = time.monotonic() + remaining - transit

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


def as_deadline(value) -> Optional[Deadline]:
    """Coerce ``None`` / seconds / :class:`Deadline` to a deadline.

    Public entry points accept ``deadline=`` as either a number of
    seconds (convenience) or a pre-built :class:`Deadline` (so one
    budget can span several calls); this normalises both.
    """
    if value is None or isinstance(value, Deadline):
        return value
    if isinstance(value, (int, float)):
        return Deadline(float(value))
    raise SolverError(
        f"deadline must be None, seconds, or a Deadline, got {type(value).__name__}"
    )


class TimeBudget:
    """A pot of seconds consumed only inside ``charge()`` sections.

    Unlike :class:`Deadline` (which ticks continuously), a budget is
    charged explicitly::

        budget = TimeBudget(5.0)
        with budget.charge():
            run_solver_stage()          # elapsed seconds are deducted
        if budget.exhausted():
            return partial_result

    ``deadline()`` converts the *remaining* budget into a
    :class:`Deadline` to hand to a deadline-aware callee.
    """

    def __init__(
        self, seconds: float, clock: Clock = time.monotonic
    ) -> None:
        if seconds < 0:
            raise SolverError(
                f"budget seconds must be non-negative, got {seconds}"
            )
        self._clock = clock
        self._remaining = float(seconds)
        self._charge_started: Optional[float] = None

    def remaining(self) -> float:
        """Unspent seconds (charges in progress are counted live)."""
        live = 0.0
        if self._charge_started is not None:
            live = self._clock() - self._charge_started
        return self._remaining - live

    def exhausted(self) -> bool:
        """Whether the budget has been fully consumed."""
        return self.remaining() <= 0.0

    def deadline(self) -> Deadline:
        """A :class:`Deadline` expiring when the remaining budget would."""
        return Deadline(max(0.0, self.remaining()), clock=self._clock)

    def charge(self) -> "TimeBudget":
        """Context manager deducting the elapsed time of its body."""
        return self

    def __enter__(self) -> "TimeBudget":
        if self._charge_started is not None:
            raise SolverError("TimeBudget.charge() sections cannot nest")
        self._charge_started = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        started = self._charge_started
        self._charge_started = None
        if started is not None:
            self._remaining -= self._clock() - started

    def __repr__(self) -> str:
        return f"TimeBudget(remaining={self.remaining():.3f}s)"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    ``max_attempts`` counts *total* tries (1 = no retry). Delay before
    retry ``i`` (1-based) is ``base_delay * multiplier**(i-1)``, capped
    at ``max_delay``, plus a jitter of up to ``jitter`` of itself drawn
    from a stream seeded by ``seed`` — identical schedules across runs
    for a fixed seed, and no draw from any shared RNG. ``retry_on``
    filters which exception types are retryable; everything else
    propagates immediately.

    The dataclass is frozen and picklable so it can ride along to
    worker processes unchanged.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)
    seed: Optional[int] = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SolverError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise SolverError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise SolverError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SolverError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )

    def delays(self) -> Iterator[float]:
        """The deterministic backoff schedule (one delay per retry).

        Yields ``max_attempts - 1`` values; a fresh iterator always
        replays the identical schedule for a fixed ``seed``.
        """
        rng = make_rng(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(
                self.max_delay, self.base_delay * self.multiplier ** attempt
            )
            yield delay * (1.0 + self.jitter * rng.random())

    def delay_for(self, retry_number: int) -> float:
        """The delay before retry ``retry_number`` (1-based), by index.

        Random access into the same deterministic schedule
        :meth:`delays` yields — callers pacing retries across *events*
        rather than a loop (the cluster supervisor restarting a replica
        per crash incident) ask for the n-th delay directly instead of
        holding an iterator. Raises once the schedule is exhausted
        (``retry_number >= max_attempts``), mirroring the iterator
        running dry.
        """
        if not 1 <= retry_number <= self.max_attempts - 1:
            raise SolverError(
                f"retry_number must be within [1, {self.max_attempts - 1}],"
                f" got {retry_number}"
            )
        for index, delay in enumerate(self.delays(), start=1):
            if index == retry_number:
                return delay
        raise AssertionError("unreachable")  # pragma: no cover

    def retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is covered by ``retry_on``."""
        return isinstance(exc, self.retry_on)

    def call(
        self,
        fn: Callable,
        *args,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        **kwargs,
    ):
        """Invoke ``fn`` with retries; return its first successful result.

        Non-retryable exceptions propagate immediately; retryable ones
        are re-raised once attempts (or the optional ``deadline``) run
        out. ``on_retry(attempt_number, exception)`` is called before
        each backoff sleep — the observability hook tests and loggers
        use.
        """
        delays = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - filtered below
                if not self.retryable(exc) or attempt == self.max_attempts:
                    raise
                if deadline is not None and deadline.expired():
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(next(delays))
        raise AssertionError("unreachable")  # pragma: no cover
