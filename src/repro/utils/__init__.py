"""Small shared utilities: lazy heap, math helpers, timing, validation,
retry/deadline primitives and deterministic fault injection."""

from repro.utils.faults import Fault, FaultInjected, FaultInjector
from repro.utils.heap import LazyMaxHeap
from repro.utils.math import harmonic_number, log_binomial, log_n_choose_k
from repro.utils.retry import Deadline, RetryPolicy, TimeBudget, as_deadline
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_node,
    check_positive,
    check_probability,
    check_seed_budget,
)

__all__ = [
    "LazyMaxHeap",
    "harmonic_number",
    "log_binomial",
    "log_n_choose_k",
    "Stopwatch",
    "Deadline",
    "TimeBudget",
    "RetryPolicy",
    "as_deadline",
    "Fault",
    "FaultInjected",
    "FaultInjector",
    "check_fraction",
    "check_node",
    "check_positive",
    "check_probability",
    "check_seed_budget",
]
