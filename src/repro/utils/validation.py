"""Argument-validation helpers shared by public API entry points.

All helpers raise :class:`ValueError` (or a library-specific error passed
via ``exc``) with actionable messages that name the offending argument.
"""

from __future__ import annotations

from typing import Type


def check_probability(value: float, name: str, exc: Type[Exception] = ValueError) -> float:
    """Require ``0 <= value <= 1``; return ``value``."""
    if not (0.0 <= value <= 1.0):
        raise exc(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_fraction(value: float, name: str, exc: Type[Exception] = ValueError) -> float:
    """Require ``0 < value < 1`` (open interval, e.g. epsilon/delta)."""
    if not (0.0 < value < 1.0):
        raise exc(f"{name} must lie strictly in (0, 1), got {value!r}")
    return value


def check_positive(value, name: str, exc: Type[Exception] = ValueError):
    """Require ``value > 0``; return ``value``."""
    if value <= 0:
        raise exc(f"{name} must be positive, got {value!r}")
    return value


def check_node(node: int, n: int, exc: Type[Exception] = ValueError) -> int:
    """Require ``node`` to be a valid node id for a graph with ``n`` nodes."""
    if not isinstance(node, int) or isinstance(node, bool):
        raise exc(f"node ids must be ints, got {node!r}")
    if not (0 <= node < n):
        raise exc(f"node id {node} out of range for graph with {n} nodes")
    return node


def check_seed_budget(k: int, n: int, exc: Type[Exception] = ValueError) -> int:
    """Require ``1 <= k <= n`` for a seed budget on an ``n``-node graph."""
    if k < 1:
        raise exc(f"seed budget k must be at least 1, got {k}")
    if k > n:
        raise exc(f"seed budget k={k} exceeds the number of nodes n={n}")
    return k
