"""Graph construction helpers.

The paper's experiments use both directed (Wiki-Vote, Epinions, Pokec)
and undirected (Facebook, DBLP) networks; undirected edges are treated as
a pair of directed edges (Section VI-A). These builders encapsulate that
convention and the relabelling needed to obtain dense integer ids.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

EdgeSpec = Tuple[int, int]
WeightedEdgeSpec = Tuple[int, int, float]


def from_edge_list(
    num_nodes: int,
    edges: Iterable[Tuple],
    default_weight: float = 1.0,
) -> DiGraph:
    """Build a directed graph from ``(u, v)`` or ``(u, v, w)`` tuples.

    Tuples without an explicit weight receive ``default_weight``.
    Duplicate edges keep the *last* weight seen.
    """
    graph = DiGraph(num_nodes)
    for edge in edges:
        if len(edge) == 2:
            u, v = edge
            w = default_weight
        elif len(edge) == 3:
            u, v, w = edge
        else:
            raise GraphError(f"edge spec must have 2 or 3 fields, got {edge!r}")
        graph.add_edge(u, v, w)
    return graph


def from_undirected_edge_list(
    num_nodes: int,
    edges: Iterable[Tuple],
    default_weight: float = 1.0,
) -> DiGraph:
    """Build a directed graph from undirected edges.

    Each undirected edge ``{u, v}`` becomes the two directed edges
    ``(u, v)`` and ``(v, u)``, per the paper's convention for undirected
    datasets.
    """
    graph = DiGraph(num_nodes)
    for edge in edges:
        if len(edge) == 2:
            u, v = edge
            w = default_weight
        elif len(edge) == 3:
            u, v, w = edge
        else:
            raise GraphError(f"edge spec must have 2 or 3 fields, got {edge!r}")
        graph.add_edge(u, v, w)
        graph.add_edge(v, u, w)
    return graph


def from_labeled_edges(
    edges: Iterable[Tuple[Hashable, Hashable]],
    directed: bool = True,
    default_weight: float = 1.0,
) -> Tuple[DiGraph, Dict[Hashable, int]]:
    """Build a graph from edges over arbitrary hashable labels.

    Returns ``(graph, label_to_id)``. Node ids are assigned in first-seen
    order, which keeps the mapping deterministic for a deterministic
    input iteration order.
    """
    label_to_id: Dict[Hashable, int] = {}
    staged: List[Tuple[int, int]] = []
    for a, b in edges:
        for label in (a, b):
            if label not in label_to_id:
                label_to_id[label] = len(label_to_id)
        staged.append((label_to_id[a], label_to_id[b]))
    graph = DiGraph(len(label_to_id))
    for u, v in staged:
        if u == v:
            continue
        graph.add_edge(u, v, default_weight)
        if not directed:
            graph.add_edge(v, u, default_weight)
    return graph, label_to_id


def induced_subgraph(
    graph: DiGraph, nodes: Sequence[int]
) -> Tuple[DiGraph, Dict[int, int]]:
    """The subgraph induced by ``nodes``, relabelled to ``0..len(nodes)-1``.

    Returns ``(subgraph, old_to_new)``. Edges keep their weights.
    """
    old_to_new = {old: new for new, old in enumerate(dict.fromkeys(nodes))}
    sub = DiGraph(len(old_to_new))
    for old_u, new_u in old_to_new.items():
        for edge in graph.out_edges(old_u):
            new_v = old_to_new.get(edge.target)
            if new_v is not None:
                sub.add_edge(new_u, new_v, edge.weight)
    return sub, old_to_new


def symmetrized(graph: DiGraph) -> DiGraph:
    """An undirected view as a digraph: each arc mirrored with max weight.

    Used by the Louvain substrate, which optimises undirected modularity;
    for a pre-existing symmetric pair the larger weight wins so the result
    is orientation-independent.
    """
    sym = DiGraph(graph.num_nodes)
    for u, v, w in graph.edges():
        existing = max(sym.weight(u, v), w)
        sym.add_edge(u, v, existing)
        sym.add_edge(v, u, existing)
    return sym
