"""Structural graph analysis: reachability, components, degree stats.

These are substrate utilities used throughout the library: reverse
reachability underlies RIC/RR sampling semantics, SCCs underpin the
inapproximability-reduction tests (strongly-connected gadget clusters),
and degree statistics feed the dataset registry (Table I stand-ins).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, Iterable, List, Optional, Set

from repro.graph.digraph import DiGraph


def forward_reachable(graph: DiGraph, sources: Iterable[int]) -> Set[int]:
    """All nodes reachable from ``sources`` along edge directions (BFS).

    Includes the sources themselves. On a deterministic (live-edge) graph
    this is exactly the set activated by seeding ``sources`` under IC.
    """
    visited: Set[int] = set()
    queue = deque()
    for s in sources:
        if s not in visited:
            visited.add(s)
            queue.append(s)
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if v not in visited:
                visited.add(v)
                queue.append(v)
    return visited


def reverse_reachable(graph: DiGraph, targets: Iterable[int]) -> Set[int]:
    """All nodes that can reach ``targets`` along edge directions.

    Includes the targets themselves. This is the reachable-set notion
    ``R_g(u)`` of the paper restricted to a deterministic graph.
    """
    visited: Set[int] = set()
    queue = deque()
    for t in targets:
        if t not in visited:
            visited.add(t)
            queue.append(t)
    while queue:
        u = queue.popleft()
        for v in graph.in_neighbors(u):
            if v not in visited:
                visited.add(v)
                queue.append(v)
    return visited


def weakly_connected_components(graph: DiGraph) -> List[Set[int]]:
    """Connected components ignoring edge direction, largest first."""
    seen: Set[int] = set()
    components: List[Set[int]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: Set[int] = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            u = queue.popleft()
            for v in graph.out_neighbors(u):
                if v not in seen:
                    seen.add(v)
                    component.add(v)
                    queue.append(v)
            for v in graph.in_neighbors(u):
                if v not in seen:
                    seen.add(v)
                    component.add(v)
                    queue.append(v)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def strongly_connected_components(graph: DiGraph) -> List[Set[int]]:
    """Tarjan's SCC algorithm (iterative), components in reverse
    topological order of the condensation.

    Implemented iteratively so deep graphs do not hit Python's recursion
    limit.
    """
    n = graph.num_nodes
    index_of = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[Set[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Each work-stack frame: (node, iterator position over out-neighbours).
        work: List[List[int]] = [[root, 0]]
        while work:
            frame = work[-1]
            u, child_pos = frame
            if child_pos == 0:
                index_of[u] = counter
                lowlink[u] = counter
                counter += 1
                stack.append(u)
                on_stack[u] = True
            advanced = False
            out = graph.out_neighbors(u)
            while frame[1] < len(out):
                v = out[frame[1]]
                frame[1] += 1
                if index_of[v] == -1:
                    work.append([v, 0])
                    advanced = True
                    break
                if on_stack[v]:
                    lowlink[u] = min(lowlink[u], index_of[v])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[u])
            if lowlink[u] == index_of[u]:
                component: Set[int] = set()
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.add(w)
                    if w == u:
                        break
                components.append(component)
    return components


def degree_histogram(graph: DiGraph, direction: str = "out") -> Dict[int, int]:
    """Histogram ``degree -> node count`` for ``direction`` in {out, in}."""
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    degree = graph.out_degree if direction == "out" else graph.in_degree
    return dict(Counter(degree(v) for v in graph.nodes()))


def average_degree(graph: DiGraph) -> float:
    """Mean out-degree ``m / n`` (0.0 for the empty graph)."""
    if graph.num_nodes == 0:
        return 0.0
    return graph.num_edges / graph.num_nodes


def clustering_coefficient(graph: DiGraph, node: Optional[int] = None) -> float:
    """Local (for ``node``) or average local clustering coefficient.

    Computed on the symmetrised graph: ``C(v) = 2·T(v) / (d(v)(d(v)-1))``
    where ``T(v)`` counts edges among v's neighbours. Social graphs are
    strongly clustered — a property the dataset stand-ins should show.
    """

    # Build symmetric neighbour sets once.
    neighbor_sets: List[Set[int]] = [set() for _ in graph.nodes()]
    for u, v, _ in graph.edges():
        neighbor_sets[u].add(v)
        neighbor_sets[v].add(u)

    def local(v: int) -> float:
        neighbors = neighbor_sets[v]
        d = len(neighbors)
        if d < 2:
            return 0.0
        links = 0
        for a in neighbors:
            links += len(neighbor_sets[a] & neighbors)
        links //= 2  # every neighbour-pair edge counted from both ends
        return 2.0 * links / (d * (d - 1))

    if node is not None:
        return local(node)
    if graph.num_nodes == 0:
        return 0.0
    return sum(local(v) for v in graph.nodes()) / graph.num_nodes


def reciprocity(graph: DiGraph) -> float:
    """Fraction of directed edges with a reciprocal counterpart.

    1.0 for symmetrised/undirected graphs; low for citation-style
    graphs. 0.0 for an edgeless graph.
    """
    if graph.num_edges == 0:
        return 0.0
    mutual = sum(1 for u, v, _ in graph.edges() if graph.has_edge(v, u))
    return mutual / graph.num_edges


def max_degree_nodes(graph: DiGraph, k: int, direction: str = "out") -> List[int]:
    """The ``k`` nodes with largest degree, ties broken by node id."""
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    degree = graph.out_degree if direction == "out" else graph.in_degree
    return sorted(graph.nodes(), key=lambda v: (-degree(v), v))[:k]
