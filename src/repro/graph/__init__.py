"""Graph substrate: probabilistic directed graphs, builders, generators.

The social network is modelled as a directed graph whose edges carry an
influence probability ``w(u, v) ∈ [0, 1]`` (Section II-A of the paper).
This package provides:

- :class:`~repro.graph.digraph.DiGraph` — the core adjacency structure
  with both forward and reverse adjacency (RIC sampling walks in-edges).
- :class:`~repro.graph.csr.FrozenDiGraph` — the immutable CSR snapshot
  (``DiGraph.freeze()``) the array-native sampling/simulation kernels
  traverse; byte-identical results, contiguous storage.
- :mod:`~repro.graph.builders` — construction from edge lists / files,
  undirected-to-directed conversion.
- :mod:`~repro.graph.weights` — edge-weight schemes (weighted-cascade,
  uniform, trivalency).
- :mod:`~repro.graph.generators` — synthetic network generators used as
  stand-ins for the SNAP datasets.
- :mod:`~repro.graph.analysis` — reachability, components, degree stats.
- :mod:`~repro.graph.io` — plain-text edge-list persistence.
"""

from repro.graph.analysis import (
    clustering_coefficient,
    degree_histogram,
    forward_reachable,
    reciprocity,
    reverse_reachable,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.builders import (
    from_edge_list,
    from_undirected_edge_list,
    induced_subgraph,
)
from repro.graph.csr import FrozenDiGraph
from repro.graph.digraph import DiGraph, Edge
from repro.graph.generators import (
    barabasi_albert_graph,
    copying_model_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    planted_partition_graph,
    stochastic_kronecker_graph,
    watts_strogatz_graph,
)
from repro.graph.paths import (
    average_shortest_path_length,
    bfs_distances,
    effective_diameter,
)
from repro.graph.io import read_edge_list, write_dot, write_edge_list
from repro.graph.weights import (
    assign_trivalency_weights,
    assign_uniform_weights,
    assign_weighted_cascade,
)

__all__ = [
    "DiGraph",
    "Edge",
    "FrozenDiGraph",
    "from_edge_list",
    "from_undirected_edge_list",
    "induced_subgraph",
    "assign_weighted_cascade",
    "assign_uniform_weights",
    "assign_trivalency_weights",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "planted_partition_graph",
    "forest_fire_graph",
    "copying_model_graph",
    "stochastic_kronecker_graph",
    "read_edge_list",
    "write_edge_list",
    "write_dot",
    "forward_reachable",
    "reverse_reachable",
    "strongly_connected_components",
    "weakly_connected_components",
    "degree_histogram",
    "clustering_coefficient",
    "reciprocity",
    "bfs_distances",
    "effective_diameter",
    "average_shortest_path_length",
]
