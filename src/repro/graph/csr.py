"""Frozen CSR (compressed sparse row) graph snapshot.

:class:`DiGraph` stores adjacency as per-node Python lists — convenient
while a graph is being built, but every traversal pays for list-object
indirection and the per-edge bookkeeping dicts. Once construction is
done, the hot paths (RIC sampling, RR sampling, IC/LT simulation) only
*read* the structure, so :meth:`DiGraph.freeze` snapshots it into a
:class:`FrozenDiGraph`: in- and out-adjacency packed into contiguous
stdlib ``array('q')`` (offsets, neighbour ids, edge ranks) and
``array('d')`` (weights) buffers.

Two properties make the snapshot kernel-friendly:

- **CSR layout** — the in-edges of node ``u`` live in the half-open
  slice ``in_neighbor_ids[in_offsets[u]:in_offsets[u+1]]`` with weights
  in the parallel ``in_weights`` slice, so a reverse BFS streams through
  one flat buffer instead of chasing per-node list objects.
- **Global edge ranks** — every in-edge (and out-edge) entry carries the
  edge's dense insertion-order id (:meth:`DiGraph.edge_id`), so any
  per-edge state can be a flat ``m``-sized buffer indexed by rank
  instead of a ``(u, v)``-keyed dict. (The RIC sampler's coin memo
  ``st[·]`` turned out to be provably dead — distinct community members
  mean each in-edge is examined at most once per sample — so the kernel
  elides it; the ranks remain for live-edge masks and instrumentation.)

Per-node slice *order* equals the mutable graph's adjacency-list order,
which is what guarantees that samplers and simulators consume their RNG
streams in exactly the same sequence on either representation — frozen
and mutable runs are byte-identical, not merely equal in distribution.

The snapshot is immutable and picklable (worker processes of the
parallel sampling engine receive it as-is). Accessors that exist for
API compatibility (:meth:`FrozenDiGraph.in_adjacency`, ...) return
tuples — genuinely read-only, unlike the aliased lists the mutable
graph hands out — while kernels bypass them and index the raw arrays.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Tuple

from repro.errors import GraphError
from repro.graph.digraph import DiGraph, Edge
from repro.utils.validation import check_node


def _csr_from_lists(
    neighbor_lists: List[List[int]],
    weight_lists: List[List[float]],
) -> Tuple[array, array, array]:
    """Pack per-node parallel lists into ``(offsets, neighbors, weights)``."""
    offsets = array("q", [0] * (len(neighbor_lists) + 1))
    total = 0
    for node, neighbors in enumerate(neighbor_lists):
        total += len(neighbors)
        offsets[node + 1] = total
    neighbors_flat = array("q", [0] * total)
    weights_flat = array("d", [0.0] * total)
    position = 0
    for neighbors, weights in zip(neighbor_lists, weight_lists):
        for v, w in zip(neighbors, weights):
            neighbors_flat[position] = v
            weights_flat[position] = w
            position += 1
    return offsets, neighbors_flat, weights_flat


class FrozenDiGraph:
    """Immutable CSR snapshot of a :class:`DiGraph`.

    Exposes the read surface of :class:`DiGraph` (``num_nodes``,
    ``in_adjacency``, ``out_degree``, ``edges``, ...) so samplers,
    simulators and analysis code accept either representation; the
    compatibility accessors return immutable tuples. Hot kernels use
    the raw CSR buffers instead:

    - ``in_offsets`` / ``in_neighbor_ids`` / ``in_weights`` /
      ``in_edge_ranks`` — reverse adjacency, the RIC/RR sampling layout;
    - ``out_offsets`` / ``out_neighbor_ids`` / ``out_weights`` /
      ``out_edge_ranks`` — forward adjacency, the IC/LT cascade layout.

    ``*_edge_ranks[i]`` is the dense insertion-order edge id of the edge
    stored at flat position ``i`` — the index into any ``m``-sized
    per-edge state array. Construction goes through
    :meth:`DiGraph.freeze` (or :meth:`from_digraph`); there is no
    mutation API, and :meth:`freeze` on a snapshot returns ``self`` so
    freezing is idempotent for callers that accept either kind.
    """

    __slots__ = (
        "_n",
        "_m",
        "out_offsets",
        "out_neighbor_ids",
        "out_weights",
        "out_edge_ranks",
        "in_offsets",
        "in_neighbor_ids",
        "in_weights",
        "in_edge_ranks",
        "_in_pairs",
        "_out_pairs",
    )

    def __init__(self) -> None:
        raise GraphError(
            "FrozenDiGraph cannot be built directly; use DiGraph.freeze() "
            "or FrozenDiGraph.from_digraph(graph)"
        )

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "FrozenDiGraph":
        """Snapshot ``graph`` into CSR arrays (the body of ``freeze()``)."""
        self = object.__new__(cls)
        self._n = graph.num_nodes
        self._m = graph.num_edges
        # Adjacency-list order is preserved verbatim so RNG consumption
        # order is identical on the frozen and mutable representations.
        out_lists = [graph.out_adjacency(u)[0] for u in graph.nodes()]
        out_weight_lists = [graph.out_adjacency(u)[1] for u in graph.nodes()]
        in_lists = [graph.in_adjacency(u)[0] for u in graph.nodes()]
        in_weight_lists = [graph.in_adjacency(u)[1] for u in graph.nodes()]
        self.out_offsets, self.out_neighbor_ids, self.out_weights = (
            _csr_from_lists(out_lists, out_weight_lists)
        )
        self.in_offsets, self.in_neighbor_ids, self.in_weights = (
            _csr_from_lists(in_lists, in_weight_lists)
        )
        out_ranks = array("q", [0] * self._m)
        in_ranks = array("q", [0] * self._m)
        position = 0
        for u, targets in enumerate(out_lists):
            for v in targets:
                out_ranks[position] = graph.edge_id(u, v)
                position += 1
        position = 0
        for v, sources in enumerate(in_lists):
            for u in sources:
                in_ranks[position] = graph.edge_id(u, v)
                position += 1
        self.out_edge_ranks = out_ranks
        self.in_edge_ranks = in_ranks
        self._in_pairs = None
        self._out_pairs = None
        return self

    # ------------------------------------------------------------------
    # DiGraph-compatible read surface
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._m

    def __len__(self) -> int:
        return self._n

    def nodes(self) -> range:
        """Iterate node ids ``0..n-1``."""
        return range(self._n)

    def freeze(self) -> "FrozenDiGraph":
        """Already frozen — returns ``self`` (idempotent)."""
        return self

    def out_degree(self, node: int) -> int:
        """Number of out-edges of ``node``."""
        check_node(node, self._n, GraphError)
        return self.out_offsets[node + 1] - self.out_offsets[node]

    def in_degree(self, node: int) -> int:
        """Number of in-edges of ``node``."""
        check_node(node, self._n, GraphError)
        return self.in_offsets[node + 1] - self.in_offsets[node]

    def out_neighbors(self, node: int) -> Tuple[int, ...]:
        """Targets of out-edges of ``node`` (immutable tuple)."""
        check_node(node, self._n, GraphError)
        lo, hi = self.out_offsets[node], self.out_offsets[node + 1]
        return tuple(self.out_neighbor_ids[lo:hi])

    def in_neighbors(self, node: int) -> Tuple[int, ...]:
        """Sources of in-edges of ``node`` (immutable tuple)."""
        check_node(node, self._n, GraphError)
        lo, hi = self.in_offsets[node], self.in_offsets[node + 1]
        return tuple(self.in_neighbor_ids[lo:hi])

    def out_adjacency(self, node: int) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
        """Parallel ``(targets, weights)`` tuples of out-edges of ``node``.

        Unlike the mutable graph's accessor this returns copies, never
        aliases — safe to hold across calls. Kernels that care about the
        copy cost index ``out_offsets``/``out_neighbor_ids``/
        ``out_weights`` directly instead.
        """
        check_node(node, self._n, GraphError)
        lo, hi = self.out_offsets[node], self.out_offsets[node + 1]
        return tuple(self.out_neighbor_ids[lo:hi]), tuple(self.out_weights[lo:hi])

    def in_adjacency(self, node: int) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
        """Parallel ``(sources, weights)`` tuples of in-edges of ``node``.

        Read-only by construction (tuples); see :meth:`out_adjacency`
        for the direct-array alternative on hot paths.
        """
        check_node(node, self._n, GraphError)
        lo, hi = self.in_offsets[node], self.in_offsets[node + 1]
        return tuple(self.in_neighbor_ids[lo:hi]), tuple(self.in_weights[lo:hi])

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        check_node(source, self._n, GraphError)
        check_node(target, self._n, GraphError)
        lo, hi = self.out_offsets[source], self.out_offsets[source + 1]
        ids = self.out_neighbor_ids
        return any(ids[i] == target for i in range(lo, hi))

    def weight(self, source: int, target: int) -> float:
        """The weight of ``source -> target``; 0.0 when the edge is absent."""
        check_node(source, self._n, GraphError)
        check_node(target, self._n, GraphError)
        lo, hi = self.out_offsets[source], self.out_offsets[source + 1]
        ids = self.out_neighbor_ids
        for i in range(lo, hi):
            if ids[i] == target:
                return self.out_weights[i]
        return 0.0

    def edge_id(self, source: int, target: int) -> int:
        """Dense insertion-order id of an existing edge (see DiGraph)."""
        check_node(source, self._n, GraphError)
        check_node(target, self._n, GraphError)
        lo, hi = self.out_offsets[source], self.out_offsets[source + 1]
        ids = self.out_neighbor_ids
        for i in range(lo, hi):
            if ids[i] == target:
                return self.out_edge_ranks[i]
        raise GraphError(f"edge ({source}, {target}) does not exist")

    def in_pairs(self) -> List[Tuple[Tuple[int, float], ...]]:
        """Per-node traversal cache: ``pairs[v]`` is a tuple of
        ``(source, weight)`` pairs in adjacency order.

        Built lazily on first call and cached on the snapshot — the
        RIC and RR sampling kernels iterate these tuples at C speed
        (``for u, w in pairs[v]``) instead of re-slicing the CSR
        buffers per visit, which would box every int. One cache is
        shared by every sampler over the same snapshot. The cache is
        not pickled (workers rebuild it lazily on first use).
        """
        cache = self._in_pairs
        if cache is None:
            offsets, ids, weights = (
                self.in_offsets, self.in_neighbor_ids, self.in_weights
            )
            cache = self._in_pairs = [
                tuple(zip(ids[offsets[v] : offsets[v + 1]],
                          weights[offsets[v] : offsets[v + 1]]))
                for v in range(self._n)
            ]
        return cache

    def out_pairs(self) -> List[Tuple[Tuple[int, float], ...]]:
        """Forward mirror of :meth:`in_pairs`: ``pairs[u]`` holds
        ``(target, weight)`` pairs — the IC/LT cascade traversal cache."""
        cache = self._out_pairs
        if cache is None:
            offsets, ids, weights = (
                self.out_offsets, self.out_neighbor_ids, self.out_weights
            )
            cache = self._out_pairs = [
                tuple(zip(ids[offsets[u] : offsets[u + 1]],
                          weights[offsets[u] : offsets[u + 1]]))
                for u in range(self._n)
            ]
        return cache

    def out_edges(self, node: int) -> Iterator[Edge]:
        """Iterate out-edges of ``node`` as :class:`Edge` tuples."""
        check_node(node, self._n, GraphError)
        for i in range(self.out_offsets[node], self.out_offsets[node + 1]):
            yield Edge(node, self.out_neighbor_ids[i], self.out_weights[i])

    def in_edges(self, node: int) -> Iterator[Edge]:
        """Iterate in-edges of ``node`` as :class:`Edge` tuples."""
        check_node(node, self._n, GraphError)
        for i in range(self.in_offsets[node], self.in_offsets[node + 1]):
            yield Edge(self.in_neighbor_ids[i], node, self.in_weights[i])

    def edges(self) -> Iterator[Edge]:
        """Iterate all edges in node order (same order as DiGraph)."""
        for u in range(self._n):
            for i in range(self.out_offsets[u], self.out_offsets[u + 1]):
                yield Edge(u, self.out_neighbor_ids[i], self.out_weights[i])

    # ------------------------------------------------------------------
    # Conversions and equality
    # ------------------------------------------------------------------

    def thaw(self) -> DiGraph:
        """Rebuild an equivalent mutable :class:`DiGraph`.

        Edges are re-added in global insertion-rank order so the thawed
        graph's edge ids (and hence a re-freeze) match the original.
        """
        ordered: List[Tuple[int, int, float]] = [(0, 0, 0.0)] * self._m
        for u in range(self._n):
            for i in range(self.out_offsets[u], self.out_offsets[u + 1]):
                ordered[self.out_edge_ranks[i]] = (
                    u, self.out_neighbor_ids[i], self.out_weights[i]
                )
        graph = DiGraph(self._n)
        for u, v, w in ordered:
            graph.add_edge(u, v, w)
        return graph

    def __repr__(self) -> str:
        return f"FrozenDiGraph(n={self._n}, m={self._m})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (FrozenDiGraph, DiGraph)):
            if self._n != other.num_nodes or self._m != other.num_edges:
                return False
            return all(
                other.has_edge(u, v) and abs(other.weight(u, v) - w) < 1e-12
                for u, v, w in self.edges()
            )
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    def __reduce__(self):
        """Pickle via the flat arrays (no mutable-graph round trip)."""
        return (
            _rebuild_frozen,
            (
                self._n,
                self._m,
                self.out_offsets,
                self.out_neighbor_ids,
                self.out_weights,
                self.out_edge_ranks,
                self.in_offsets,
                self.in_neighbor_ids,
                self.in_weights,
                self.in_edge_ranks,
            ),
        )


def _rebuild_frozen(
    n: int,
    m: int,
    out_offsets: array,
    out_neighbor_ids: array,
    out_weights: array,
    out_edge_ranks: array,
    in_offsets: array,
    in_neighbor_ids: array,
    in_weights: array,
    in_edge_ranks: array,
) -> FrozenDiGraph:
    """Unpickle helper: reassemble a snapshot from its arrays."""
    self = object.__new__(FrozenDiGraph)
    self._n = n
    self._m = m
    self.out_offsets = out_offsets
    self.out_neighbor_ids = out_neighbor_ids
    self.out_weights = out_weights
    self.out_edge_ranks = out_edge_ranks
    self.in_offsets = in_offsets
    self.in_neighbor_ids = in_neighbor_ids
    self.in_weights = in_weights
    self.in_edge_ranks = in_edge_ranks
    self._in_pairs = None
    self._out_pairs = None
    return self
