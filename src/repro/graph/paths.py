"""Hop distances and effective diameter.

Small-world distances are a fingerprint of real social networks (and of
the SNAP datasets the stand-ins replace); these utilities measure them:
single-source BFS distances, exact all-pairs statistics on small
graphs, and the sampled *effective diameter* (the 90th-percentile
pairwise distance, SNAP's standard metric) for larger ones.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng


def bfs_distances(
    graph: DiGraph, source: int, directed: bool = True
) -> Dict[int, int]:
    """Hop distance from ``source`` to every reachable node.

    ``directed=False`` traverses edges in both directions (the social-
    distance reading for directed friendship graphs).
    """
    if not (0 <= source < graph.num_nodes):
        raise GraphError(f"source {source} out of range")
    distances = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        neighbors = list(graph.out_neighbors(u))
        if not directed:
            neighbors += list(graph.in_neighbors(u))
        for v in neighbors:
            if v not in distances:
                distances[v] = distances[u] + 1
                queue.append(v)
    return distances


def effective_diameter(
    graph: DiGraph,
    percentile: float = 0.9,
    num_sources: int = 50,
    directed: bool = False,
    seed: SeedLike = None,
) -> float:
    """Sampled effective diameter: the ``percentile``-quantile of the
    finite pairwise hop distances from ``num_sources`` random sources.

    Returns 0.0 for graphs with no reachable pairs. Interpolates
    between integer hop counts like SNAP does.
    """
    if not (0.0 < percentile <= 1.0):
        raise GraphError(f"percentile must be in (0, 1], got {percentile}")
    if num_sources < 1:
        raise GraphError(f"num_sources must be >= 1, got {num_sources}")
    n = graph.num_nodes
    if n == 0:
        return 0.0
    rng = make_rng(seed)
    sources = (
        list(range(n))
        if n <= num_sources
        else rng.sample(range(n), num_sources)
    )
    all_distances: List[int] = []
    for source in sources:
        distances = bfs_distances(graph, source, directed=directed)
        all_distances.extend(d for d in distances.values() if d > 0)
    if not all_distances:
        return 0.0
    all_distances.sort()
    # Linear interpolation at the target rank.
    rank = percentile * (len(all_distances) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(all_distances[low])
    fraction = rank - low
    return all_distances[low] * (1 - fraction) + all_distances[high] * fraction


def average_shortest_path_length(
    graph: DiGraph, directed: bool = False, max_nodes: int = 500
) -> float:
    """Exact mean finite pairwise hop distance (guarded by ``max_nodes``).

    Exact all-pairs BFS is quadratic; the guard keeps accidental use on
    big graphs from hanging.
    """
    n = graph.num_nodes
    if n > max_nodes:
        raise GraphError(
            f"exact all-pairs distances on n={n} exceeds max_nodes="
            f"{max_nodes}; use effective_diameter instead"
        )
    total = 0
    count = 0
    for source in graph.nodes():
        for distance in bfs_distances(graph, source, directed=directed).values():
            if distance > 0:
                total += distance
                count += 1
    return total / count if count else 0.0
