"""Synthetic network generators.

These are the substrate standing in for the SNAP datasets in Table I of
the paper (no network access in this environment). Each generator
produces structural edges with weight 1.0; influence probabilities are
assigned afterwards via :mod:`repro.graph.weights` (the paper uses the
weighted-cascade scheme). All generators are fully seeded.

The stand-ins rely on two properties the paper's qualitative results
depend on:

- heavy-tailed degree distributions (Barabási–Albert, copying model,
  forest fire), and
- modular community structure (planted partition), which makes the
  Louvain partition meaningful.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise GraphError(message)


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    directed: bool = True,
    seed: SeedLike = None,
) -> DiGraph:
    """G(n, p): each ordered (or unordered) pair is an edge with prob. ``p``.

    Uses geometric skipping so the run time is proportional to the number
    of realised edges rather than ``n^2`` when ``p`` is small.
    """
    _require(num_nodes >= 0, f"num_nodes must be non-negative, got {num_nodes}")
    _require(0.0 <= edge_probability <= 1.0, "edge_probability must be in [0, 1]")
    rng = make_rng(seed)
    graph = DiGraph(num_nodes)
    if edge_probability == 0.0 or num_nodes < 2:
        return graph

    if edge_probability >= 1.0:
        for u in range(num_nodes):
            for v in range(num_nodes):
                if u != v and (directed or u < v):
                    graph.add_edge(u, v, 1.0)
                    if not directed:
                        graph.add_edge(v, u, 1.0)
        return graph

    log_q = math.log(1.0 - edge_probability)
    if log_q == 0.0:
        # p below float resolution of (1 - p): effectively zero.
        return graph

    def pair_stream_directed(index: int) -> Tuple[int, int]:
        # Enumerate ordered pairs (u, v), u != v, by flat index.
        u, r = divmod(index, num_nodes - 1)
        v = r if r < u else r + 1
        return u, v

    def pair_stream_undirected(index: int) -> Tuple[int, int]:
        # Enumerate unordered pairs u < v by flat index (triangular),
        # with a correction step to absorb sqrt floating-point error.
        u = int(
            (2 * num_nodes - 1 - math.sqrt((2 * num_nodes - 1) ** 2 - 8 * index)) / 2
        )

        def row_start(row: int) -> int:
            return row * (2 * num_nodes - row - 1) // 2

        while u > 0 and index < row_start(u):
            u -= 1
        while index >= row_start(u + 1):
            u += 1
        offset = index - row_start(u)
        return u, u + 1 + offset

    total = num_nodes * (num_nodes - 1) if directed else num_nodes * (num_nodes - 1) // 2
    decode = pair_stream_directed if directed else pair_stream_undirected
    index = -1
    while True:
        # Geometric jump to the next realised pair.
        gap = int(math.log(max(rng.random(), 1e-300)) / log_q) + 1
        index += gap
        if index >= total:
            break
        u, v = decode(index)
        graph.add_edge(u, v, 1.0)
        if not directed:
            graph.add_edge(v, u, 1.0)
    return graph


def barabasi_albert_graph(
    num_nodes: int,
    edges_per_node: int,
    directed: bool = False,
    seed: SeedLike = None,
) -> DiGraph:
    """Preferential attachment: each new node attaches to ``m`` targets.

    Target selection is proportional to degree via the standard
    repeated-nodes urn. With ``directed=True`` the new node points *at*
    its targets (citation-style), giving a heavy-tailed in-degree
    distribution like Wiki-Vote / Epinions.
    """
    _require(edges_per_node >= 1, "edges_per_node must be >= 1")
    _require(
        num_nodes > edges_per_node,
        f"num_nodes ({num_nodes}) must exceed edges_per_node ({edges_per_node})",
    )
    rng = make_rng(seed)
    graph = DiGraph(num_nodes)
    # Start from a star over the first m+1 nodes so every node has degree >= 1.
    urn: List[int] = []
    core = edges_per_node + 1
    for v in range(1, core):
        graph.add_edge(v, 0, 1.0)
        if not directed:
            graph.add_edge(0, v, 1.0)
        urn.extend((v, 0))
    for new in range(core, num_nodes):
        targets = set()
        while len(targets) < edges_per_node:
            candidate = rng.choice(urn)
            if candidate != new:
                targets.add(candidate)
        for t in targets:
            graph.add_edge(new, t, 1.0)
            if not directed:
                graph.add_edge(t, new, 1.0)
            urn.extend((new, t))
    return graph


def watts_strogatz_graph(
    num_nodes: int,
    neighbors: int,
    rewire_probability: float,
    seed: SeedLike = None,
) -> DiGraph:
    """Small-world ring lattice with random rewiring (undirected).

    ``neighbors`` must be even: each node connects to ``neighbors/2``
    successors on the ring, then each lattice edge is rewired with the
    given probability.
    """
    _require(neighbors % 2 == 0, "neighbors must be even")
    _require(num_nodes > neighbors, "num_nodes must exceed neighbors")
    _require(0.0 <= rewire_probability <= 1.0, "rewire_probability in [0, 1]")
    rng = make_rng(seed)
    half = neighbors // 2
    # Track undirected adjacency during construction to avoid duplicates.
    adjacency: List[set] = [set() for _ in range(num_nodes)]
    for u in range(num_nodes):
        for j in range(1, half + 1):
            v = (u + j) % num_nodes
            adjacency[u].add(v)
            adjacency[v].add(u)
    for u in range(num_nodes):
        for j in range(1, half + 1):
            v = (u + j) % num_nodes
            if v not in adjacency[u]:
                continue  # already rewired away
            if rng.random() < rewire_probability:
                candidates = [
                    w for w in range(num_nodes) if w != u and w not in adjacency[u]
                ]
                if not candidates:
                    continue
                new_v = rng.choice(candidates)
                adjacency[u].discard(v)
                adjacency[v].discard(u)
                adjacency[u].add(new_v)
                adjacency[new_v].add(u)
    graph = DiGraph(num_nodes)
    for u in range(num_nodes):
        for v in adjacency[u]:
            graph.add_edge(u, v, 1.0)
    return graph


def planted_partition_graph(
    community_sizes: Sequence[int],
    p_in: float,
    p_out: float,
    directed: bool = True,
    seed: SeedLike = None,
) -> Tuple[DiGraph, List[List[int]]]:
    """Stochastic block model with planted communities.

    Nodes are grouped into blocks of the given sizes; within-block pairs
    connect with probability ``p_in`` and cross-block pairs with
    ``p_out``. Returns ``(graph, blocks)`` where ``blocks`` lists the
    member ids of each planted community — the ground truth that Louvain
    should approximately recover.
    """
    _require(all(s >= 1 for s in community_sizes), "community sizes must be >= 1")
    _require(0.0 <= p_out <= p_in <= 1.0, "need 0 <= p_out <= p_in <= 1")
    rng = make_rng(seed)
    blocks: List[List[int]] = []
    next_id = 0
    for size in community_sizes:
        blocks.append(list(range(next_id, next_id + size)))
        next_id += size
    n = next_id
    block_of = [0] * n
    for b, members in enumerate(blocks):
        for v in members:
            block_of[v] = b
    graph = DiGraph(n)
    for u in range(n):
        start = 0 if directed else u + 1
        for v in range(start, n):
            if u == v:
                continue
            p = p_in if block_of[u] == block_of[v] else p_out
            if rng.random() < p:
                graph.add_edge(u, v, 1.0)
                if not directed:
                    graph.add_edge(v, u, 1.0)
    return graph, blocks


def forest_fire_graph(
    num_nodes: int,
    forward_probability: float = 0.35,
    backward_probability: float = 0.2,
    seed: SeedLike = None,
) -> DiGraph:
    """Leskovec's forest-fire model (directed).

    Each arriving node picks a random ambassador, links to it, then
    recursively "burns" through the ambassador's out- and in-neighbours
    with geometric fan-out — yielding heavy tails, densification and
    small diameter, the fingerprints of the SNAP social graphs.
    """
    _require(num_nodes >= 1, "num_nodes must be >= 1")
    _require(0.0 <= forward_probability < 1.0, "forward_probability in [0, 1)")
    _require(0.0 <= backward_probability < 1.0, "backward_probability in [0, 1)")
    rng = make_rng(seed)
    graph = DiGraph(num_nodes)

    def geometric(p: float) -> int:
        # Number of successes before failure with success prob p.
        if p <= 0.0:
            return 0
        count = 0
        while rng.random() < p:
            count += 1
        return count

    for new in range(1, num_nodes):
        ambassador = rng.randrange(new)
        burned = {new, ambassador}
        graph.add_edge(new, ambassador, 1.0)
        frontier = [ambassador]
        while frontier:
            current = frontier.pop()
            forward = [
                v for v in graph.out_neighbors(current) if v not in burned
            ]
            backward = [
                v for v in graph.in_neighbors(current) if v not in burned
            ]
            rng.shuffle(forward)
            rng.shuffle(backward)
            picks = forward[: geometric(forward_probability)] + backward[
                : geometric(backward_probability)
            ]
            for v in picks:
                if v in burned:
                    continue
                burned.add(v)
                graph.add_edge(new, v, 1.0)
                frontier.append(v)
    return graph


def stochastic_kronecker_graph(
    levels: int,
    initiator: Sequence[Sequence[float]] = ((0.9, 0.5), (0.5, 0.2)),
    edge_factor: float = 1.0,
    seed: SeedLike = None,
) -> DiGraph:
    """Stochastic Kronecker graph (Leskovec et al.) — directed.

    The generator SNAP itself fits to its social networks: a 2×2
    initiator matrix Kronecker-powered ``levels`` times yields an
    ``n = 2^levels`` node graph with heavy tails, a core-periphery
    structure and small diameter. Uses the fast edge-sampling variant:
    ``edge_factor · (Σ initiator)^levels`` candidate edges are placed by
    descending the recursion, picking a quadrant per level with
    probability proportional to the initiator entries.
    """
    _require(levels >= 1, "levels must be >= 1")
    _require(
        len(initiator) == 2 and all(len(row) == 2 for row in initiator),
        "initiator must be a 2x2 matrix",
    )
    flat = [initiator[0][0], initiator[0][1], initiator[1][0], initiator[1][1]]
    _require(all(0.0 <= p <= 1.0 for p in flat), "initiator entries in [0, 1]")
    total = sum(flat)
    _require(total > 0.0, "initiator must have positive mass")
    _require(edge_factor > 0.0, "edge_factor must be positive")
    rng = make_rng(seed)
    n = 1 << levels
    expected_edges = int(round(edge_factor * (total ** levels)))
    cumulative = []
    running = 0.0
    for p in flat:
        running += p / total
        cumulative.append(running)
    cumulative[-1] = 1.0
    graph = DiGraph(n)
    attempts = 0
    placed = 0
    max_attempts = 20 * max(expected_edges, 1)
    while placed < expected_edges and attempts < max_attempts:
        attempts += 1
        u = v = 0
        for _ in range(levels):
            draw = rng.random()
            quadrant = 0
            while cumulative[quadrant] < draw:
                quadrant += 1
            u = (u << 1) | (quadrant >> 1)
            v = (v << 1) | (quadrant & 1)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, 1.0)
        placed += 1
    return graph


def copying_model_graph(
    num_nodes: int,
    out_degree: int,
    copy_probability: float = 0.5,
    seed: SeedLike = None,
) -> DiGraph:
    """Kleinberg's copying model (directed, heavy-tailed in-degrees).

    Each new node makes ``out_degree`` links; each link either copies a
    random link of a random prototype node (with ``copy_probability``) or
    points at a uniformly random earlier node.
    """
    _require(out_degree >= 1, "out_degree must be >= 1")
    _require(num_nodes > out_degree, "num_nodes must exceed out_degree")
    _require(0.0 <= copy_probability <= 1.0, "copy_probability in [0, 1]")
    rng = make_rng(seed)
    graph = DiGraph(num_nodes)
    core = out_degree + 1
    for u in range(core):
        for v in range(core):
            if u != v:
                graph.add_edge(u, v, 1.0)
    for new in range(core, num_nodes):
        prototype = rng.randrange(new)
        prototype_links = graph.out_neighbors(prototype)
        targets = set()
        attempts = 0
        while len(targets) < out_degree and attempts < 50 * out_degree:
            attempts += 1
            if prototype_links and rng.random() < copy_probability:
                candidate = rng.choice(prototype_links)
            else:
                candidate = rng.randrange(new)
            if candidate != new:
                targets.add(candidate)
        for t in targets:
            graph.add_edge(new, t, 1.0)
    return graph
