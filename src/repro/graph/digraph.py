"""Core probabilistic directed graph.

Nodes are dense integer ids ``0..n-1``. Each directed edge ``(u, v)``
carries an influence probability ``w(u, v)``, the chance that an active
``u`` activates ``v`` under the Independent Cascade model. The structure
keeps *both* out-adjacency (forward diffusion) and in-adjacency (reverse
sampling — Algorithm 1 of the paper walks in-edges), each stored as
parallel lists of neighbour ids and weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import GraphError
from repro.utils.validation import check_node, check_probability


class Edge(NamedTuple):
    """A weighted directed edge ``source -> target`` with probability ``weight``."""

    source: int
    target: int
    weight: float


class DiGraph:
    """A directed graph with per-edge influence probabilities.

    Parallel edges are disallowed: adding ``(u, v)`` twice overwrites the
    weight (matching the paper's ``w: V×V -> [0,1]`` convention where
    ``w_e = 0`` iff the edge is absent). Self-loops are rejected — they
    never affect diffusion (an active node cannot re-activate itself) and
    permitting them would only distort degree-based weight schemes.
    """

    __slots__ = (
        "_n",
        "_out",
        "_out_w",
        "_in",
        "_in_w",
        "_edge_index",
        "_m",
        "_edge_rank_cache",
    )

    def __init__(self, num_nodes: int = 0) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._n = num_nodes
        self._out: List[List[int]] = [[] for _ in range(num_nodes)]
        self._out_w: List[List[float]] = [[] for _ in range(num_nodes)]
        self._in: List[List[int]] = [[] for _ in range(num_nodes)]
        self._in_w: List[List[float]] = [[] for _ in range(num_nodes)]
        # (u, v) -> position of v in _out[u]; also authoritative edge set.
        self._edge_index: Dict[Tuple[int, int], int] = {}
        self._m = 0
        self._edge_rank_cache: Optional[Dict[Tuple[int, int], int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self) -> int:
        """Append a fresh node and return its id."""
        self._out.append([])
        self._out_w.append([])
        self._in.append([])
        self._in_w.append([])
        self._n += 1
        return self._n - 1

    def add_nodes(self, count: int) -> None:
        """Append ``count`` fresh nodes.

        Bulk-extends the four adjacency tables in one shot instead of
        looping :meth:`add_node` — the difference between O(count) list
        appends and four ``extend`` calls matters when synthetic
        generators allocate 100k-node graphs up front.
        """
        if count < 0:
            raise GraphError(f"cannot add a negative number of nodes: {count}")
        self._out.extend([] for _ in range(count))
        self._out_w.extend([] for _ in range(count))
        self._in.extend([] for _ in range(count))
        self._in_w.extend([] for _ in range(count))
        self._n += count

    def add_edge(self, source: int, target: int, weight: float) -> None:
        """Add (or overwrite) the directed edge ``source -> target``.

        ``weight`` must lie in ``[0, 1]``; a zero weight is permitted and
        means the edge never fires (it still counts structurally, which
        matters for degree-based weight schemes applied later).
        """
        check_node(source, self._n, GraphError)
        check_node(target, self._n, GraphError)
        check_probability(weight, "weight", GraphError)
        if source == target:
            raise GraphError(f"self-loops are not allowed (node {source})")
        key = (source, target)
        pos = self._edge_index.get(key)
        if pos is not None:
            self._out_w[source][pos] = weight
            # Locate the mirror entry in the in-adjacency and update it.
            in_pos = self._in[target].index(source)
            self._in_w[target][in_pos] = weight
            return
        self._edge_index[key] = len(self._out[source])
        self._out[source].append(target)
        self._out_w[source].append(weight)
        self._in[target].append(source)
        self._in_w[target].append(weight)
        self._m += 1

    def set_weight(self, source: int, target: int, weight: float) -> None:
        """Overwrite the weight of an existing edge.

        Raises :class:`GraphError` when the edge does not exist, to catch
        silent typos in weight-assignment code.
        """
        if (source, target) not in self._edge_index:
            raise GraphError(f"edge ({source}, {target}) does not exist")
        self.add_edge(source, target, weight)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._m

    def __len__(self) -> int:
        return self._n

    def nodes(self) -> range:
        """Iterate node ids ``0..n-1``."""
        return range(self._n)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        return (source, target) in self._edge_index

    def weight(self, source: int, target: int) -> float:
        """The weight of ``source -> target``; 0.0 when the edge is absent.

        Matches the paper's convention ``w_e = 0`` for ``e ∉ E``.
        """
        pos = self._edge_index.get((source, target))
        if pos is None:
            return 0.0
        return self._out_w[source][pos]

    def out_neighbors(self, node: int) -> List[int]:
        """Targets of out-edges of ``node`` (list view — do not mutate)."""
        check_node(node, self._n, GraphError)
        return self._out[node]

    def in_neighbors(self, node: int) -> List[int]:
        """Sources of in-edges of ``node`` (list view — do not mutate)."""
        check_node(node, self._n, GraphError)
        return self._in[node]

    def out_edges(self, node: int) -> Iterator[Edge]:
        """Iterate out-edges of ``node`` as :class:`Edge` tuples."""
        check_node(node, self._n, GraphError)
        for target, weight in zip(self._out[node], self._out_w[node]):
            yield Edge(node, target, weight)

    def in_edges(self, node: int) -> Iterator[Edge]:
        """Iterate in-edges of ``node`` as :class:`Edge` tuples."""
        check_node(node, self._n, GraphError)
        for source, weight in zip(self._in[node], self._in_w[node]):
            yield Edge(source, node, weight)

    def in_adjacency(self, node: int) -> Tuple[List[int], List[float]]:
        """Parallel ``(sources, weights)`` lists of in-edges of ``node``.

        .. warning:: **Aliasing.** Hot path for RIC sampling: the
           returned lists are the graph's *internal* adjacency storage,
           not copies. Mutating them corrupts the edge index silently.
           Treat them as frozen, or call :meth:`freeze` and use the
           :class:`~repro.graph.csr.FrozenDiGraph` accessors, which
           return genuinely immutable tuples.
        """
        return self._in[node], self._in_w[node]

    def out_adjacency(self, node: int) -> Tuple[List[int], List[float]]:
        """Parallel ``(targets, weights)`` lists of out-edges of ``node``.

        .. warning:: **Aliasing.** Returns the internal lists without
           copying, exactly like :meth:`in_adjacency` — read-only by
           convention on the mutable graph, read-only by construction
           after :meth:`freeze`.
        """
        return self._out[node], self._out_w[node]

    def out_degree(self, node: int) -> int:
        """Number of out-edges of ``node``."""
        check_node(node, self._n, GraphError)
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        """Number of in-edges of ``node``."""
        check_node(node, self._n, GraphError)
        return len(self._in[node])

    def edges(self) -> Iterator[Edge]:
        """Iterate all edges in node order."""
        for u in range(self._n):
            for v, w in zip(self._out[u], self._out_w[u]):
                yield Edge(u, v, w)

    def edge_id(self, source: int, target: int) -> int:
        """A dense, stable integer id for an existing edge.

        Edge ids index per-edge state arrays (e.g. the ``st[·]`` edge
        realisation memo of Algorithm 1). Ids are assigned in insertion
        order and are stable because edges cannot be removed.
        """
        if (source, target) not in self._edge_index:
            raise GraphError(f"edge ({source}, {target}) does not exist")
        # Insertion order == rank in _edge_index (dicts preserve order);
        # rebuild the cached rank map when the graph has grown.
        if self._edge_rank_cache is None or len(self._edge_rank_cache) != self._m:
            self._edge_rank_cache = {
                key: i for i, key in enumerate(self._edge_index)
            }
        return self._edge_rank_cache[(source, target)]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def reversed(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        rev = DiGraph(self._n)
        for u, v, w in self.edges():
            rev.add_edge(v, u, w)
        return rev

    def copy(self) -> "DiGraph":
        """Return a deep structural copy."""
        clone = DiGraph(self._n)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def freeze(self):
        """Snapshot into an immutable CSR :class:`~repro.graph.csr.FrozenDiGraph`.

        The snapshot preserves adjacency order exactly, so samplers and
        simulators consume their RNG streams identically on either
        representation; it is the layout the array-native hot-path
        kernels (RIC/RR sampling, IC/LT cascades) run fastest on. The
        original graph is untouched and may keep growing — the snapshot
        does not follow later mutations.
        """
        from repro.graph.csr import FrozenDiGraph

        return FrozenDiGraph.from_digraph(self)

    def __repr__(self) -> str:
        return f"DiGraph(n={self._n}, m={self._m})"

    # ------------------------------------------------------------------
    # Equality (structural), used by tests and round-trip checks
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if self._n != other._n or self._m != other._m:
            return False
        return all(
            other.has_edge(u, v) and abs(other.weight(u, v) - w) < 1e-12
            for u, v, w in self.edges()
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)
