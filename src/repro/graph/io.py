"""Plain-text edge-list persistence.

Format: an optional header line ``# nodes <n>`` followed by one edge per
line — ``source target [weight]`` — with ``#`` comments allowed anywhere.
This mirrors the SNAP edge-list format the paper's datasets ship in,
extended with an optional weight column.
"""

from __future__ import annotations

import os
from typing import Optional, TextIO, Union

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

PathLike = Union[str, "os.PathLike[str]"]


def write_edge_list(graph: DiGraph, path: PathLike, weights: bool = True) -> None:
    """Write ``graph`` to ``path`` in edge-list format.

    When ``weights`` is true a third column holds each edge probability
    with full ``repr`` precision, so a round-trip is exact.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# nodes {graph.num_nodes}\n")
        for u, v, w in graph.edges():
            if weights:
                fh.write(f"{u} {v} {w!r}\n")
            else:
                fh.write(f"{u} {v}\n")


def write_dot(
    graph: DiGraph,
    path: PathLike,
    communities=None,
    seeds=None,
    max_nodes: int = 2000,
) -> None:
    """Write ``graph`` as GraphViz DOT for visual inspection.

    Optional ``communities`` (a
    :class:`~repro.communities.structure.CommunityStructure`) colors
    nodes by community; optional ``seeds`` renders seed nodes as
    double circles. Edge labels carry the influence probabilities.
    ``max_nodes`` guards against accidentally dumping a huge graph.
    """
    if graph.num_nodes > max_nodes:
        raise GraphError(
            f"refusing to write DOT for {graph.num_nodes} nodes "
            f"(max_nodes={max_nodes}); raise the limit explicitly"
        )
    palette = (
        "lightblue", "lightgreen", "lightsalmon", "khaki", "plum",
        "lightcyan", "wheat", "mistyrose", "palegreen", "lavender",
    )
    seed_set = set(seeds) if seeds is not None else set()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("digraph G {\n  rankdir=LR;\n  node [style=filled];\n")
        for v in graph.nodes():
            attributes = []
            if communities is not None:
                index = communities.community_of(v)
                color = (
                    palette[index % len(palette)]
                    if index is not None
                    else "white"
                )
                attributes.append(f'fillcolor="{color}"')
            else:
                attributes.append('fillcolor="white"')
            if v in seed_set:
                attributes.append("shape=doublecircle")
            fh.write(f"  {v} [{', '.join(attributes)}];\n")
        for u, v, w in graph.edges():
            fh.write(f'  {u} -> {v} [label="{w:.2f}"];\n')
        fh.write("}\n")


def read_edge_list(
    path: PathLike,
    num_nodes: Optional[int] = None,
    default_weight: float = 1.0,
) -> DiGraph:
    """Read a graph from an edge-list file.

    The node count comes from (in priority order) the explicit
    ``num_nodes`` argument, a ``# nodes <n>`` header, or
    ``1 + max node id`` seen in the file.
    """
    header_nodes: Optional[int] = None
    edges = []
    max_id = -1
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "nodes":
                    header_nodes = int(parts[1])
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v [w]', got {line!r}"
                )
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) == 3 else default_weight
            edges.append((u, v, w))
            max_id = max(max_id, u, v)
    n = num_nodes if num_nodes is not None else (
        header_nodes if header_nodes is not None else max_id + 1
    )
    graph = DiGraph(n)
    for u, v, w in edges:
        graph.add_edge(u, v, w)
    return graph
