"""Edge-weight assignment schemes for influence probabilities.

The paper's experiments use the *weighted cascade* scheme:
``w(u, v) = 1 / d_in(v)`` (Section VI-A). The other two schemes are the
standard alternatives from the IM literature, provided for ablations.
All functions mutate the graph in place and return it for chaining.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng
from repro.utils.validation import check_probability


def assign_weighted_cascade(graph: DiGraph) -> DiGraph:
    """Set ``w(u, v) = 1 / d_in(v)`` for every edge (paper's scheme).

    Every node with at least one in-edge has its incoming probabilities
    sum to exactly 1, so in expectation one in-neighbour activates it.
    """
    for v in graph.nodes():
        in_deg = graph.in_degree(v)
        if in_deg == 0:
            continue
        probability = 1.0 / in_deg
        for u in list(graph.in_neighbors(v)):
            graph.set_weight(u, v, probability)
    return graph


def assign_uniform_weights(graph: DiGraph, probability: float) -> DiGraph:
    """Set every edge weight to the same ``probability``."""
    check_probability(probability, "probability", GraphError)
    for u, v, _ in list(graph.edges()):
        graph.set_weight(u, v, probability)
    return graph


def assign_trivalency_weights(
    graph: DiGraph,
    choices: Sequence[float] = (0.1, 0.01, 0.001),
    seed: SeedLike = None,
) -> DiGraph:
    """Assign each edge a weight drawn uniformly from ``choices``.

    The classic TRIVALENCY scheme from the IM literature (e.g. Chen et
    al., KDD'10): each edge independently gets one of three probabilities.
    """
    if not choices:
        raise GraphError("trivalency requires at least one probability choice")
    for p in choices:
        check_probability(p, "choices entry", GraphError)
    rng = make_rng(seed)
    for u, v, _ in list(graph.edges()):
        graph.set_weight(u, v, rng.choice(choices))
    return graph
