"""Process-pool RIC sampling engine with self-healing workers.

Serial RIC generation (:class:`~repro.sampling.ric.RICSampler`) runs one
reverse BFS at a time on a single core, and it dominates the wall-clock
of every solver in this package — IMCAF's exponential-doubling loop is
essentially a sample-generation loop. This module fans batches of
samples out to ``N`` worker processes while preserving *exact*
determinism:

1. The master draws one child-stream seed per sample from its RNG (via
   :meth:`RICSampler.next_sample_seed`), in sample order — the same
   master-stream consumption as serial generation.
2. Child seeds are split into contiguous batches and shipped to workers;
   each worker holds a fork/pickle copy of the (graph, communities)
   instance and materialises each sample purely from its child seed.
3. Workers return *compact tuples* (ints and tuples, not pickled
   ``frozenset``-of-``frozenset`` objects) which the master expands back
   into :class:`RICSample` objects in sample order.

Because a RIC sample is a pure function of ``(instance, child seed)``
and child seeds are drawn identically in both modes,
``ParallelRICSampler(seed=s, workers=n).sample_many(c)`` equals
``RICSampler(seed=s).sample_many(c)`` element-for-element, for every
worker count ``n`` and batch size.

**Fault tolerance.** Worker processes die in production — OOM kills,
segfaults in native extensions, operator mistakes. ``sample_many``
treats that as routine: a crashed pool (``BrokenProcessPool``), a
worker-raised exception, or a batch exceeding ``batch_timeout`` marks
only the *failed* batches for re-dispatch; completed batches are kept,
the executor is rebuilt when broken, and the retry schedule follows a
:class:`~repro.utils.retry.RetryPolicy` (bounded attempts, seeded
backoff jitter). Re-dispatched batches carry the *same* pre-drawn child
seeds, so a run that survived a crash is byte-identical to a crash-free
(or serial) run — determinism is never traded for recovery. When the
same work keeps failing for every allowed attempt the sampler raises
:class:`~repro.errors.WorkerCrashError` with the attempt count.

The engine records a sampling profile (samples/sec, batch sizes, worker
utilisation, plus ``retries`` / ``worker_restarts`` /
``failed_batches``) after each ``sample_many`` call, surfaced by
``solve_imc``'s ``progress`` hook. Deterministic failure testing hooks
in via :class:`~repro.utils.faults.FaultInjector` (see
``fault_injector=``), which ships into workers and can raise, delay or
hard-kill at planned batch coordinates.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.communities.structure import CommunityStructure
from repro.errors import SamplingError, WorkerCrashError
from repro.graph.digraph import DiGraph
from repro.obs import metrics, trace
from repro.obs.session import enabled as _obs_enabled
from repro.rng import SeedLike
from repro.sampling.profile import make_profile
from repro.sampling.ric import RICSample, RICSampler
from repro.utils.faults import FaultInjector
from repro.utils.retry import RetryPolicy

#: Compact wire format for one sample:
#: ``(community_index, threshold, members, reach_sets_as_sorted_tuples)``.
CompactSample = Tuple[int, int, Tuple[int, ...], Tuple[Tuple[int, ...], ...]]

#: One unit of worker work: ``(start_index, child_seeds, attempt)``.
BatchTask = Tuple[int, Sequence[int], int]

#: Default retry schedule for worker recovery: three total attempts
#: with fast, deterministically-jittered backoff.
DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=1.0)


def compact_sample(sample: RICSample) -> CompactSample:
    """Flatten a :class:`RICSample` into the compact tuple wire format.

    Reach sets are sorted so the encoding is canonical: two equal
    samples always serialise to identical bytes.
    """
    return (
        sample.community_index,
        sample.threshold,
        sample.members,
        tuple(tuple(sorted(reach)) for reach in sample.reach_sets),
    )


def expand_sample(compact: CompactSample) -> RICSample:
    """Rebuild a :class:`RICSample` from its compact tuple encoding."""
    community_index, threshold, members, reach_tuples = compact
    return RICSample(
        community_index=community_index,
        threshold=threshold,
        members=tuple(members),
        reach_sets=tuple(frozenset(reach) for reach in reach_tuples),
    )


# ----------------------------------------------------------------------
# Worker-side state. Each worker process builds one template sampler at
# pool start-up (initializer) and reuses it for every batch; the
# template's own RNG stream is never used — every sample is generated
# from an explicit child seed shipped with the batch. The optional
# fault injector is test/benchmark instrumentation: it fires at the
# "generate_batch" site (per batch) and the "sample" site (per sample),
# both with ``start``/``attempt`` coordinates, so crashes can be
# planned deterministically.
# ----------------------------------------------------------------------

_WORKER_SAMPLER: Optional[RICSampler] = None
_WORKER_INJECTOR: Optional[FaultInjector] = None
_WORKER_CAPTURE: bool = False


def _init_worker(
    graph: DiGraph,
    communities: CommunityStructure,
    model: str,
    injector: Optional[FaultInjector] = None,
    capture_spans: bool = False,
) -> None:
    """Process-pool initializer: build this worker's template sampler.

    ``capture_spans`` is the master's instrumentation state at pool
    creation: when true, each batch records a ``ric/worker_batch`` span
    locally and ships it back with the batch result for the master to
    :meth:`~repro.obs.tracer.Tracer.ingest`.
    """
    global _WORKER_SAMPLER, _WORKER_INJECTOR, _WORKER_CAPTURE
    _WORKER_SAMPLER = RICSampler(graph, communities, seed=0, model=model)
    _WORKER_INJECTOR = injector
    _WORKER_CAPTURE = capture_spans


def _materialise_batch(
    sampler: RICSampler,
    injector: Optional[FaultInjector],
    seeds: Sequence[int],
    start: int,
    attempt: int,
) -> List[CompactSample]:
    """Materialise one batch's samples from their child seeds."""
    out: List[CompactSample] = []
    for index, seed in enumerate(seeds):
        if injector is not None:
            injector.fire("sample", start=start, attempt=attempt, index=index)
        out.append(compact_sample(sampler.sample_from_seed(seed)))
    return out


def _generate_batch(
    task: BatchTask,
) -> Tuple[int, float, List[CompactSample], List[Dict[str, Any]]]:
    """Generate one batch of samples from child seeds.

    Returns ``(start_index, worker_seconds, compact_samples, spans)`` so
    the master can reassemble results in order, compute utilisation, and
    merge any worker-side spans into its trace (``spans`` is empty when
    the pool was created without instrumentation).
    """
    start, seeds, attempt = task
    sampler = _WORKER_SAMPLER
    injector = _WORKER_INJECTOR
    if sampler is None:  # pragma: no cover - initializer always ran
        raise SamplingError("parallel sampling worker was not initialised")
    if injector is not None:
        injector.fire("generate_batch", start=start, attempt=attempt)
    spans: List[Dict[str, Any]] = []
    began = time.perf_counter()
    if _WORKER_CAPTURE:
        with trace.capture() as buffer:
            with trace.span(
                "ric/worker_batch",
                start=start, samples=len(seeds), attempt=attempt,
            ):
                out = _materialise_batch(sampler, injector, seeds, start, attempt)
            spans = list(buffer)
    else:
        out = _materialise_batch(sampler, injector, seeds, start, attempt)
    return start, time.perf_counter() - began, out, spans


class ParallelRICSampler:
    """Deterministic, self-healing multi-process drop-in for
    :class:`RICSampler`.

    Exposes the same ``graph`` / ``communities`` / ``model`` attributes
    and the same ``sample`` / ``sample_many`` surface, so
    :class:`~repro.sampling.pool.RICSamplePool` and ``solve_imc`` accept
    it unchanged. ``sample_many`` fans out to a lazily created process
    pool; single samples and small batches are generated inline (the
    dispatch overhead would dwarf the work).

    ``workers=None`` uses ``os.cpu_count()``. For any fixed ``seed`` the
    produced sample sequence is identical across *all* worker counts and
    batch sizes, identical to the serial sampler's, and identical
    whether or not workers crashed along the way (failed batches are
    re-dispatched with the same pre-drawn child seeds).

    ``retry`` bounds crash recovery (default :data:`DEFAULT_RETRY`:
    3 attempts); ``batch_timeout`` (seconds) bounds the wait for any
    single batch result before the batch is declared lost and the pool
    rebuilt; ``fault_injector`` ships a deterministic
    :class:`~repro.utils.faults.FaultInjector` into workers for tests
    and benchmarks.

    The instance owns OS processes: call :meth:`close` (or use it as a
    context manager) when done; the executor is also shut down by
    ``__del__`` as a safety net.
    """

    #: Below this many samples a ``sample_many`` call stays inline.
    MIN_DISPATCH = 16

    def __init__(
        self,
        graph: DiGraph,
        communities: CommunityStructure,
        seed: SeedLike = None,
        model: str = "ic",
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        batch_timeout: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise SamplingError(f"workers must be >= 1, got {workers}")
        if batch_size is not None and batch_size < 1:
            raise SamplingError(f"batch_size must be >= 1, got {batch_size}")
        if batch_timeout is not None and batch_timeout <= 0:
            raise SamplingError(
                f"batch_timeout must be positive, got {batch_timeout}"
            )
        self._serial = RICSampler(graph, communities, seed=seed, model=model)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.batch_size = batch_size
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.batch_timeout = batch_timeout
        self.fault_injector = fault_injector
        self._executor: Optional[ProcessPoolExecutor] = None
        self._profile: Optional[Dict[str, Any]] = None

    # -- RICSampler-compatible surface ---------------------------------

    @property
    def graph(self) -> DiGraph:
        """The sampled graph (shared with the serial template)."""
        return self._serial.graph

    @property
    def communities(self) -> CommunityStructure:
        """The community structure defining sources and thresholds."""
        return self._serial.communities

    @property
    def model(self) -> str:
        """Diffusion model the samples realise (``"ic"`` or ``"lt"``)."""
        return self._serial.model

    def sample(self, community_index: Optional[int] = None) -> RICSample:
        """Generate one sample inline (no dispatch for single draws)."""
        return self._serial.sample(community_index)

    def sample_from_seed(
        self, sample_seed: int, community_index: Optional[int] = None
    ) -> RICSample:
        """Materialise the sample determined by ``sample_seed`` inline."""
        return self._serial.sample_from_seed(sample_seed, community_index)

    def next_sample_seed(self) -> int:
        """Advance the master stream and return the next child seed."""
        return self._serial.next_sample_seed()

    def sample_many(self, count: int) -> List[RICSample]:
        """Generate ``count`` samples, fanning out to worker processes.

        Identical output to ``RICSampler(seed).sample_many(count)`` —
        the master pre-draws the child seed of every sample in order,
        then only the (deterministic) materialisation is parallelised.
        Worker crashes, batch timeouts and worker-raised exceptions are
        healed transparently within the ``retry`` budget; exhaustion
        raises :class:`~repro.errors.WorkerCrashError`.
        """
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        with trace.span(
            "ric/sample_many", samples=count, workers=self.workers
        ) as span:
            began = time.perf_counter()
            seeds = [self._serial.next_sample_seed() for _ in range(count)]
            if self.workers <= 1 or count < self.MIN_DISPATCH:
                span.set(mode="inline")
                samples = [self._serial.sample_from_seed(s) for s in seeds]
                self._record_profile(
                    count, time.perf_counter() - began, mode="inline",
                    batches=1, batch_size=count, busy=None,
                )
                return samples
            batch = self.batch_size or max(1, -(-count // (self.workers * 4)))
            pending: Dict[int, Sequence[int]] = {
                start: seeds[start:start + batch]
                for start in range(0, count, batch)
            }
            num_batches = len(pending)
            span.set(mode="parallel", batches=num_batches, batch_size=batch)
            completed, health = self._dispatch(pending)
            samples: List[RICSample] = []
            busy = 0.0
            for start in sorted(completed):
                worker_seconds, compacts = completed[start]
                busy += worker_seconds
                samples.extend(expand_sample(c) for c in compacts)
            self._record_profile(
                count, time.perf_counter() - began, mode="parallel",
                batches=num_batches, batch_size=batch, busy=busy, **health,
            )
            return samples

    # -- self-healing dispatch -----------------------------------------

    def _dispatch(
        self, pending: Dict[int, Sequence[int]]
    ) -> Tuple[Dict[int, Tuple[float, List[CompactSample]]], Dict[str, Any]]:
        """Run all batches to completion, healing worker failures.

        Returns ``(completed, health)`` where ``completed`` maps batch
        start index to ``(worker_seconds, compact_samples)`` and
        ``health`` carries the retry/restart counters for the profile.
        Batches that fail (crash, timeout, worker exception) are
        re-dispatched with their original child seeds — byte-identical
        results regardless of how many failures were healed.
        """
        policy = self.retry
        delays = policy.delays()
        completed: Dict[int, Tuple[float, List[CompactSample]]] = {}
        failed_batches: Set[int] = set()
        retries = 0
        restarts = 0
        attempt = 0
        last_error: Optional[BaseException] = None
        while pending:
            if attempt > 0:
                retries += len(pending)
                delay = next(delays, 0.0)
                if delay > 0:
                    policy.sleep(delay)
            executor = self._ensure_executor()
            try:
                futures = {
                    executor.submit(
                        _generate_batch, (start, pending[start], attempt)
                    ): start
                    for start in sorted(pending)
                }
            except RuntimeError as exc:
                # close() ran concurrently and shut the executor down.
                raise SamplingError(
                    "parallel sampler was closed while sampling"
                ) from exc
            broken = False
            for future, start in futures.items():
                if broken:
                    # The pool is gone or a worker is wedged: harvest
                    # batches that did finish, fail the rest fast.
                    if future.done() and not future.cancelled():
                        try:
                            s, secs, out, spans = future.result(timeout=0)
                            completed[s] = (secs, out)
                            pending.pop(s, None)
                            trace.ingest(spans)
                        except BaseException as exc:  # noqa: BLE001
                            last_error = exc
                            failed_batches.add(start)
                    else:
                        future.cancel()
                        failed_batches.add(start)
                    continue
                try:
                    s, secs, out, spans = future.result(
                        timeout=self.batch_timeout
                    )
                    completed[s] = (secs, out)
                    pending.pop(s, None)
                    trace.ingest(spans)
                except (BrokenProcessPool, OSError, FuturesTimeoutError) as exc:
                    # Crashed pool, dead pipe, or a batch overrunning its
                    # timeout (still hogging a worker): the executor can
                    # no longer be trusted — rebuild it.
                    last_error = exc
                    failed_batches.add(start)
                    broken = True
                except CancelledError as exc:
                    raise SamplingError(
                        "parallel sampler was closed while sampling"
                    ) from exc
                except BaseException as exc:  # noqa: BLE001 - filtered
                    if not policy.retryable(exc):
                        raise
                    # Worker-raised exception: the pool itself is fine,
                    # only this batch needs another attempt.
                    last_error = exc
                    failed_batches.add(start)
            if broken:
                self._restart_executor()
                restarts += 1
            attempt += 1
            if pending and attempt >= policy.max_attempts:
                raise WorkerCrashError(
                    f"parallel sampling gave up on batches "
                    f"{sorted(pending)} after {attempt} attempts "
                    f"(last error: {last_error!r})",
                    attempts=attempt,
                )
        health = {
            "retries": retries,
            "worker_restarts": restarts,
            "failed_batches": sorted(failed_batches),
            "attempts": attempt,
        }
        return completed, health

    # -- profile -------------------------------------------------------

    def _record_profile(
        self,
        count: int,
        elapsed: float,
        mode: str,
        batches: int,
        batch_size: int,
        busy: Optional[float],
        retries: int = 0,
        worker_restarts: int = 0,
        failed_batches: Optional[List[int]] = None,
        attempts: int = 1,
    ) -> None:
        utilization = None
        if busy is not None and elapsed > 0:
            utilization = min(1.0, busy / (self.workers * elapsed))
        self._profile = make_profile(
            mode,
            count,
            elapsed,
            workers=self.workers,
            batches=batches,
            batch_size=batch_size,
            worker_utilization=utilization,
            retries=retries,
            worker_restarts=worker_restarts,
            failed_batches=failed_batches,
            attempts=attempts,
        )
        metrics.inc("ric.samples.generated", count)
        if retries:
            metrics.inc("parallel.batches.redispatched", retries)
        if worker_restarts:
            metrics.inc("parallel.worker.restarts", worker_restarts)

    def last_profile(self) -> Optional[Dict[str, Any]]:
        """Profile of the most recent ``sample_many`` call.

        The dict has the unified sampling-profile schema
        (:data:`repro.sampling.profile.PROFILE_KEYS`) — the same key set
        the serial sampler emits. Here ``mode`` is ``"parallel"`` or
        ``"inline"``, ``worker_utilization`` is the fraction of worker
        wall-clock spent generating (``None`` inline), and the
        self-healing counters are live: ``retries`` (batch
        re-dispatches), ``worker_restarts`` (executor rebuilds),
        ``failed_batches`` (start indices that failed at least once) and
        ``attempts`` (dispatch rounds). ``None`` before the first call.
        """
        return self._profile

    # -- lifecycle -----------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.graph,
                    self.communities,
                    self.model,
                    self.fault_injector,
                    _obs_enabled(),
                ),
            )
        return self._executor

    def _restart_executor(self) -> None:
        """Tear down a broken pool so the next round starts fresh."""
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        Queued batches are cancelled (``cancel_futures=True``) so a
        mid-flight ``sample_many`` — e.g. on another thread during
        interpreter shutdown — fails fast with ``SamplingError`` instead
        of blocking exit behind unstarted work.
        """
        if self._executor is not None:
            self._executor.shutdown(cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ParallelRICSampler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
