"""Process-pool RIC sampling engine.

Serial RIC generation (:class:`~repro.sampling.ric.RICSampler`) runs one
reverse BFS at a time on a single core, and it dominates the wall-clock
of every solver in this package — IMCAF's exponential-doubling loop is
essentially a sample-generation loop. This module fans batches of
samples out to ``N`` worker processes while preserving *exact*
determinism:

1. The master draws one child-stream seed per sample from its RNG (via
   :meth:`RICSampler.next_sample_seed`), in sample order — the same
   master-stream consumption as serial generation.
2. Child seeds are split into contiguous batches and shipped to workers;
   each worker holds a fork/pickle copy of the (graph, communities)
   instance and materialises each sample purely from its child seed.
3. Workers return *compact tuples* (ints and tuples, not pickled
   ``frozenset``-of-``frozenset`` objects) which the master expands back
   into :class:`RICSample` objects in sample order.

Because a RIC sample is a pure function of ``(instance, child seed)``
and child seeds are drawn identically in both modes,
``ParallelRICSampler(seed=s, workers=n).sample_many(c)`` equals
``RICSampler(seed=s).sample_many(c)`` element-for-element, for every
worker count ``n`` and batch size. The engine also records a sampling
profile (samples/sec, batch sizes, worker utilisation) after each
``sample_many`` call, surfaced by ``solve_imc``'s ``progress`` hook.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.communities.structure import CommunityStructure
from repro.errors import SamplingError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike
from repro.sampling.ric import RICSample, RICSampler

#: Compact wire format for one sample:
#: ``(community_index, threshold, members, reach_sets_as_sorted_tuples)``.
CompactSample = Tuple[int, int, Tuple[int, ...], Tuple[Tuple[int, ...], ...]]


def compact_sample(sample: RICSample) -> CompactSample:
    """Flatten a :class:`RICSample` into the compact tuple wire format.

    Reach sets are sorted so the encoding is canonical: two equal
    samples always serialise to identical bytes.
    """
    return (
        sample.community_index,
        sample.threshold,
        sample.members,
        tuple(tuple(sorted(reach)) for reach in sample.reach_sets),
    )


def expand_sample(compact: CompactSample) -> RICSample:
    """Rebuild a :class:`RICSample` from its compact tuple encoding."""
    community_index, threshold, members, reach_tuples = compact
    return RICSample(
        community_index=community_index,
        threshold=threshold,
        members=tuple(members),
        reach_sets=tuple(frozenset(reach) for reach in reach_tuples),
    )


# ----------------------------------------------------------------------
# Worker-side state. Each worker process builds one template sampler at
# pool start-up (initializer) and reuses it for every batch; the
# template's own RNG stream is never used — every sample is generated
# from an explicit child seed shipped with the batch.
# ----------------------------------------------------------------------

_WORKER_SAMPLER: Optional[RICSampler] = None


def _init_worker(
    graph: DiGraph, communities: CommunityStructure, model: str
) -> None:
    """Process-pool initializer: build this worker's template sampler."""
    global _WORKER_SAMPLER
    _WORKER_SAMPLER = RICSampler(graph, communities, seed=0, model=model)


def _generate_batch(
    task: Tuple[int, Sequence[int]]
) -> Tuple[int, float, List[CompactSample]]:
    """Generate one batch of samples from child seeds.

    Returns ``(start_index, worker_seconds, compact_samples)`` so the
    master can reassemble results in order and compute utilisation.
    """
    start, seeds = task
    sampler = _WORKER_SAMPLER
    if sampler is None:  # pragma: no cover - initializer always ran
        raise SamplingError("parallel sampling worker was not initialised")
    began = time.perf_counter()
    out = [compact_sample(sampler.sample_from_seed(s)) for s in seeds]
    return start, time.perf_counter() - began, out


class ParallelRICSampler:
    """Deterministic multi-process drop-in for :class:`RICSampler`.

    Exposes the same ``graph`` / ``communities`` / ``model`` attributes
    and the same ``sample`` / ``sample_many`` surface, so
    :class:`~repro.sampling.pool.RICSamplePool` and ``solve_imc`` accept
    it unchanged. ``sample_many`` fans out to a lazily created process
    pool; single samples and small batches are generated inline (the
    dispatch overhead would dwarf the work).

    ``workers=None`` uses ``os.cpu_count()``. For any fixed ``seed`` the
    produced sample sequence is identical across *all* worker counts and
    batch sizes, and identical to the serial sampler's.

    The instance owns OS processes: call :meth:`close` (or use it as a
    context manager) when done; the executor is also shut down by
    ``__del__`` as a safety net.
    """

    #: Below this many samples a ``sample_many`` call stays inline.
    MIN_DISPATCH = 16

    def __init__(
        self,
        graph: DiGraph,
        communities: CommunityStructure,
        seed: SeedLike = None,
        model: str = "ic",
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise SamplingError(f"workers must be >= 1, got {workers}")
        if batch_size is not None and batch_size < 1:
            raise SamplingError(f"batch_size must be >= 1, got {batch_size}")
        self._serial = RICSampler(graph, communities, seed=seed, model=model)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.batch_size = batch_size
        self._executor: Optional[ProcessPoolExecutor] = None
        self._profile: Optional[Dict[str, Any]] = None

    # -- RICSampler-compatible surface ---------------------------------

    @property
    def graph(self) -> DiGraph:
        """The sampled graph (shared with the serial template)."""
        return self._serial.graph

    @property
    def communities(self) -> CommunityStructure:
        """The community structure defining sources and thresholds."""
        return self._serial.communities

    @property
    def model(self) -> str:
        """Diffusion model the samples realise (``"ic"`` or ``"lt"``)."""
        return self._serial.model

    def sample(self, community_index: Optional[int] = None) -> RICSample:
        """Generate one sample inline (no dispatch for single draws)."""
        return self._serial.sample(community_index)

    def sample_from_seed(
        self, sample_seed: int, community_index: Optional[int] = None
    ) -> RICSample:
        """Materialise the sample determined by ``sample_seed`` inline."""
        return self._serial.sample_from_seed(sample_seed, community_index)

    def next_sample_seed(self) -> int:
        """Advance the master stream and return the next child seed."""
        return self._serial.next_sample_seed()

    def sample_many(self, count: int) -> List[RICSample]:
        """Generate ``count`` samples, fanning out to worker processes.

        Identical output to ``RICSampler(seed).sample_many(count)`` —
        the master pre-draws the child seed of every sample in order,
        then only the (deterministic) materialisation is parallelised.
        """
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        began = time.perf_counter()
        seeds = [self._serial.next_sample_seed() for _ in range(count)]
        if self.workers <= 1 or count < self.MIN_DISPATCH:
            samples = [self._serial.sample_from_seed(s) for s in seeds]
            self._record_profile(
                count, time.perf_counter() - began, mode="inline",
                batches=1, batch_size=count, busy=None,
            )
            return samples
        batch = self.batch_size or max(1, -(-count // (self.workers * 4)))
        tasks = [
            (start, seeds[start:start + batch])
            for start in range(0, count, batch)
        ]
        executor = self._ensure_executor()
        results = list(executor.map(_generate_batch, tasks))
        results.sort(key=lambda item: item[0])
        samples: List[RICSample] = []
        busy = 0.0
        for _, worker_seconds, compacts in results:
            busy += worker_seconds
            samples.extend(expand_sample(c) for c in compacts)
        self._record_profile(
            count, time.perf_counter() - began, mode="parallel",
            batches=len(tasks), batch_size=batch, busy=busy,
        )
        return samples

    # -- profile -------------------------------------------------------

    def _record_profile(
        self,
        count: int,
        elapsed: float,
        mode: str,
        batches: int,
        batch_size: int,
        busy: Optional[float],
    ) -> None:
        utilization = None
        if busy is not None and elapsed > 0:
            utilization = min(1.0, busy / (self.workers * elapsed))
        self._profile = {
            "mode": mode,
            "samples": count,
            "elapsed_seconds": elapsed,
            "samples_per_sec": count / elapsed if elapsed > 0 else float("inf"),
            "workers": self.workers,
            "batches": batches,
            "batch_size": batch_size,
            "worker_utilization": utilization,
        }

    def last_profile(self) -> Optional[Dict[str, Any]]:
        """Profile of the most recent ``sample_many`` call.

        Keys: ``mode`` (``"parallel"`` or ``"inline"``), ``samples``,
        ``elapsed_seconds``, ``samples_per_sec``, ``workers``,
        ``batches``, ``batch_size`` and ``worker_utilization`` (fraction
        of worker wall-clock spent generating; ``None`` inline).
        ``None`` before the first call.
        """
        return self._profile

    # -- lifecycle -----------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.graph, self.communities, self.model),
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelRICSampler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
