"""Sample pools with inverted indexes.

MAXR solvers repeatedly ask "which (sample, member) pairs does node v
cover?". The pools answer that in O(#pairs) via inverted indexes that
are maintained incrementally, so IMCAF's exponential doubling reuses all
previously generated samples.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import SamplingError
from repro.obs import metrics
from repro.sampling.ric import RICSample, RICSampler
from repro.sampling.rr import RRSampler


class RICSamplePool:
    """A growing collection ``R`` of RIC samples plus inverted indexes.

    Indexes maintained per added sample:

    - ``coverage_of(v)`` — list of ``(sample_idx, member_idx)`` pairs
      with ``v ∈ R_g(u)`` (drives marginal-gain computation),
    - ``touch_counts`` — per-node number of *distinct* samples touched
      (MAF's node-appearance frequency),
    - ``community_counts`` — per-community source frequency in ``R``
      (MAF's community frequency).
    """

    def __init__(self, sampler: RICSampler) -> None:
        # Any object with the RICSampler surface works, notably
        # repro.sampling.parallel.ParallelRICSampler.
        self.sampler = sampler
        self.samples: List[RICSample] = []
        self._coverage: Dict[int, List[Tuple[int, int]]] = {}
        self._touch_counts: Dict[int, int] = {}
        self._community_counts: Dict[int, int] = {}
        # Persistent intern table (reach-set value -> canonical object)
        # plus a watermark of how many samples compact() has already
        # processed. Together they make the compact -> add -> compact
        # top-up cycle O(new samples) instead of O(pool) per pass, and
        # guarantee a reach set is interned exactly once: the canonical
        # representative chosen on first sight never changes, so a
        # re-compact can never re-point references ("double-intern").
        self._intern: Dict[FrozenSet[int], FrozenSet[int]] = {}
        self._interned_through = 0
        self._reach_sets_total = 0
        self._pending_rewrites = 0

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def total_benefit(self) -> float:
        """``b`` of the underlying community structure."""
        return self.sampler.communities.total_benefit

    def add(self, sample: RICSample) -> None:
        """Append one sample and update all indexes.

        A pool sealed by :meth:`compact` may keep growing: appending to
        a node whose coverage entry was frozen into a tuple thaws that
        entry back into a list (re-run :meth:`compact` to re-seal).
        """
        index = len(self.samples)
        if self._interned_through:
            # The pool has been compacted at least once: intern the new
            # sample's reach sets eagerly against the persistent table,
            # so a server's compact -> add -> compact top-up loop never
            # accumulates duplicate frozensets between seals.
            sample = self._intern_sample(sample)
        self.samples.append(sample)
        coverage = self._coverage
        touched: Set[int] = set()
        for member_idx, reach in enumerate(sample.reach_sets):
            for node in reach:
                entry = coverage.get(node)
                if entry is None:
                    coverage[node] = [(index, member_idx)]
                elif type(entry) is tuple:
                    thawed = list(entry)
                    thawed.append((index, member_idx))
                    coverage[node] = thawed
                else:
                    entry.append((index, member_idx))
                touched.add(node)
        self._reach_sets_total += len(sample.reach_sets)
        for node in touched:
            self._touch_counts[node] = self._touch_counts.get(node, 0) + 1
        self._community_counts[sample.community_index] = (
            self._community_counts.get(sample.community_index, 0) + 1
        )

    def add_many(self, samples: Iterable[RICSample]) -> None:
        """Append a batch of samples, updating indexes incrementally."""
        for sample in samples:
            self.add(sample)

    def grow(self, count: int) -> None:
        """Generate and add ``count`` fresh samples.

        Delegates generation to ``sampler.sample_many`` so batching
        engines (:class:`~repro.sampling.parallel.ParallelRICSampler`)
        fan the whole request out to their workers at once; the inverted
        indexes are still updated incrementally per sample.
        """
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        self.add_many(self.sampler.sample_many(count))

    def grow_to(self, target: int) -> None:
        """Grow the pool until it holds at least ``target`` samples."""
        self.grow(max(0, target - len(self.samples)))

    def coverage_of(self, node: int) -> Sequence[Tuple[int, int]]:
        """``(sample_idx, member_idx)`` pairs covered by ``node``.

        .. warning:: **Aliasing.** On a pool that has not been sealed
           by :meth:`compact`, this returns the *internal* index list,
           not a copy — mutating it corrupts the inverted index
           silently. After :meth:`compact` the entry is an immutable
           tuple (read-only by construction), which is what the
           coverage engines consume.
        """
        return self._coverage.get(node, ())

    def _intern_sample(self, sample: RICSample) -> RICSample:
        """Rewrite ``sample``'s reach sets through the intern table.

        Returns the same object (fields rewritten in place when any
        reference changed); counts rewrites in ``_pending_rewrites`` so
        the next :meth:`compact` can report them.
        """
        intern = self._intern
        new_sets = []
        changed = False
        for reach in sample.reach_sets:
            kept = intern.setdefault(reach, reach)
            if kept is not reach:
                changed = True
                self._pending_rewrites += 1
            new_sets.append(kept)
        if changed:
            # RICSample is a frozen dataclass; rewriting the field
            # through object.__setattr__ preserves value equality
            # while sharing the canonical frozensets.
            object.__setattr__(sample, "reach_sets", tuple(new_sets))
        return sample

    def compact(self) -> Dict[str, int]:
        """Intern duplicate reach sets and seal the inverted index.

        Two effects, both idempotent:

        - **Reach-set interning** — RIC samples over a common graph
          repeat reach sets constantly (a node with one realised
          in-path yields the same frozenset in many samples). Keeping
          one canonical frozenset per distinct value (frozenset → id
          mapping) drops the duplicates' memory and makes later
          equality checks pointer comparisons. Samples are rewritten
          in place to reference the canonical objects; values are
          unchanged, so estimators and golden results are unaffected.
        - **Index sealing** — every coverage entry is converted from a
          list to an immutable tuple, so engine compile passes cannot
          accidentally mutate the index they iterate
          (:meth:`coverage_of` documents the aliasing hazard on the
          unsealed path).

        The intern table persists across calls and samples already
        processed are watermarked, so the serving top-up cycle
        ``compact() -> add() -> compact()`` costs O(new samples + nodes)
        per pass, not O(pool): canonical representatives never change
        between passes, samples appended after the first seal are
        interned eagerly by :meth:`add`, and a no-op re-compact reports
        ``interned_duplicates == 0``.

        Returns a stats dict: ``reach_sets`` (total), ``unique_reach_sets``,
        ``interned_duplicates`` (references rewritten to a canonical
        object since the previous seal), and ``coverage_entries``.
        """
        for sample in self.samples[self._interned_through:]:
            self._intern_sample(sample)
        self._interned_through = len(self.samples)
        rewritten, self._pending_rewrites = self._pending_rewrites, 0
        entries = 0
        for node, pairs in self._coverage.items():
            entries += len(pairs)
            if type(pairs) is list:
                self._coverage[node] = tuple(pairs)
        metrics.inc("pool.compactions")
        metrics.set_gauge("pool.coverage_entries", entries)
        return {
            "reach_sets": self._reach_sets_total,
            "unique_reach_sets": len(self._intern),
            "interned_duplicates": rewritten,
            "coverage_entries": entries,
        }

    def touch_count(self, node: int) -> int:
        """Number of distinct samples ``node`` touches (MAF frequency)."""
        return self._touch_counts.get(node, 0)

    def touching_nodes(self) -> List[int]:
        """All nodes that touch at least one sample."""
        return list(self._touch_counts)

    def community_count(self, community_index: int) -> int:
        """How many samples have ``community_index`` as their source."""
        return self._community_counts.get(community_index, 0)

    def community_counts(self) -> Dict[int, int]:
        """Copy of the per-community source-frequency map."""
        return dict(self._community_counts)

    def samples_touched_by(self, node: int) -> List[int]:
        """Sorted distinct sample indices touched by ``node`` (``G_R(u)``)."""
        return sorted({sample_idx for sample_idx, _ in self.coverage_of(node)})

    def stats(self) -> Dict[str, float]:
        """Diagnostic summary of the pool.

        Returns sample count, mean/max reach-set size, mean members per
        sample, the number of distinct touching nodes, and the most
        frequent source community's share — the numbers to look at when
        sampling cost or solver behaviour surprises you.
        """
        if not self.samples:
            return {
                "num_samples": 0.0,
                "mean_reach_size": 0.0,
                "max_reach_size": 0.0,
                "mean_members": 0.0,
                "touching_nodes": 0.0,
                "top_source_share": 0.0,
            }
        reach_sizes = [
            len(reach)
            for sample in self.samples
            for reach in sample.reach_sets
        ]
        return {
            "num_samples": float(len(self.samples)),
            "mean_reach_size": sum(reach_sizes) / len(reach_sizes),
            "max_reach_size": float(max(reach_sizes)),
            "mean_members": sum(len(s.members) for s in self.samples)
            / len(self.samples),
            "touching_nodes": float(len(self._touch_counts)),
            "top_source_share": max(self._community_counts.values())
            / len(self.samples),
        }

    # ------------------------------------------------------------------
    # Objective evaluation on the pool
    # ------------------------------------------------------------------

    def influenced_count(self, seeds: Iterable[int]) -> int:
        """``Σ_g X_g(S)`` — samples influenced by ``seeds``."""
        seed_set = set(seeds)
        covered: Dict[int, Set[int]] = {}
        for v in seed_set:
            for sample_idx, member_idx in self.coverage_of(v):
                covered.setdefault(sample_idx, set()).add(member_idx)
        return sum(
            1
            for sample_idx, members in covered.items()
            if len(members) >= self.samples[sample_idx].threshold
        )

    def influenced_count_by_community(
        self, seeds: Iterable[int]
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Per-source-community split of :meth:`influenced_count`.

        Returns ``(seen, influenced)``: how many pool samples each
        community sourced, and how many of those ``seeds`` influence.
        Same single pass over the coverage index as
        :meth:`influenced_count`; backs the per-community
        activation-probability diagnostics in
        :mod:`repro.obs.diagnostics`.
        """
        seed_set = set(seeds)
        covered: Dict[int, Set[int]] = {}
        for v in seed_set:
            for sample_idx, member_idx in self.coverage_of(v):
                covered.setdefault(sample_idx, set()).add(member_idx)
        influenced: Dict[int, int] = {}
        for sample_idx, members in covered.items():
            sample = self.samples[sample_idx]
            if len(members) >= sample.threshold:
                influenced[sample.community_index] = (
                    influenced.get(sample.community_index, 0) + 1
                )
        return dict(self._community_counts), influenced

    def estimate_benefit(self, seeds: Iterable[int]) -> float:
        """``ĉ_R(S) = (b/|R|) Σ_g X_g(S)`` (eq. 3). 0.0 on an empty pool."""
        if not self.samples:
            return 0.0
        return self.total_benefit * self.influenced_count(seeds) / len(self.samples)

    def fractional_count(self, seeds: Iterable[int]) -> float:
        """``Σ_g min(|I_g(S)|/h_g, 1)`` — the ν numerator (eq. 7)."""
        seed_set = set(seeds)
        covered: Dict[int, Set[int]] = {}
        for v in seed_set:
            for sample_idx, member_idx in self.coverage_of(v):
                covered.setdefault(sample_idx, set()).add(member_idx)
        return sum(
            min(len(members) / self.samples[sample_idx].threshold, 1.0)
            for sample_idx, members in covered.items()
        )

    def estimate_upper_bound(self, seeds: Iterable[int]) -> float:
        """``ν_R(S) = (b/|R|) Σ_g min(|I_g(S)|/h_g, 1)`` (eq. 7)."""
        if not self.samples:
            return 0.0
        return self.total_benefit * self.fractional_count(seeds) / len(self.samples)


class RRSamplePool:
    """A growing collection of classic RR sets with a node index."""

    def __init__(self, sampler: RRSampler) -> None:
        self.sampler = sampler
        self.samples: List[FrozenSet[int]] = []
        self._membership: Dict[int, List[int]] = {}

    def __len__(self) -> int:
        return len(self.samples)

    def add(self, rr_set: FrozenSet[int]) -> None:
        """Append one RR set and index its members."""
        index = len(self.samples)
        self.samples.append(rr_set)
        for node in rr_set:
            self._membership.setdefault(node, []).append(index)

    def grow(self, count: int) -> None:
        """Generate and add ``count`` fresh RR sets."""
        if count < 0:
            raise SamplingError(f"count must be non-negative, got {count}")
        for _ in range(count):
            self.add(self.sampler.sample())

    def sets_containing(self, node: int) -> Sequence[int]:
        """Indices of RR sets containing ``node``."""
        return self._membership.get(node, ())

    def coverage(self, seeds: Iterable[int]) -> int:
        """Number of RR sets hit by ``seeds``."""
        hit: Set[int] = set()
        for v in set(seeds):
            hit.update(self.sets_containing(v))
        return len(hit)

    def estimate_spread(self, seeds: Iterable[int]) -> float:
        """``σ̂(S) = n · coverage / |R|``; 0.0 on an empty pool."""
        if not self.samples:
            return 0.0
        return (
            self.sampler.graph.num_nodes
            * self.coverage(seeds)
            / len(self.samples)
        )
