"""Sampling substrate: RIC samples (Algorithm 1), RR sets, pools.

The Reverse Influenceable Community (RIC) sample is the paper's key
estimation device: pick a source community ``C_g`` with probability
``ρ(C_i) = b_i / b``, realise a deterministic sample graph lazily by
reverse BFS from ``C_g``, and record for every member ``u ∈ C_g`` its
reachable set ``R_g(u)`` (nodes that can reach ``u``). Then
``c(S) = b · E[X_g(S)]`` where ``X_g(S) = 1`` iff ``S`` intersects the
reach sets of at least ``h_g`` members (Lemma 1).

Classic RR sets (Reverse Influence Sampling) are included for the IM
baseline: ``σ(S) = n · E[1_{R ∩ S ≠ ∅}]``.
"""

from repro.sampling.parallel import ParallelRICSampler
from repro.sampling.pool import RICSamplePool, RRSamplePool
from repro.sampling.ric import RICSample, RICSampler
from repro.sampling.rr import RRSampler

__all__ = [
    "RICSample",
    "RICSampler",
    "ParallelRICSampler",
    "RRSampler",
    "RICSamplePool",
    "RRSamplePool",
]
