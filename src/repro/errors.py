"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples include referencing a node outside ``range(n)``, adding an
    edge with a probability outside ``[0, 1]``, or loading a malformed
    edge-list file.
    """


class CommunityError(ReproError):
    """Raised for invalid community structures.

    A valid structure partitions a subset of ``V`` into *disjoint*
    communities with positive thresholds not exceeding the community size
    and non-negative benefits.
    """


class SamplingError(ReproError):
    """Raised when RIC / RR sample generation receives invalid input."""


class WorkerCrashError(SamplingError):
    """Raised when parallel sampling exhausts its retry budget.

    The self-healing :class:`~repro.sampling.parallel.ParallelRICSampler`
    transparently restarts crashed worker pools and re-dispatches failed
    batches; only when the same work keeps failing for every attempt
    allowed by its :class:`~repro.utils.retry.RetryPolicy` does this
    error surface. ``attempts`` records how many dispatch rounds ran.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class DeadlineExceededError(ReproError):
    """Raised when a time budget expires before *any* result exists.

    Deadline-aware entry points (``solve_imc``, the MAXR solvers) prefer
    graceful degradation — they return the best-so-far seed set marked
    ``truncated`` — and raise this error only when the deadline expired
    before a single seed could be selected, so callers never receive a
    silently-empty "result".
    """


class SolverError(ReproError):
    """Raised when a MAXR / IMC solver is mis-configured.

    Examples: ``k`` larger than the number of nodes, a bounded-threshold
    algorithm (BT/MB) applied to an instance whose thresholds exceed its
    declared bound, or an empty sample pool handed to a solver that
    requires one.
    """


class EstimationError(ReproError):
    """Raised when a Monte-Carlo estimator is given invalid parameters."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid dataset specs."""


class ExperimentError(ReproError):
    """Raised for malformed experiment configurations."""


class ServingError(ReproError):
    """Raised for invalid requests to the :mod:`repro.serving` layer.

    Examples: an unknown scenario name, a malformed ``/solve`` payload
    (non-positive budget, unknown solver), or operations on a store
    that has been shut down. The HTTP front end maps this (and every
    other :class:`ReproError`) to a ``400`` response; unexpected
    exceptions become ``500`` so no connection is ever dropped.
    """


class ClusterError(ServingError):
    """Raised for cluster-level serving failures.

    Examples: a replica that never became healthy within the startup
    timeout, a supervisor asked to address a replica id it does not
    manage, or a router whose every candidate replica refused a request
    (the router maps that exhaustion to a ``503`` rather than letting
    the error escape the HTTP layer).
    """


class ObservabilityError(ReproError):
    """Raised for misuse of the :mod:`repro.obs` instrumentation layer.

    Examples: nesting instrumentation sessions (only one may be active
    per process) or loading a file that is not a run manifest.
    """
