"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples include referencing a node outside ``range(n)``, adding an
    edge with a probability outside ``[0, 1]``, or loading a malformed
    edge-list file.
    """


class CommunityError(ReproError):
    """Raised for invalid community structures.

    A valid structure partitions a subset of ``V`` into *disjoint*
    communities with positive thresholds not exceeding the community size
    and non-negative benefits.
    """


class SamplingError(ReproError):
    """Raised when RIC / RR sample generation receives invalid input."""


class SolverError(ReproError):
    """Raised when a MAXR / IMC solver is mis-configured.

    Examples: ``k`` larger than the number of nodes, a bounded-threshold
    algorithm (BT/MB) applied to an instance whose thresholds exceed its
    declared bound, or an empty sample pool handed to a solver that
    requires one.
    """


class EstimationError(ReproError):
    """Raised when a Monte-Carlo estimator is given invalid parameters."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid dataset specs."""


class ExperimentError(ReproError):
    """Raised for malformed experiment configurations."""
