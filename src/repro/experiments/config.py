"""Experiment configuration.

One :class:`ExperimentConfig` describes an IMC *instance family*: which
dataset stand-in, how communities are formed (Louvain vs Random, size
cap ``s``), which threshold policy (bounded ``h=2`` vs fractional 50%)
and the statistical parameters. The paper's defaults (Section VI-A) are
the field defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: Algorithms understood by the runner. "UBG"/"MAF"/"BT"/"MB"/"GreedyC"
#: are MAXR solvers run on a RIC pool; the rest are direct baselines.
ALGORITHMS: Tuple[str, ...] = (
    "UBG",
    "MAF",
    "BT",
    "MB",
    "GreedyC",
    "HBC",
    "KS",
    "IM",
    "Degree",
    "Random",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters defining an IMC experiment instance."""

    dataset: str = "facebook"
    #: Fraction of the dataset's reference size to generate.
    scale: float = 0.25
    #: Community formation: "louvain" (paper's default), "random", or
    #: "label-propagation" (extension detector).
    formation: str = "louvain"
    #: Number of communities for the random formation (``None`` ->
    #: match the Louvain community count of the same instance).
    random_communities: Optional[int] = None
    #: Size cap ``s`` (Section VI-A; default 8). ``None`` disables.
    size_cap: Optional[int] = 8
    #: "bounded" -> ``h_i = min(2, |C_i|)``; "fractional" -> ``h_i = 0.5|C_i|``.
    threshold: str = "fractional"
    #: Constant for the bounded policy.
    bounded_value: int = 2
    #: RIC pool size for fixed-pool solver comparisons.
    pool_size: int = 2_000
    #: Monte-Carlo trials when evaluating ``c(S)`` for a returned seed set.
    eval_trials: int = 300
    #: RIC sampling engine: "serial" or "parallel" (process-pool fan-out;
    #: identical samples for a fixed seed, so results don't change).
    engine: str = "serial"
    #: Worker processes for the parallel engine (``None`` -> all cores).
    workers: Optional[int] = None
    epsilon: float = 0.2
    delta: float = 0.2
    seed: int = 7
    #: Crash-safety checkpoint file for ``run_suite``/``run_campaign``
    #: (``None`` disables). Completed work units are recorded here
    #: atomically; a rerun with the same path resumes instead of
    #: recomputing.
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.formation not in (
            "louvain",
            "random",
            "label-propagation",
            "greedy-modularity",
        ):
            raise ExperimentError(
                "formation must be one of 'louvain', 'random', "
                "'label-propagation', 'greedy-modularity'; got "
                f"{self.formation!r}"
            )
        if self.threshold not in ("bounded", "fractional"):
            raise ExperimentError(
                "threshold must be 'bounded' or 'fractional', got "
                f"{self.threshold!r}"
            )
        if self.scale <= 0:
            raise ExperimentError(f"scale must be positive, got {self.scale}")
        if self.pool_size < 1:
            raise ExperimentError(
                f"pool_size must be >= 1, got {self.pool_size}"
            )
        if self.engine not in ("serial", "parallel"):
            raise ExperimentError(
                f"engine must be 'serial' or 'parallel', got {self.engine!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ExperimentError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.checkpoint_path is not None and not str(self.checkpoint_path):
            raise ExperimentError(
                "checkpoint_path must be a non-empty path or None"
            )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **kwargs)
