"""Repeated-trial statistics for experiment suites.

The paper reports the average of ten runs per configuration
(Section VI-A). :func:`repeat_suite` runs a suite under several derived
seeds and aggregates each (algorithm, k) cell into mean ± normal-
approximation confidence half-width, plus pairwise win rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.diffusion.estimators import mean_with_confidence
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_suite
from repro.rng import derive_seed


@dataclass(frozen=True)
class AggregatedCell:
    """Mean ± CI of one (algorithm, k) cell across trials."""

    algorithm: str
    k: int
    mean_benefit: float
    ci_half_width: float
    mean_runtime: float
    trials: int


def repeat_suite(
    config: ExperimentConfig,
    algorithms: Sequence[str],
    k_values: Sequence[int],
    trials: int = 10,
    candidate_limit: int = 50,
) -> List[AggregatedCell]:
    """Run the suite ``trials`` times with derived seeds; aggregate.

    Each trial re-derives every stochastic stream (dataset generation
    stays fixed — the paper varies the algorithmic randomness, not the
    network) from ``config.seed`` and the trial index.
    """
    if trials < 1:
        raise ExperimentError(f"trials must be >= 1, got {trials}")
    benefit_samples: Dict[Tuple[str, int], List[float]] = {}
    runtime_samples: Dict[Tuple[str, int], List[float]] = {}
    for trial in range(trials):
        trial_config = config.with_overrides(
            seed=derive_seed(config.seed, "trial", trial) or 0
        )
        results = run_suite(
            trial_config, algorithms, k_values, candidate_limit=candidate_limit
        )
        for algorithm, runs in results.items():
            for run in runs:
                key = (algorithm, run.k)
                benefit_samples.setdefault(key, []).append(run.benefit)
                runtime_samples.setdefault(key, []).append(
                    run.runtime_seconds
                )
    cells = []
    for (algorithm, k), benefits in sorted(benefit_samples.items()):
        mean, half = mean_with_confidence(benefits)
        mean_rt, _ = mean_with_confidence(runtime_samples[(algorithm, k)])
        cells.append(
            AggregatedCell(
                algorithm=algorithm,
                k=k,
                mean_benefit=mean,
                ci_half_width=half,
                mean_runtime=mean_rt,
                trials=len(benefits),
            )
        )
    return cells


def win_rate(
    cells_or_samples: Dict[Tuple[str, int], List[float]],
    algorithm_a: str,
    algorithm_b: str,
) -> float:
    """Fraction of (k, trial) pairs where ``a`` strictly beats ``b``.

    Operates on raw per-trial samples keyed by ``(algorithm, k)``;
    trials are matched positionally (same derived seed per index).
    """
    wins = 0
    total = 0
    for (algorithm, k), samples in cells_or_samples.items():
        if algorithm != algorithm_a:
            continue
        other = cells_or_samples.get((algorithm_b, k))
        if other is None:
            continue
        for a_value, b_value in zip(samples, other):
            total += 1
            if a_value > b_value:
                wins += 1
    if total == 0:
        raise ExperimentError(
            f"no comparable trials between {algorithm_a!r} and {algorithm_b!r}"
        )
    return wins / total


def collect_samples(
    config: ExperimentConfig,
    algorithms: Sequence[str],
    k_values: Sequence[int],
    trials: int = 10,
    candidate_limit: int = 50,
) -> Dict[Tuple[str, int], List[float]]:
    """Raw per-trial benefit samples keyed by (algorithm, k) — the
    input :func:`win_rate` consumes."""
    samples: Dict[Tuple[str, int], List[float]] = {}
    for trial in range(trials):
        trial_config = config.with_overrides(
            seed=derive_seed(config.seed, "trial", trial) or 0
        )
        results = run_suite(
            trial_config, algorithms, k_values, candidate_limit=candidate_limit
        )
        for algorithm, runs in results.items():
            for run in runs:
                samples.setdefault((algorithm, run.k), []).append(run.benefit)
    return samples
