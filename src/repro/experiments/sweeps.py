"""Ablation sweeps as library functions.

The benchmark modules exercise these; they are public API so users can
run the same studies at their own scales and archive the results via
:mod:`repro.experiments.persistence`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bt import BT
from repro.core.greedy import greedy_eager_nu, lazy_greedy_nu
from repro.core.maf import MAF
from repro.diffusion.simulator import community_benefit_monte_carlo
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_instance, make_pool
from repro.rng import derive_seed
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler
from repro.utils.timing import Stopwatch


def celf_speedup(
    config: ExperimentConfig, k: int = 20
) -> Dict[str, float]:
    """Compare CELF vs eager greedy on the ν objective.

    Returns ``{eager_value, lazy_value, eager_seconds, lazy_seconds,
    speedup}``.
    """
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config)
    eager_timer, lazy_timer = Stopwatch(), Stopwatch()
    with eager_timer:
        eager_seeds = greedy_eager_nu(pool, k)
    with lazy_timer:
        lazy_seeds = lazy_greedy_nu(pool, k)
    return {
        "eager_value": pool.fractional_count(eager_seeds),
        "lazy_value": pool.fractional_count(lazy_seeds),
        "eager_seconds": eager_timer.elapsed,
        "lazy_seconds": lazy_timer.elapsed,
        "speedup": eager_timer.elapsed / max(lazy_timer.elapsed, 1e-9),
    }


def pool_size_error_sweep(
    config: ExperimentConfig,
    sizes: Sequence[int] = (50, 200, 800, 3200),
    trials: int = 3,
    reference_trials: int = 20_000,
) -> Dict[int, float]:
    """Mean relative error of ``ĉ_R(S)`` vs Monte Carlo per pool size."""
    graph, communities = build_instance(config)
    seeds = list(communities[0].members[:2]) + list(communities[1].members[:2])
    reference = community_benefit_monte_carlo(
        graph,
        communities,
        seeds,
        num_trials=reference_trials,
        seed=derive_seed(config.seed, "sweep-ref"),
    )
    errors: Dict[int, List[float]] = {size: [] for size in sizes}
    for trial in range(trials):
        sampler = RICSampler(
            graph, communities, seed=derive_seed(config.seed, "sweep", trial)
        )
        pool = RICSamplePool(sampler)
        for size in sizes:
            pool.grow_to(size)
            estimate = pool.estimate_benefit(seeds)
            errors[size].append(abs(estimate - reference) / max(reference, 1e-9))
    return {size: sum(e) / len(e) for size, e in errors.items()}


def maf_arm_comparison(
    config: ExperimentConfig, k: int = 15
) -> Dict[str, float]:
    """Pool objective of MAF's S1, S2 and the combined solver."""
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config)
    solver = MAF(seed=derive_seed(config.seed, "maf-arms"))
    s1 = solver._build_s1(pool, k)
    s2 = solver._build_s2(pool, k)
    combined = solver.solve(pool, k)
    return {
        "s1_value": pool.estimate_benefit(s1),
        "s2_value": pool.estimate_benefit(s2),
        "combined_value": combined.objective,
    }


def bt_candidate_sweep(
    config: ExperimentConfig,
    limits: Sequence[Optional[int]] = (5, 20, 60, None),
    k: int = 8,
) -> List[Tuple[Optional[int], float, float]]:
    """BT quality/runtime per candidate limit:
    ``[(limit, pool_objective, seconds)]``."""
    graph, communities = build_instance(config)
    pool = make_pool(graph, communities, config)
    rows: List[Tuple[Optional[int], float, float]] = []
    for limit in limits:
        solver = BT(candidate_limit=limit)
        timer = Stopwatch()
        with timer:
            result = solver.solve(pool, k)
        rows.append((limit, result.objective, timer.elapsed))
    return rows


def formation_comparison(
    config: ExperimentConfig,
    formations: Sequence[str] = ("louvain", "label-propagation", "random"),
    k: int = 10,
    algorithm: str = "UBG",
) -> Dict[str, float]:
    """Benefit of one algorithm under different community formations.

    Extends Fig. 4's Louvain-vs-Random comparison with the
    label-propagation detector.
    """
    from repro.experiments.runner import run_suite

    results: Dict[str, float] = {}
    for formation in formations:
        suite = run_suite(
            config.with_overrides(formation=formation), [algorithm], [k]
        )
        results[formation] = suite[algorithm][0].benefit
    return results
