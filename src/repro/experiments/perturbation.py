"""Solution robustness under edge-weight perturbation.

Influence probabilities are estimates in practice; a seed set that only
wins under the exact fitted weights is fragile. This study re-evaluates
a fixed seed set on perturbed copies of the graph (each weight jittered
multiplicatively by up to ±δ, clipped to [0, 1]) and reports the
benefit distribution — the sensitivity analysis a deployment would run
before committing a campaign budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.communities.structure import CommunityStructure
from repro.diffusion.estimators import mean_with_confidence
from repro.diffusion.simulator import community_benefit_monte_carlo
from repro.errors import ExperimentError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng, spawn_rng


@dataclass(frozen=True)
class PerturbationResult:
    """Benefit statistics of one seed set across perturbed graphs."""

    delta: float
    baseline_benefit: float
    mean_benefit: float
    ci_half_width: float
    worst_benefit: float
    samples: Tuple[float, ...]

    @property
    def relative_degradation(self) -> float:
        """``1 - mean/baseline`` (negative values = improvement)."""
        if self.baseline_benefit <= 0:
            return 0.0
        return 1.0 - self.mean_benefit / self.baseline_benefit


def perturb_weights(
    graph: DiGraph, delta: float, seed: SeedLike = None
) -> DiGraph:
    """A copy of ``graph`` with every weight scaled by ``U[1-δ, 1+δ]``,
    clipped to [0, 1]."""
    if not (0.0 <= delta <= 1.0):
        raise ExperimentError(f"delta must be in [0, 1], got {delta}")
    rng = make_rng(seed)
    perturbed = DiGraph(graph.num_nodes)
    for u, v, w in graph.edges():
        factor = 1.0 + delta * (2.0 * rng.random() - 1.0)
        perturbed.add_edge(u, v, min(1.0, max(0.0, w * factor)))
    return perturbed


def perturbation_study(
    graph: DiGraph,
    communities: CommunityStructure,
    seeds: Iterable[int],
    delta: float = 0.2,
    num_graphs: int = 10,
    eval_trials: int = 300,
    seed: SeedLike = None,
) -> PerturbationResult:
    """Evaluate ``seeds`` on ``num_graphs`` perturbed copies of the
    instance; return benefit statistics against the unperturbed
    baseline."""
    if num_graphs < 1:
        raise ExperimentError(f"num_graphs must be >= 1, got {num_graphs}")
    rng = make_rng(seed)
    seed_list = list(seeds)
    baseline = community_benefit_monte_carlo(
        graph,
        communities,
        seed_list,
        num_trials=eval_trials,
        seed=spawn_rng(rng),
    )
    samples: List[float] = []
    for _ in range(num_graphs):
        perturbed = perturb_weights(graph, delta, seed=spawn_rng(rng))
        samples.append(
            community_benefit_monte_carlo(
                perturbed,
                communities,
                seed_list,
                num_trials=eval_trials,
                seed=spawn_rng(rng),
            )
        )
    mean, half = mean_with_confidence(samples)
    return PerturbationResult(
        delta=delta,
        baseline_benefit=baseline,
        mean_benefit=mean,
        ci_half_width=half,
        worst_benefit=min(samples),
        samples=tuple(samples),
    )
