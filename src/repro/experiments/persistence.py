"""JSON persistence for experiment results.

``run_suite`` and the figure drivers return nested structures of
:class:`~repro.experiments.runner.AlgorithmRun`; these helpers flatten
them into a stable record format so sweeps can be archived and
re-plotted without re-running.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Union

from repro.errors import ExperimentError
from repro.experiments.runner import AlgorithmRun

PathLike = Union[str, "os.PathLike[str]"]

_SCHEMA_VERSION = 1


def runs_to_records(results: Dict[str, Sequence[AlgorithmRun]]) -> List[dict]:
    """Flatten ``{algorithm: [AlgorithmRun]}`` into JSON records."""
    records = []
    for algorithm, runs in results.items():
        for run in runs:
            records.append(
                {
                    "algorithm": algorithm,
                    "k": run.k,
                    "seeds": list(run.seeds),
                    "benefit": run.benefit,
                    "runtime_seconds": run.runtime_seconds,
                }
            )
    return records


def records_to_runs(records: Sequence[dict]) -> Dict[str, List[AlgorithmRun]]:
    """Rebuild ``{algorithm: [AlgorithmRun]}`` from flat records."""
    results: Dict[str, List[AlgorithmRun]] = {}
    for record in records:
        try:
            run = AlgorithmRun(
                algorithm=record["algorithm"],
                k=int(record["k"]),
                seeds=tuple(record["seeds"]),
                benefit=float(record["benefit"]),
                runtime_seconds=float(record["runtime_seconds"]),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed run record {record!r}") from exc
        results.setdefault(run.algorithm, []).append(run)
    for runs in results.values():
        runs.sort(key=lambda r: r.k)
    return results


def save_runs(
    results: Dict[str, Sequence[AlgorithmRun]],
    path: PathLike,
    metadata: dict = None,
) -> None:
    """Archive suite results (plus free-form ``metadata``) to JSON.

    The write is crash-safe: the payload goes to a sibling temporary
    file first, is fsync'd, then atomically ``os.replace``d over
    ``path`` — a crash mid-archive leaves any previous archive intact
    rather than a truncated JSON file.
    """
    payload = {
        "version": _SCHEMA_VERSION,
        "metadata": metadata or {},
        "records": runs_to_records(results),
    }
    path = os.fspath(path)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)


def load_runs(path: PathLike) -> Dict[str, List[AlgorithmRun]]:
    """Load results written by :func:`save_runs`.

    Truncated/invalid JSON and structurally wrong payloads raise
    :class:`~repro.errors.ExperimentError` naming the offending file,
    so sweep drivers can report which archive is bad instead of dying
    on a bare ``JSONDecodeError``.
    """
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"results file {path!r} is not valid JSON "
                f"(truncated write?): {exc}"
            ) from exc
    if not isinstance(payload, dict):
        raise ExperimentError(
            f"results file {path!r} does not hold a results object"
        )
    if payload.get("version") != _SCHEMA_VERSION:
        raise ExperimentError(
            f"unsupported results schema version {payload.get('version')!r}"
        )
    try:
        records = payload["records"]
    except KeyError as exc:
        raise ExperimentError(
            f"results file {path!r} is missing the 'records' key"
        ) from exc
    return records_to_runs(records)
