"""JSON persistence for experiment results.

``run_suite`` and the figure drivers return nested structures of
:class:`~repro.experiments.runner.AlgorithmRun`; these helpers flatten
them into a stable record format so sweeps can be archived and
re-plotted without re-running.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Union

from repro.errors import ExperimentError
from repro.experiments.runner import AlgorithmRun

PathLike = Union[str, "os.PathLike[str]"]

_SCHEMA_VERSION = 1


def runs_to_records(results: Dict[str, Sequence[AlgorithmRun]]) -> List[dict]:
    """Flatten ``{algorithm: [AlgorithmRun]}`` into JSON records."""
    records = []
    for algorithm, runs in results.items():
        for run in runs:
            records.append(
                {
                    "algorithm": algorithm,
                    "k": run.k,
                    "seeds": list(run.seeds),
                    "benefit": run.benefit,
                    "runtime_seconds": run.runtime_seconds,
                }
            )
    return records


def records_to_runs(records: Sequence[dict]) -> Dict[str, List[AlgorithmRun]]:
    """Rebuild ``{algorithm: [AlgorithmRun]}`` from flat records."""
    results: Dict[str, List[AlgorithmRun]] = {}
    for record in records:
        try:
            run = AlgorithmRun(
                algorithm=record["algorithm"],
                k=int(record["k"]),
                seeds=tuple(record["seeds"]),
                benefit=float(record["benefit"]),
                runtime_seconds=float(record["runtime_seconds"]),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed run record {record!r}") from exc
        results.setdefault(run.algorithm, []).append(run)
    for runs in results.values():
        runs.sort(key=lambda r: r.k)
    return results


def save_runs(
    results: Dict[str, Sequence[AlgorithmRun]],
    path: PathLike,
    metadata: dict = None,
) -> None:
    """Archive suite results (plus free-form ``metadata``) to JSON."""
    payload = {
        "version": _SCHEMA_VERSION,
        "metadata": metadata or {},
        "records": runs_to_records(results),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def load_runs(path: PathLike) -> Dict[str, List[AlgorithmRun]]:
    """Load results written by :func:`save_runs`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("version") != _SCHEMA_VERSION:
        raise ExperimentError(
            f"unsupported results schema version {payload.get('version')!r}"
        )
    return records_to_runs(payload["records"])
