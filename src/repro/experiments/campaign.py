"""Campaign runner: a grid of experiment configurations.

Sweeps the cross product of datasets × threshold policies × formations
(× anything else expressible as config overrides), runs a suite per
cell and returns flat records ready for
:mod:`repro.experiments.persistence`. This is the driver behind
"run the whole evaluation overnight and archive it" workflows.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError
from repro.experiments.checkpoint import CheckpointStore, as_checkpoint
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import AlgorithmRun, run_suite
from repro.obs import (
    build_manifest,
    enabled as obs_enabled,
    manifest_path_for,
    metrics,
    trace,
    write_manifest,
)


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell's identity and results."""

    dataset: str
    threshold: str
    formation: str
    runs: Dict[str, List[AlgorithmRun]]


def cell_key(dataset: str, threshold: str, formation: str) -> str:
    """Checkpoint key identifying one campaign grid cell."""
    return f"{dataset}|{threshold}|{formation}"


def _cell_payload(runs: Dict[str, List[AlgorithmRun]]) -> dict:
    from repro.experiments.persistence import runs_to_records

    return {"records": runs_to_records(runs)}


def _cell_from_payload(
    payload: dict, path: str
) -> Dict[str, List[AlgorithmRun]]:
    from repro.experiments.persistence import records_to_runs

    try:
        records = payload["records"]
    except (KeyError, TypeError) as exc:
        raise ExperimentError(
            f"malformed cell payload in checkpoint {path!r}"
        ) from exc
    return records_to_runs(records)


def run_campaign(
    base_config: ExperimentConfig,
    algorithms: Sequence[str],
    k_values: Sequence[int],
    datasets: Sequence[str] = ("facebook",),
    thresholds: Sequence[str] = ("fractional",),
    formations: Sequence[str] = ("louvain",),
    candidate_limit: Optional[int] = 30,
    progress=None,
    checkpoint: Union[None, str, CheckpointStore] = None,
    resume: bool = True,
) -> List[CampaignCell]:
    """Run the full grid; returns one :class:`CampaignCell` per combo.

    ``progress``, if given, is called with
    ``(cell_index, total_cells, dataset, threshold, formation)`` before
    each cell starts.

    ``checkpoint`` (a path or a
    :class:`~repro.experiments.checkpoint.CheckpointStore`; defaults to
    ``base_config.checkpoint_path``) makes the campaign crash-safe:
    each completed cell is recorded atomically, and rerunning against
    the same checkpoint restores completed cells from disk instead of
    recomputing them — a killed overnight campaign resumes where it
    died. Pass ``resume=False`` to discard an existing checkpoint.
    Every cell is seeded from its own config alone, so a resumed
    campaign's results are identical to an uninterrupted run's. Call
    ``store.report()`` on a passed-in store for the skip/recompute
    summary.
    """
    if not algorithms or not k_values:
        raise ExperimentError("campaign needs algorithms and k values")
    if checkpoint is None and base_config.checkpoint_path is not None:
        checkpoint = base_config.checkpoint_path
    store = as_checkpoint(checkpoint, resume=resume)
    grid: List[Tuple[str, str, str]] = [
        (dataset, threshold, formation)
        for dataset in datasets
        for threshold in thresholds
        for formation in formations
    ]
    cells: List[CampaignCell] = []
    for index, (dataset, threshold, formation) in enumerate(grid):
        key = cell_key(dataset, threshold, formation)
        if store is not None and key in store:
            metrics.inc("campaign.cells.skipped")
            cells.append(
                CampaignCell(
                    dataset=dataset,
                    threshold=threshold,
                    formation=formation,
                    runs=_cell_from_payload(store.get(key), store.path),
                )
            )
            continue
        if progress is not None:
            progress(index, len(grid), dataset, threshold, formation)
        # Cells checkpoint at campaign granularity; strip the config's
        # own checkpoint path so the inner suite doesn't mix per-run
        # keys into the same file.
        config = base_config.with_overrides(
            dataset=dataset,
            threshold=threshold,
            formation=formation,
            checkpoint_path=None,
        )
        with trace.span(
            "campaign/cell",
            dataset=dataset, threshold=threshold, formation=formation,
        ):
            runs = run_suite(
                config, algorithms, list(k_values),
                candidate_limit=candidate_limit,
            )
        metrics.inc("campaign.cells.completed")
        if store is not None:
            store.record(key, _cell_payload(runs))
        cells.append(
            CampaignCell(
                dataset=dataset,
                threshold=threshold,
                formation=formation,
                runs=runs,
            )
        )
    if store is not None and obs_enabled():
        # Same provenance discipline as run_suite: a manifest sibling
        # next to the campaign checkpoint binds the grid to the code,
        # seeds and config that produced it.
        write_manifest(
            build_manifest(
                "run_campaign",
                config=asdict(base_config),
                seeds={"seed": base_config.seed},
                artifacts={"checkpoint": store.path},
            ),
            manifest_path_for(store.path),
        )
    return cells


def campaign_records(cells: Iterable[CampaignCell]) -> List[dict]:
    """Flatten campaign cells into JSON-ready records (one per
    algorithm × k × cell)."""
    records = []
    for cell in cells:
        for algorithm, runs in cell.runs.items():
            for run in runs:
                records.append(
                    {
                        "dataset": cell.dataset,
                        "threshold": cell.threshold,
                        "formation": cell.formation,
                        "algorithm": algorithm,
                        "k": run.k,
                        "benefit": run.benefit,
                        "runtime_seconds": run.runtime_seconds,
                        "seeds": list(run.seeds),
                    }
                )
    return records


def best_algorithm_per_cell(
    cells: Iterable[CampaignCell], k: int
) -> Dict[Tuple[str, str, str], str]:
    """For each grid cell, the algorithm with the highest benefit at
    budget ``k`` (ties by name for determinism)."""
    winners: Dict[Tuple[str, str, str], str] = {}
    for cell in cells:
        best_name = None
        best_value = float("-inf")
        for algorithm in sorted(cell.runs):
            for run in cell.runs[algorithm]:
                if run.k == k and (run.benefit, ) > (best_value, ):
                    best_value = run.benefit
                    best_name = algorithm
        if best_name is None:
            raise ExperimentError(
                f"no runs at k={k} in cell "
                f"({cell.dataset}, {cell.threshold}, {cell.formation})"
            )
        winners[(cell.dataset, cell.threshold, cell.formation)] = best_name
    return winners
