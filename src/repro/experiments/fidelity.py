"""Stand-in fidelity report.

The synthetic datasets replace the SNAP networks (DESIGN.md §3); this
module measures how faithful each stand-in is on the structural axes
the IMC algorithms are sensitive to: directedness, density (average
degree vs the paper's edge/node ratio), degree skew, clustering, and
small-world distances. The fidelity benchmark prints the table and
asserts the qualitative expectations per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datasets.registry import DATASETS, load_dataset
from repro.graph.analysis import clustering_coefficient, reciprocity
from repro.graph.paths import effective_diameter
from repro.rng import derive_seed


@dataclass(frozen=True)
class FidelityRow:
    """Measured structural profile of one stand-in."""

    name: str
    directed: bool
    nodes: int
    edges: int
    avg_degree: float
    paper_avg_degree: float
    max_degree_ratio: float
    clustering: float
    reciprocity: float
    effective_diameter: float


def fidelity_report(
    scale: float = 0.2, seed: Optional[int] = 7
) -> List[FidelityRow]:
    """Measure every registered stand-in at ``scale``."""
    rows: List[FidelityRow] = []
    for name, spec in DATASETS.items():
        dataset = load_dataset(name, scale=scale, seed=seed)
        graph = dataset.graph
        n = graph.num_nodes
        avg_degree = graph.num_edges / n
        max_total_degree = max(
            graph.out_degree(v) + graph.in_degree(v) for v in graph.nodes()
        )
        mean_total_degree = 2 * graph.num_edges / n
        rows.append(
            FidelityRow(
                name=name,
                directed=spec.directed,
                nodes=n,
                edges=graph.num_edges,
                avg_degree=avg_degree,
                paper_avg_degree=spec.paper_edges / spec.paper_nodes,
                max_degree_ratio=max_total_degree / mean_total_degree,
                clustering=clustering_coefficient(graph),
                reciprocity=reciprocity(graph),
                effective_diameter=effective_diameter(
                    graph,
                    num_sources=30,
                    seed=derive_seed(seed, "fidelity", name),
                ),
            )
        )
    return rows


def fidelity_expectations(row: FidelityRow) -> Dict[str, bool]:
    """Qualitative checks a faithful stand-in must satisfy.

    Returns ``{check_name: passed}`` so callers can report which axis
    (if any) drifted.
    """
    checks = {
        # Undirected stand-ins are fully reciprocal; directed ones not.
        "directedness": (
            row.reciprocity == 1.0 if not row.directed else row.reciprocity < 1.0
        ),
        # Heavy tail: some node far above the mean degree.
        "degree_skew": row.max_degree_ratio > 2.0,
        # Small world: short distances.
        "small_world": 0.0 < row.effective_diameter <= 10.0,
        # Density within a factor-6 band of the paper's ratio. The band
        # is wide because the ego-Facebook stand-in's density scales
        # with n (preferential attachment with m ∝ n), so sub-scale
        # loads are proportionally sparser than the full-size network.
        "density_band": (
            row.paper_avg_degree / 6.0
            <= row.avg_degree
            <= row.paper_avg_degree * 6.0
        ),
    }
    return checks
