"""Table drivers.

Table I of the paper lists the datasets' statistics; the reproduction
prints the same columns for the synthetic stand-ins, alongside the
paper's original numbers for reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.registry import dataset_statistics
from repro.experiments.reporting import ascii_table


def table1_datasets(scale: float = 1.0, seed: Optional[int] = 7) -> List[Dict[str, object]]:
    """Rows of Table I for the stand-ins (see
    :func:`repro.datasets.registry.dataset_statistics`)."""
    return dataset_statistics(scale=scale, seed=seed)


def table1_text(scale: float = 1.0, seed: Optional[int] = 7) -> str:
    """Table I rendered as ASCII, paper numbers next to stand-in numbers."""
    rows = table1_datasets(scale=scale, seed=seed)
    return ascii_table(
        ["Data", "Type", "Paper nodes", "Paper edges", "Nodes", "Edges"],
        [
            (
                row["name"],
                row["type"],
                row["paper_nodes"],
                row["paper_edges"],
                row["nodes"],
                row["edges"],
            )
            for row in rows
        ],
    )
