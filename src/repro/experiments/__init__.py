"""Experiment harness reproducing every table and figure of the paper.

Declarative configs (:mod:`~repro.experiments.config`), a runner that
builds instances and times algorithms (:mod:`~repro.experiments.runner`),
per-figure drivers (:mod:`~repro.experiments.figures`), the Table-I
driver (:mod:`~repro.experiments.tables`) and ASCII reporting
(:mod:`~repro.experiments.reporting`).

Each figure driver returns plain data structures (series of points), so
the benchmark modules can both print the paper-style rows and assert the
qualitative shape.
"""

from repro.experiments.campaign import (
    CampaignCell,
    best_algorithm_per_cell,
    campaign_records,
    cell_key,
    run_campaign,
)
from repro.experiments.checkpoint import (
    CheckpointStore,
    ResumeReport,
    as_checkpoint,
)
from repro.experiments.config import ALGORITHMS, ExperimentConfig
from repro.experiments.fidelity import (
    FidelityRow,
    fidelity_expectations,
    fidelity_report,
)
from repro.experiments.figures import (
    fig4_community_structure,
    fig5_benefit_regular,
    fig6_benefit_bounded,
    fig7_runtime,
    fig8_ubg_ratio,
)
from repro.experiments.reporting import ascii_table, format_series
from repro.experiments.runner import (
    AlgorithmRun,
    build_instance,
    run_algorithm,
    run_suite,
)
from repro.experiments.persistence import load_runs, save_runs
from repro.experiments.perturbation import (
    PerturbationResult,
    perturb_weights,
    perturbation_study,
)
from repro.experiments.scaling import ScalePoint, scaling_study
from repro.experiments.solution_report import (
    CommunityOutcome,
    render_report,
    solution_report,
)
from repro.experiments.stats import (
    AggregatedCell,
    collect_samples,
    repeat_suite,
    win_rate,
)
from repro.experiments.sweeps import (
    bt_candidate_sweep,
    celf_speedup,
    formation_comparison,
    maf_arm_comparison,
    pool_size_error_sweep,
)
from repro.experiments.tables import table1_datasets

__all__ = [
    "ExperimentConfig",
    "ALGORITHMS",
    "build_instance",
    "run_algorithm",
    "run_suite",
    "AlgorithmRun",
    "fig4_community_structure",
    "fig5_benefit_regular",
    "fig6_benefit_bounded",
    "fig7_runtime",
    "fig8_ubg_ratio",
    "table1_datasets",
    "ascii_table",
    "format_series",
    "save_runs",
    "load_runs",
    "celf_speedup",
    "pool_size_error_sweep",
    "maf_arm_comparison",
    "bt_candidate_sweep",
    "formation_comparison",
    "scaling_study",
    "ScalePoint",
    "solution_report",
    "render_report",
    "CommunityOutcome",
    "repeat_suite",
    "collect_samples",
    "win_rate",
    "AggregatedCell",
    "perturbation_study",
    "perturb_weights",
    "PerturbationResult",
    "run_campaign",
    "campaign_records",
    "best_algorithm_per_cell",
    "cell_key",
    "CampaignCell",
    "CheckpointStore",
    "ResumeReport",
    "as_checkpoint",
    "fidelity_report",
    "fidelity_expectations",
    "FidelityRow",
]
