"""Plain-text reporting for experiment results.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers render them as aligned ASCII.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    materialized: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    divider = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        divider,
    ]
    for row in materialized:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: Dict[str, Sequence[Any]],
) -> str:
    """Render figure-style series (one row per x value, one column per
    algorithm) — the textual equivalent of the paper's plots."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row = [x] + [values[i] if i < len(values) else "" for values in series.values()]
        rows.append(row)
    return ascii_table(headers, rows)


def ascii_chart(
    labels: Sequence[Any],
    values: Sequence[float],
    width: int = 40,
    fill: str = "█",
) -> str:
    """Horizontal bar chart — a terminal-friendly stand-in for the
    paper's bar figures (Fig. 4 panels are grouped bars).

    Bars are scaled to the maximum value; each row shows the label, the
    bar and the numeric value.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(empty chart)"
    if any(v < 0 for v in values):
        raise ValueError("ascii_chart requires non-negative values")
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = fill * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(f"{str(label).ljust(label_width)} | {bar} {_fmt(value)}")
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
