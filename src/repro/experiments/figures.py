"""Per-figure experiment drivers.

Each function reproduces one figure of the paper's evaluation section
and returns plain data (dicts of series) that the benchmark modules
print and shape-check. Defaults are laptop-scale; the paper-scale
settings are reachable by passing a larger ``scale`` / ``pool_size``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.greedy import lazy_greedy_nu
from repro.diffusion.simulator import BenefitEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    AlgorithmRun,
    build_instance,
    make_pool,
    run_algorithm,
    run_suite,
)
from repro.rng import derive_seed

#: The algorithm line-up of the paper's quality plots.
QUALITY_ALGORITHMS: Tuple[str, ...] = ("UBG", "MAF", "HBC", "KS", "IM")
BOUNDED_ALGORITHMS: Tuple[str, ...] = ("UBG", "MAF", "MB", "HBC", "KS", "IM")


def fig4_community_structure(
    dataset: str = "facebook",
    formations: Sequence[str] = ("louvain", "random"),
    size_caps: Sequence[int] = (4, 8, 16, 32),
    k: int = 10,
    threshold: str = "fractional",
    algorithms: Sequence[str] = QUALITY_ALGORITHMS,
    base_config: Optional[ExperimentConfig] = None,
) -> Dict[Tuple[str, int], Dict[str, float]]:
    """Fig. 4 — quality vs community formation and size cap ``s``.

    Returns ``{(formation, s): {algorithm: benefit}}`` at fixed ``k``.
    """
    base = base_config or ExperimentConfig(dataset=dataset)
    results: Dict[Tuple[str, int], Dict[str, float]] = {}
    for formation in formations:
        for s in size_caps:
            config = base.with_overrides(
                dataset=dataset,
                formation=formation,
                size_cap=s,
                threshold=threshold,
            )
            runs = run_suite(config, algorithms, [k])
            results[(formation, s)] = {
                name: runs[name][0].benefit for name in algorithms
            }
    return results


def fig5_benefit_regular(
    dataset: str = "facebook",
    k_values: Sequence[int] = (5, 10, 20, 30, 40, 50),
    algorithms: Sequence[str] = QUALITY_ALGORITHMS,
    base_config: Optional[ExperimentConfig] = None,
) -> Dict[str, List[AlgorithmRun]]:
    """Fig. 5 — benefit vs ``k``, fractional thresholds (regular case)."""
    base = base_config or ExperimentConfig(dataset=dataset)
    config = base.with_overrides(dataset=dataset, threshold="fractional")
    return run_suite(config, algorithms, list(k_values))


def fig6_benefit_bounded(
    dataset: str = "facebook",
    k_values: Sequence[int] = (5, 10, 20, 30, 40, 50),
    algorithms: Sequence[str] = BOUNDED_ALGORITHMS,
    base_config: Optional[ExperimentConfig] = None,
    candidate_limit: Optional[int] = 30,
) -> Dict[str, List[AlgorithmRun]]:
    """Fig. 6 — benefit vs ``k``, bounded thresholds ``h_i = 2``.

    Includes MB (the paper drops MB on its largest network for runtime;
    ``candidate_limit`` keeps it feasible here).
    """
    base = base_config or ExperimentConfig(dataset=dataset)
    config = base.with_overrides(dataset=dataset, threshold="bounded")
    return run_suite(
        config, algorithms, list(k_values), candidate_limit=candidate_limit
    )


def fig7_runtime(
    dataset: str = "epinions",
    k_values: Sequence[int] = (5, 10, 20, 40),
    algorithms: Sequence[str] = ("UBG", "MAF", "MB"),
    threshold: str = "bounded",
    base_config: Optional[ExperimentConfig] = None,
    candidate_limit: Optional[int] = 30,
) -> Dict[str, List[AlgorithmRun]]:
    """Fig. 7 — runtime vs ``k`` on a larger network.

    Sampling is *not* shared across algorithms here: each run pays for
    its own pool, mirroring the paper's per-algorithm CPU time.
    """
    base = base_config or ExperimentConfig(dataset=dataset)
    config = base.with_overrides(dataset=dataset, threshold=threshold)
    graph, communities = build_instance(config)
    results: Dict[str, List[AlgorithmRun]] = {name: [] for name in algorithms}
    for k in k_values:
        evaluator = BenefitEvaluator(
            graph,
            communities,
            num_trials=config.eval_trials,
            seed=derive_seed(config.seed, "fig7-eval", k),
        )
        for name in algorithms:
            results[name].append(
                run_algorithm(
                    name,
                    graph,
                    communities,
                    k,
                    config,
                    pool=None,  # charge sampling to the algorithm
                    evaluator=evaluator,
                    candidate_limit=candidate_limit,
                )
            )
    return results


def fig8_ubg_ratio(
    dataset: str = "facebook",
    k_values: Sequence[int] = (5, 10, 20, 40),
    thresholds: Sequence[str] = ("fractional", "bounded"),
    base_config: Optional[ExperimentConfig] = None,
) -> Dict[str, List[float]]:
    """Fig. 8 — the UBG sandwich ratio ``c(S_ν)/ν(S_ν)`` vs ``k``.

    ``S_ν`` is the greedy solution on the submodular upper bound;
    ``c``/``ν`` are estimated on a *held-out* RIC pool (the paper uses
    Monte Carlo). Returns ``{threshold_mode: [ratio per k]}``; the
    paper's findings are (a) ratio grows toward 1 with ``k`` and
    (b) the bounded (small-threshold) case sits above the regular case.
    """
    base = base_config or ExperimentConfig(dataset=dataset)
    results: Dict[str, List[float]] = {}
    for mode in thresholds:
        config = base.with_overrides(dataset=dataset, threshold=mode)
        graph, communities = build_instance(config)
        train_pool = make_pool(graph, communities, config)
        holdout_config = config.with_overrides(
            seed=derive_seed(config.seed, "fig8-holdout") or 0
        )
        holdout = make_pool(graph, communities, holdout_config)
        ratios: List[float] = []
        for k in k_values:
            seeds = lazy_greedy_nu(train_pool, k)
            value = holdout.estimate_benefit(seeds)
            upper = holdout.estimate_upper_bound(seeds)
            ratios.append(value / upper if upper > 0 else 1.0)
        results[mode] = ratios
    return results
