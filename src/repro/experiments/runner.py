"""Experiment runner: build instances, run algorithms, measure quality.

The comparison protocol mirrors the paper's: every algorithm returns a
seed set for the same instance and budget; quality is the Monte-Carlo
estimate of the expected benefit ``c(S)``; runtime is the wall-clock of
the selection step (sampling included for the RIC-based methods, since
sample generation is part of those algorithms).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines import (
    hbc_seeds,
    high_degree_seeds,
    im_seeds,
    ks_seeds,
    random_seeds,
)
from repro.communities.label_propagation import label_propagation_communities
from repro.communities.louvain import louvain_communities
from repro.communities.random_partition import random_partition
from repro.communities.structure import CommunityStructure
from repro.communities.thresholds import (
    build_structure,
    constant_thresholds,
    fractional_thresholds,
)
from repro.core.bt import BT, MB
from repro.core.maf import MAF
from repro.core.ubg import UBG, GreedyC
from repro.datasets.registry import load_dataset
from repro.diffusion.simulator import BenefitEvaluator
from repro.errors import ExperimentError
from repro.experiments.checkpoint import CheckpointStore, as_checkpoint
from repro.experiments.config import ExperimentConfig
from repro.graph.digraph import DiGraph
from repro.obs import (
    build_manifest,
    enabled as obs_enabled,
    manifest_path_for,
    metrics,
    observe_pool,
    trace,
    write_manifest,
)
from repro.rng import derive_seed
from repro.sampling.parallel import ParallelRICSampler
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class AlgorithmRun:
    """Outcome of one algorithm on one instance: seeds, quality, time."""

    algorithm: str
    k: int
    seeds: Tuple[int, ...]
    benefit: float
    runtime_seconds: float


def build_instance(
    config: ExperimentConfig,
) -> Tuple[DiGraph, CommunityStructure]:
    """Materialise the (graph, communities) pair a config describes."""
    dataset = load_dataset(
        config.dataset,
        scale=config.scale,
        seed=derive_seed(config.seed, "dataset", config.dataset),
    )
    graph = dataset.graph
    if config.formation == "louvain":
        blocks = louvain_communities(
            graph, seed=derive_seed(config.seed, "louvain")
        )
    elif config.formation == "label-propagation":
        blocks = label_propagation_communities(
            graph, seed=derive_seed(config.seed, "label-prop")
        )
    elif config.formation == "greedy-modularity":
        from repro.communities.greedy_modularity import (
            greedy_modularity_communities,
        )

        blocks = greedy_modularity_communities(graph)
    else:
        count = config.random_communities
        if count is None:
            # Match the Louvain community count so formations compare
            # at equal granularity (the paper fixes the count).
            count = max(
                1,
                len(
                    louvain_communities(
                        graph, seed=derive_seed(config.seed, "louvain")
                    )
                ),
            )
        blocks = random_partition(
            graph.num_nodes, count, seed=derive_seed(config.seed, "random-part")
        )
    if config.threshold == "bounded":
        policy = constant_thresholds(config.bounded_value)
    else:
        policy = fractional_thresholds(0.5)
    communities = build_structure(
        blocks, size_cap=config.size_cap, threshold_policy=policy
    )
    return graph, communities


def make_pool(
    graph: DiGraph,
    communities: CommunityStructure,
    config: ExperimentConfig,
    size: Optional[int] = None,
) -> RICSamplePool:
    """A RIC pool of ``size`` (default ``config.pool_size``) samples.

    ``config.engine`` selects serial or parallel generation; either way
    the pool contents are identical for a fixed ``config.seed``.
    """
    seed = derive_seed(config.seed, "ric-pool")
    if config.engine == "parallel":
        sampler = ParallelRICSampler(
            graph, communities, seed=seed, workers=config.workers
        )
    else:
        sampler = RICSampler(graph, communities, seed=seed)
    pool = RICSamplePool(sampler)
    pool.grow(size if size is not None else config.pool_size)
    if config.engine == "parallel":
        sampler.close()
    if obs_enabled():
        # Instrumented suites get the pool-composition diagnostics
        # (reach-size/source histograms, dedup ratio, footprint gauge)
        # for free; computing them only under an active session keeps
        # the uninstrumented path untouched.
        observe_pool(pool)
    return pool


def _maxr_solver(name: str, config: ExperimentConfig, candidate_limit: Optional[int]):
    seed = derive_seed(config.seed, "solver", name)
    if name == "UBG":
        return UBG()
    if name == "MAF":
        return MAF(seed=seed)
    if name == "BT":
        return BT(
            threshold_bound=max(2, config.bounded_value),
            candidate_limit=candidate_limit,
        )
    if name == "MB":
        return MB(
            threshold_bound=max(2, config.bounded_value),
            candidate_limit=candidate_limit,
            seed=seed,
        )
    if name == "GreedyC":
        return GreedyC()
    raise ExperimentError(f"{name!r} is not a MAXR solver")


def run_algorithm(
    name: str,
    graph: DiGraph,
    communities: CommunityStructure,
    k: int,
    config: ExperimentConfig,
    pool: Optional[RICSamplePool] = None,
    evaluator: Optional[BenefitEvaluator] = None,
    candidate_limit: Optional[int] = 50,
) -> AlgorithmRun:
    """Run one algorithm and evaluate its seed set's benefit.

    For the RIC-based solvers a shared ``pool`` may be passed so a k-
    sweep on one instance samples once; when absent, sampling time is
    charged to the algorithm (it is part of the method).
    """
    if evaluator is None:
        evaluator = BenefitEvaluator(
            graph,
            communities,
            num_trials=config.eval_trials,
            seed=derive_seed(config.seed, "evaluator", name, k),
        )
    timer = Stopwatch()
    with trace.span("experiment/run_algorithm", algorithm=name, k=k):
        if name in ("UBG", "MAF", "BT", "MB", "GreedyC"):
            solver = _maxr_solver(name, config, candidate_limit)
            with timer:
                local_pool = pool if pool is not None else make_pool(
                    graph, communities, config
                )
                selection = solver.solve(local_pool, k)
            seeds: Sequence[int] = selection.seeds
        elif name == "HBC":
            with timer:
                seeds = hbc_seeds(graph, communities, k)
        elif name == "KS":
            with timer:
                seeds = ks_seeds(communities, k)
        elif name == "IM":
            with timer:
                seeds = im_seeds(
                    graph,
                    k,
                    epsilon=config.epsilon,
                    delta=config.delta,
                    seed=derive_seed(config.seed, "im", k),
                    max_samples=20_000,
                )
        elif name == "Degree":
            with timer:
                seeds = high_degree_seeds(graph, k)
        elif name == "Random":
            with timer:
                seeds = random_seeds(
                    graph, k, seed=derive_seed(config.seed, "rand", k)
                )
        else:
            raise ExperimentError(f"unknown algorithm {name!r}")
        with trace.span("experiment/evaluate", algorithm=name, k=k):
            benefit = evaluator(seeds) if seeds else 0.0
        metrics.inc("experiment.runs.completed")
    return AlgorithmRun(
        algorithm=name,
        k=k,
        seeds=tuple(seeds),
        benefit=benefit,
        runtime_seconds=timer.elapsed,
    )


def _run_key(algorithm: str, k: int) -> str:
    """Checkpoint key for one algorithm × budget unit of a suite."""
    return f"{algorithm}|k={k}"


def _run_to_payload(run: AlgorithmRun) -> dict:
    return {
        "algorithm": run.algorithm,
        "k": run.k,
        "seeds": list(run.seeds),
        "benefit": run.benefit,
        "runtime_seconds": run.runtime_seconds,
    }


def _run_from_payload(payload: dict, path: str) -> AlgorithmRun:
    try:
        return AlgorithmRun(
            algorithm=payload["algorithm"],
            k=int(payload["k"]),
            seeds=tuple(payload["seeds"]),
            benefit=float(payload["benefit"]),
            runtime_seconds=float(payload["runtime_seconds"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(
            f"malformed run payload in checkpoint {path!r}: {payload!r}"
        ) from exc


def run_suite(
    config: ExperimentConfig,
    algorithms: Sequence[str],
    k_values: Sequence[int],
    candidate_limit: Optional[int] = 50,
    checkpoint: Union[None, str, CheckpointStore] = None,
    resume: bool = True,
) -> Dict[str, List[AlgorithmRun]]:
    """Run ``algorithms`` over ``k_values`` on one instance.

    RIC-based solvers share one pool per instance (sampled once at
    ``config.pool_size``); the benefit evaluator is shared per ``k`` so
    every algorithm is scored by the same Monte-Carlo stream count.
    Returns ``{algorithm: [AlgorithmRun per k]}``.

    ``checkpoint`` (a path or a
    :class:`~repro.experiments.checkpoint.CheckpointStore`; defaults to
    ``config.checkpoint_path``) makes the suite crash-safe: every
    completed algorithm × k run is recorded atomically, and a rerun
    against the same checkpoint skips completed runs entirely. Each run
    derives its RNG streams from ``config.seed`` alone, so a resumed
    suite is identical to an uninterrupted one. Set ``resume=False`` to
    discard an existing checkpoint file instead of resuming from it.
    """
    if checkpoint is None and config.checkpoint_path is not None:
        checkpoint = config.checkpoint_path
    store = as_checkpoint(checkpoint, resume=resume)
    todo = [
        (name, k)
        for k in k_values
        for name in algorithms
        if store is None or _run_key(name, k) not in store
    ]
    graph = communities = pool = None
    if todo:
        graph, communities = build_instance(config)
        needs_pool = any(
            name in ("UBG", "MAF", "BT", "MB", "GreedyC")
            for name, _ in todo
        )
        pool = make_pool(graph, communities, config) if needs_pool else None
    results: Dict[str, List[AlgorithmRun]] = {name: [] for name in algorithms}
    for k in k_values:
        pending = [
            name
            for name in algorithms
            if store is None or _run_key(name, k) not in store
        ]
        evaluator = None
        if pending:
            evaluator = BenefitEvaluator(
                graph,
                communities,
                num_trials=config.eval_trials,
                seed=derive_seed(config.seed, "evaluator", k),
            )
        for name in algorithms:
            key = _run_key(name, k)
            if store is not None and key in store:
                metrics.inc("experiment.runs.skipped")
                run = _run_from_payload(store.get(key), store.path)
                if evaluator is not None and run.seeds:
                    # The evaluator hands each evaluation the next child
                    # RNG stream; burn the restored run's stream so the
                    # recomputed runs below see exactly the streams an
                    # uninterrupted session would have given them.
                    evaluator.advance()
                results[name].append(run)
                continue
            run = run_algorithm(
                name,
                graph,
                communities,
                k,
                config,
                pool=pool,
                evaluator=evaluator,
                candidate_limit=candidate_limit,
            )
            if store is not None:
                store.record(key, _run_to_payload(run))
            results[name].append(run)
    if store is not None and obs_enabled():
        # Bind the suite's provenance to its checkpoint: a manifest
        # sibling records code version, seeds and config hash, so a
        # resumed suite can be audited against the run that started it.
        write_manifest(
            build_manifest(
                "run_suite",
                config=asdict(config),
                seeds={"seed": config.seed},
                artifacts={"checkpoint": store.path},
            ),
            manifest_path_for(store.path),
        )
    return results
