"""Scaling study: cost vs network size.

The paper discusses runtime only at fixed dataset sizes (Fig. 7); this
study sweeps the stand-in scale and measures, per size: RIC sampling
throughput, solver runtime and solution quality. It quantifies the
practical claim behind the paper's design — RIC sampling cost tracks
the explored neighbourhood, not the full graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.maf import MAF
from repro.core.ubg import UBG
from repro.diffusion.simulator import BenefitEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_instance, make_pool
from repro.rng import derive_seed
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class ScalePoint:
    """Measurements at one network scale."""

    scale: float
    num_nodes: int
    num_edges: int
    num_communities: int
    sampling_seconds: float
    ubg_seconds: float
    maf_seconds: float
    ubg_benefit: float
    maf_benefit: float


def scaling_study(
    base_config: ExperimentConfig,
    scales: Sequence[float] = (0.1, 0.2, 0.4),
    k: int = 10,
) -> List[ScalePoint]:
    """Run the size sweep; one :class:`ScalePoint` per scale."""
    points: List[ScalePoint] = []
    for scale in scales:
        config = base_config.with_overrides(scale=scale)
        graph, communities = build_instance(config)
        sampling_timer = Stopwatch()
        with sampling_timer:
            pool = make_pool(graph, communities, config)
        evaluator = BenefitEvaluator(
            graph,
            communities,
            num_trials=config.eval_trials,
            seed=derive_seed(config.seed, "scaling-eval", int(scale * 1000)),
        )
        ubg_timer = Stopwatch()
        with ubg_timer:
            ubg = UBG().solve(pool, k)
        maf_timer = Stopwatch()
        with maf_timer:
            maf = MAF(seed=derive_seed(config.seed, "scaling-maf")).solve(
                pool, k
            )
        points.append(
            ScalePoint(
                scale=scale,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                num_communities=communities.r,
                sampling_seconds=sampling_timer.elapsed,
                ubg_seconds=ubg_timer.elapsed,
                maf_seconds=maf_timer.elapsed,
                ubg_benefit=evaluator(ubg.seeds),
                maf_benefit=evaluator(maf.seeds),
            )
        )
    return points
