"""Kernel microbenchmarks and the perf-regression trajectory artifact.

The array-native kernel layer (frozen CSR sampling, flat coverage)
exists purely for speed — results are byte-identical to the reference
paths by construction. Speed claims rot silently, so this module
measures them on a fixed synthetic workload and records the numbers in
``benchmarks/BENCH_kernels.json``: a *trajectory* file that each
``python -m repro bench --record`` run appends one entry to, giving
future changes a perf baseline to diff against.

Measured quantities per run:

- sampling wall time and samples/sec for the mutable (dict/set) and
  frozen (CSR) RIC kernels on the same seed — identical sample streams,
  different machinery;
- marginal-evaluation throughput (``gain_pair`` calls/sec) for the
  reference, bitset and flat coverage engines over the same pool;
- end-to-end seed selection (UBG) wall time per engine;
- the combined speedup of the flat path (frozen sampling + flat
  selection) over the dict/set reference path and over the bitset
  default path;
- peak RSS of the process (``resource.getrusage``).

The workload is deterministic (fixed graph/community/sampling seeds);
only the timings vary between runs, which is exactly what a trajectory
is for.
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.communities.structure import Community, CommunityStructure
from repro.core.flat_engine import FlatCoverage
from repro.core.ubg import UBG
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.generators import planted_partition_graph
from repro.graph.weights import assign_weighted_cascade
from repro.obs import environment_fingerprint, trace
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler

#: Artifact schema identifier (bump when entry fields change shape).
SCHEMA = "repro-kernel-bench/1"

#: Standard workload: a 600-node planted-partition graph, 20 ground-
#: truth communities of 30, weighted-cascade weights, threshold 2.
WORKLOAD = {
    "graph": "planted_partition([30]*20, p_in=0.25, p_out=0.005)",
    "weights": "weighted_cascade",
    "threshold": 2,
    "graph_seed": 17,
    "sampling_seed": 11,
}


def build_workload() -> Tuple[DiGraph, CommunityStructure]:
    """The fixed benchmark instance (see :data:`WORKLOAD`)."""
    graph, blocks = planted_partition_graph(
        [30] * 20,
        p_in=0.25,
        p_out=0.005,
        directed=True,
        seed=WORKLOAD["graph_seed"],
    )
    assign_weighted_cascade(graph)
    communities = CommunityStructure(
        [
            Community(
                members=tuple(block),
                threshold=WORKLOAD["threshold"],
                benefit=float(len(block)),
            )
            for block in blocks
        ]
    )
    return graph, communities


def _time_sampling(graph, communities, samples: int) -> Tuple[float, list]:
    """Wall time to draw ``samples`` RIC samples on ``graph``."""
    sampler = RICSampler(graph, communities, seed=WORKLOAD["sampling_seed"])
    start = time.perf_counter()
    out = sampler.sample_many(samples)
    return time.perf_counter() - start, out


def _time_sampling_interleaved(
    variants, communities, samples: int, repeats: int = 3
) -> Tuple[Dict[str, float], Dict[str, list]]:
    """Best-of-``repeats`` sampling wall time per graph variant.

    The passes are interleaved (mutable, frozen, mutable, frozen, ...)
    so background load on a shared machine hits both kernels alike
    instead of biasing whichever happened to run second; taking the
    minimum then discards the noisy passes.
    """
    best: Dict[str, float] = {}
    outputs: Dict[str, list] = {}
    for _ in range(max(1, repeats)):
        for name, graph in variants.items():
            elapsed, out = _time_sampling(graph, communities, samples)
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
            outputs.setdefault(name, out)
    return best, outputs


def _marginal_throughput(state, nodes, min_seconds: float = 0.25) -> float:
    """``gain_pair`` calls/sec of ``state``, measured over ``nodes``.

    Loops whole passes over the candidate set until ``min_seconds``
    elapsed, so per-call overhead dominates and one slow outlier pass
    cannot skew the rate.
    """
    calls = 0
    start = time.perf_counter()
    while True:
        for node in nodes:
            state.gain_pair(node)
        calls += len(nodes)
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return calls / elapsed


def run_kernel_bench(samples: int = 10_000, k: int = 10) -> Dict[str, Any]:
    """Run the full microbenchmark suite once; return the entry dict.

    ``samples`` is the pool size (the acceptance workload uses 10k);
    ``k`` the seed budget for the end-to-end selection timing.
    """
    if samples < 1:
        raise ReproError(f"samples must be positive, got {samples}")
    graph, communities = build_workload()
    frozen = graph.freeze()

    with trace.span("bench/sampling", samples=samples):
        times, outputs = _time_sampling_interleaved(
            {"mutable": graph, "frozen": frozen}, communities, samples
        )
    t_mut, t_frozen = times["mutable"], times["frozen"]
    out_mut, out_frozen = outputs["mutable"], outputs["frozen"]
    if out_mut[: min(50, samples)] != out_frozen[: min(50, samples)]:
        raise ReproError(
            "frozen and mutable samplers disagree — kernel equivalence "
            "is broken; fix that before trusting any timing"
        )

    pool = RICSamplePool(RICSampler(frozen, communities, seed=1))
    pool.add_many(out_frozen)
    del out_mut, out_frozen
    compact_stats = pool.compact()
    nodes = sorted(pool.touching_nodes())

    from repro.core.bitset_engine import BitsetCoverage
    from repro.core.objective import CoverageState

    engines = {
        "reference": CoverageState,
        "bitset": BitsetCoverage,
        "flat": FlatCoverage,
    }
    marginals: Dict[str, float] = {}
    select_time: Dict[str, float] = {}
    for name, factory in engines.items():
        with trace.span("bench/engine", engine=name):
            marginals[name] = _marginal_throughput(factory(pool), nodes)
            start = time.perf_counter()
            UBG(engine=name).solve(pool, k)
            select_time[name] = time.perf_counter() - start

    combined_flat = t_frozen + select_time["flat"]
    combined_reference = t_mut + select_time["reference"]
    combined_bitset = t_mut + select_time["bitset"]
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "samples": samples,
        "k": k,
        "sampling": {
            "mutable_seconds": t_mut,
            "frozen_seconds": t_frozen,
            "mutable_samples_per_sec": samples / t_mut,
            "frozen_samples_per_sec": samples / t_frozen,
            "speedup": t_mut / t_frozen,
        },
        "marginals_per_sec": marginals,
        "selection_seconds": select_time,
        "combined": {
            "flat_path_seconds": combined_flat,
            "reference_path_seconds": combined_reference,
            "bitset_path_seconds": combined_bitset,
            "speedup_vs_reference": combined_reference / combined_flat,
            "speedup_vs_bitset": combined_bitset / combined_flat,
        },
        "pool_compaction": compact_stats,
        "peak_rss_kb": peak_rss_kb,
        "python": sys.version.split()[0],
        # Full provenance block (git SHA, platform, interpreter) so a
        # trajectory entry can be diffed against the commit it measured.
        "environment": environment_fingerprint(),
    }


def default_artifact_path() -> str:
    """``benchmarks/BENCH_kernels.json`` relative to the repo root
    (falls back to the current directory when run elsewhere)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    candidate = os.path.join(here, "benchmarks")
    base = candidate if os.path.isdir(candidate) else os.getcwd()
    return os.path.join(base, "BENCH_kernels.json")


def load_trajectory(path: str) -> Dict[str, Any]:
    """Read the artifact; an empty skeleton when it does not exist."""
    if not os.path.exists(path):
        return {"schema": SCHEMA, "workload": dict(WORKLOAD), "trajectory": []}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") != SCHEMA:
        raise ReproError(
            f"unexpected artifact schema {data.get('schema')!r} in {path}; "
            f"this build writes {SCHEMA!r}"
        )
    return data


def record_entry(
    entry: Dict[str, Any], path: Optional[str] = None
) -> Dict[str, Any]:
    """Append ``entry`` to the trajectory artifact (atomic rewrite).

    Returns the full artifact after the append. The write goes through
    a temp file + ``os.replace`` so a crash cannot leave a torn JSON.
    """
    path = path or default_artifact_path()
    data = load_trajectory(path)
    stamped = dict(entry)
    stamped["recorded_at"] = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
    )
    data["trajectory"].append(stamped)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return data


def format_entry(entry: Dict[str, Any]) -> str:
    """Human-readable summary of one benchmark entry."""
    sampling = entry["sampling"]
    combined = entry["combined"]
    lines: List[str] = [
        f"workload: {WORKLOAD['graph']}, {entry['samples']} samples, "
        f"k={entry['k']}",
        (
            "sampling:  mutable "
            f"{sampling['mutable_samples_per_sec']:.0f}/s, frozen "
            f"{sampling['frozen_samples_per_sec']:.0f}/s "
            f"({sampling['speedup']:.2f}x)"
        ),
        "marginals: "
        + ", ".join(
            f"{name} {rate:.0f}/s"
            for name, rate in entry["marginals_per_sec"].items()
        ),
        "selection: "
        + ", ".join(
            f"{name} {secs:.2f}s"
            for name, secs in entry["selection_seconds"].items()
        ),
        (
            "combined:  flat path "
            f"{combined['flat_path_seconds']:.2f}s — "
            f"{combined['speedup_vs_reference']:.2f}x vs reference, "
            f"{combined['speedup_vs_bitset']:.2f}x vs bitset"
        ),
        f"peak RSS:  {entry['peak_rss_kb'] / 1024:.0f} MiB",
    ]
    return "\n".join(lines)
