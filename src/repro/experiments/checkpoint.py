"""Crash-safe checkpointing for long experiment campaigns.

A :class:`CheckpointStore` is a JSONL file of ``{"key", "payload"}``
records, one per completed unit of work (a campaign grid cell, or one
algorithm × k run of a suite). Every :meth:`CheckpointStore.record`
rewrites the file via a sibling temporary file, ``fsync`` and
``os.replace``, so the checkpoint on disk is always a complete,
parseable prefix of the work done — a crash (power loss, OOM kill,
Ctrl-C) can lose at most the record being written, never corrupt the
earlier ones.

On restart, pass the same path with ``resume=True`` (the default): the
store loads the completed keys and the drivers
(:func:`~repro.experiments.campaign.run_campaign`,
:func:`~repro.experiments.runner.run_suite`) skip them, recomputing
nothing that already finished. A :class:`ResumeReport` summarises what
was skipped versus recomputed.

A malformed *final* line is tolerated (it is the signature of a crash
mid-write under filesystems without atomic replace; the record is
dropped and recomputed); malformed *earlier* lines mean real corruption
and raise :class:`~repro.errors.ExperimentError` naming the file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ExperimentError
from repro.obs import metrics, trace

PathLike = Union[str, "os.PathLike[str]"]

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ResumeReport:
    """What a checkpointed driver skipped versus recomputed.

    ``skipped`` holds the keys restored from the checkpoint without
    recomputation; ``computed`` the keys executed (and recorded) this
    session, in completion order.
    """

    path: str
    skipped: Tuple[str, ...]
    computed: Tuple[str, ...]

    @property
    def num_skipped(self) -> int:
        """Number of work units restored from the checkpoint."""
        return len(self.skipped)

    @property
    def num_computed(self) -> int:
        """Number of work units executed this session."""
        return len(self.computed)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"checkpoint {self.path}: {self.num_skipped} skipped, "
            f"{self.num_computed} computed"
        )


class CheckpointStore:
    """Atomic JSONL store of completed work units keyed by string.

    ``resume=True`` (default) loads any existing checkpoint at ``path``
    so previously completed keys are served from disk; ``resume=False``
    discards an existing file and starts fresh.
    """

    def __init__(self, path: PathLike, resume: bool = True) -> None:
        self.path = os.fspath(path)
        self._payloads: Dict[str, Any] = {}
        self._restored: List[str] = []
        self._computed: List[str] = []
        if resume and os.path.exists(self.path):
            self._load()
        elif os.path.exists(self.path):
            os.remove(self.path)

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            text = fh.read()
        lines = text.splitlines()
        if lines and not text.endswith("\n"):
            # Unterminated tail: either a crash mid-write or a live
            # writer's partial flush racing this read. Skip it without
            # parsing — a partial line must never be promoted to a
            # record just because its prefix happens to parse.
            lines.pop()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                payload = record["payload"]
            except (json.JSONDecodeError, TypeError, KeyError) as exc:
                if lineno == len(lines):
                    # Torn final line: the crash happened mid-write.
                    # Drop it — that unit simply gets recomputed.
                    break
                raise ExperimentError(
                    f"corrupt checkpoint {self.path!r} at line {lineno}: "
                    f"{exc}"
                ) from exc
            self._payloads[key] = payload

    def __contains__(self, key: str) -> bool:
        return key in self._payloads

    def __len__(self) -> int:
        return len(self._payloads)

    def keys(self) -> List[str]:
        """All completed keys currently in the store."""
        return list(self._payloads)

    def get(self, key: str) -> Any:
        """Payload recorded for ``key``; marks it as restored-on-resume.

        Raises :class:`~repro.errors.ExperimentError` for unknown keys.
        """
        if key not in self._payloads:
            raise ExperimentError(
                f"checkpoint {self.path!r} has no record for key {key!r}"
            )
        if key not in self._restored:
            self._restored.append(key)
        return self._payloads[key]

    def record(self, key: str, payload: Any) -> None:
        """Record ``key`` as completed with ``payload``, atomically.

        The whole store is rewritten to ``<path>.tmp`` on the same
        filesystem, fsync'd, then ``os.replace``d over ``path`` — so
        readers (and a post-crash resume) never observe a partial file.
        """
        self._payloads[key] = payload
        if key not in self._computed:
            self._computed.append(key)
        with trace.span("checkpoint/record", key=key):
            tmp_path = f"{self.path}.tmp"
            with open(tmp_path, "w", encoding="utf-8") as fh:
                for existing_key, existing_payload in self._payloads.items():
                    fh.write(
                        json.dumps(
                            {
                                "version": _SCHEMA_VERSION,
                                "key": existing_key,
                                "payload": existing_payload,
                            },
                            sort_keys=True,
                        )
                    )
                    fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self.path)
        metrics.inc("checkpoint.records.written")

    def report(self) -> ResumeReport:
        """Skipped/computed summary of this store's session."""
        return ResumeReport(
            path=self.path,
            skipped=tuple(self._restored),
            computed=tuple(self._computed),
        )


def as_checkpoint(
    value: Union[None, PathLike, CheckpointStore],
    resume: bool = True,
) -> Optional[CheckpointStore]:
    """Coerce ``None``, a path, or a store into an optional store.

    Drivers accept any of the three so casual callers can pass a bare
    path while tests/orchestrators share one :class:`CheckpointStore`.
    """
    if value is None:
        return None
    if isinstance(value, CheckpointStore):
        return value
    return CheckpointStore(value, resume=resume)
