"""Per-community breakdown of a seed set's effect.

Given an instance and a seed set, report for every community: its size,
threshold, benefit, how many seeds sit inside it, and its Monte-Carlo
tipping probability — the per-community decomposition of ``c(S)``. The
CLI and examples render it; analyses use the raw rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.communities.structure import CommunityStructure
from repro.diffusion.trace import average_tipping_profile
from repro.experiments.reporting import ascii_table
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike


@dataclass(frozen=True)
class CommunityOutcome:
    """One community's row in the solution report."""

    index: int
    size: int
    threshold: int
    benefit: float
    seeds_inside: int
    tipping_probability: float

    @property
    def expected_benefit(self) -> float:
        """This community's contribution to ``c(S)``."""
        return self.benefit * self.tipping_probability


def solution_report(
    graph: DiGraph,
    communities: CommunityStructure,
    seeds: Iterable[int],
    num_trials: int = 500,
    seed: SeedLike = None,
) -> List[CommunityOutcome]:
    """Build the per-community outcome rows, sorted by expected benefit
    (descending), ties by community index."""
    seed_list = list(seeds)
    profile = average_tipping_profile(
        graph, communities, seed_list, num_trials=num_trials, seed=seed
    )
    seed_set = set(seed_list)
    outcomes = []
    for index, community in enumerate(communities):
        inside = sum(1 for member in community.members if member in seed_set)
        outcomes.append(
            CommunityOutcome(
                index=index,
                size=community.size,
                threshold=community.threshold,
                benefit=community.benefit,
                seeds_inside=inside,
                tipping_probability=profile[index],
            )
        )
    outcomes.sort(key=lambda o: (-o.expected_benefit, o.index))
    return outcomes


def render_report(
    outcomes: List[CommunityOutcome], top: Optional[int] = None
) -> str:
    """ASCII rendering of the report (optionally only the ``top`` rows).

    A final row totals the expected benefit — an estimate of ``c(S)``.
    """
    shown = outcomes if top is None else outcomes[:top]
    total = sum(o.expected_benefit for o in outcomes)
    rows = [
        (
            o.index,
            o.size,
            o.threshold,
            o.benefit,
            o.seeds_inside,
            o.tipping_probability,
            o.expected_benefit,
        )
        for o in shown
    ]
    rows.append(("total", "", "", "", "", "", total))
    return ascii_table(
        ["community", "size", "h", "benefit", "seeds in", "Pr[tip]", "E[benefit]"],
        rows,
    )
