"""CELF Monte-Carlo greedy influence maximization.

The Kempe-Leskovec lineage baseline: greedy on the Monte-Carlo spread
estimate with CELF lazy evaluation (sound because expected spread is
submodular). Much slower than RIS for equal accuracy; included as the
reference the RIS solver is validated against on small graphs, and for
users who want a sampling-free code path.
"""

from __future__ import annotations

from typing import List

from repro.diffusion.simulator import spread_monte_carlo
from repro.errors import SolverError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.utils.heap import LazyMaxHeap
from repro.utils.validation import check_seed_budget


def celf_im(
    graph: DiGraph,
    k: int,
    num_trials: int = 200,
    seed: SeedLike = None,
) -> List[int]:
    """Select ``k`` seeds by CELF greedy over Monte-Carlo spread.

    ``num_trials`` cascades estimate each marginal; the same RNG parent
    seeds every evaluation so results are reproducible for a fixed seed.
    """
    check_seed_budget(k, graph.num_nodes, SolverError)
    if num_trials < 1:
        raise SolverError(f"num_trials must be >= 1, got {num_trials}")
    rng = make_rng(seed)
    chosen: List[int] = []
    current_spread = 0.0

    def marginal(node: int) -> float:
        spread = spread_monte_carlo(
            graph,
            chosen + [node],
            num_trials=num_trials,
            seed=spawn_rng(rng),
        )
        return spread - current_spread

    heap: LazyMaxHeap[int] = LazyMaxHeap()
    for node in graph.nodes():
        heap.push(node, float(graph.num_nodes))  # optimistic upper bound
    evaluated_this_round: dict = {}
    while heap and len(chosen) < k:
        node, cached = heap.pop_max()
        if evaluated_this_round.get(node) == len(chosen):
            # Fresh for the current round: it is the best available.
            chosen.append(node)
            current_spread += cached
            continue
        fresh = marginal(node)
        evaluated_this_round[node] = len(chosen)
        heap.push(node, fresh)
    return chosen
