"""Classic influence maximization (IM) — substrate and baseline.

IM is the special case of IMC with singleton communities and unit
thresholds. The paper compares against an RIS-based IM solver
(Section VI-A's ``IM`` baseline); both an RR-set solver and a CELF
Monte-Carlo greedy are provided.
"""

from repro.im.celf import celf_im
from repro.im.imm import IMMResult, imm
from repro.im.ris_im import ris_im, rr_greedy_cover

__all__ = ["ris_im", "rr_greedy_cover", "celf_im", "imm", "IMMResult"]
