"""RIS-based influence maximization (the SSA/IMM family's core loop).

Generates RR sets and greedily solves max coverage over them with lazy
(CELF-style) evaluation — sound here because coverage is submodular.
The sample count follows the stop-and-stare doubling pattern: start
from a Λ-sized pool, double until the greedy solution covers at least
Λ RR sets (or the cap is hit). This reproduces the practical behaviour
of SSA without its full statistical apparatus, which is enough for the
paper's ``IM`` baseline: IM maximizes spread, then the experiment
evaluates its community benefit.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import SolverError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike
from repro.sampling.pool import RRSamplePool
from repro.sampling.rr import RRSampler
from repro.utils.heap import LazyMaxHeap
from repro.utils.validation import check_fraction, check_seed_budget


def rr_greedy_cover(pool: RRSamplePool, k: int) -> List[int]:
    """Lazy greedy max coverage over the RR-set pool."""
    covered = [False] * len(pool.samples)
    heap: LazyMaxHeap[int] = LazyMaxHeap()

    def gain(node: int) -> int:
        return sum(1 for idx in pool.sets_containing(node) if not covered[idx])

    degrees = {}
    for idx, rr in enumerate(pool.samples):
        for node in rr:
            degrees[node] = degrees.get(node, 0) + 1
    for node in sorted(degrees):
        heap.push(node, degrees[node])

    chosen: List[int] = []
    while heap and len(chosen) < k:
        node, _ = heap.pop_max()
        fresh = gain(node)
        if fresh <= 0:
            continue
        if heap:
            _, next_best = heap.peek_max()
            if fresh < next_best:
                heap.push(node, fresh)
                continue
        chosen.append(node)
        for idx in pool.sets_containing(node):
            covered[idx] = True
    return chosen


def ris_im(
    graph: DiGraph,
    k: int,
    epsilon: float = 0.2,
    delta: float = 0.2,
    seed: SeedLike = None,
    max_samples: int = 100_000,
) -> Tuple[List[int], float]:
    """Select ``k`` seeds maximizing spread via RR sets.

    Returns ``(seeds, estimated_spread)``. The doubling loop stops when
    the greedy solution covers at least the SSA-style threshold
    ``Λ = (2 + 2ε/3)·ln(1/δ)/ε²`` RR sets, so the spread estimate has
    bounded relative error at the returned solution.
    """
    check_seed_budget(k, graph.num_nodes, SolverError)
    check_fraction(epsilon, "epsilon", SolverError)
    check_fraction(delta, "delta", SolverError)
    lam = (2.0 + 2.0 * epsilon / 3.0) * math.log(1.0 / delta) / (epsilon * epsilon)
    pool = RRSamplePool(RRSampler(graph, seed=seed))
    pool.grow(math.ceil(lam))
    while True:
        seeds = rr_greedy_cover(pool, k)
        if pool.coverage(seeds) >= lam or len(pool) >= max_samples:
            return seeds, pool.estimate_spread(seeds)
        pool.grow(min(len(pool), max_samples - len(pool)))
