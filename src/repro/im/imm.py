"""IMM — Influence Maximization via Martingales (Tang et al., SIGMOD'15).

The second state-of-the-art IM framework the paper cites (alongside
SSA). Two phases:

1. **Parameter estimation** — geometric search over guesses
   ``x = n/2, n/4, ...``: for each, generate ``θ_i`` RR sets and test
   whether greedy's coverage certifies ``OPT ≥ x``; the first success
   gives ``LB = x / (1 + ε')`` with ``ε' = √2·ε``.
2. **Node selection** — generate ``θ(LB)`` RR sets and run greedy max
   coverage once; the result is ``(1 - 1/e - ε)``-approximate with
   probability ``1 - 1/n^ℓ``.

Constants follow the paper (Algorithms 2-3 of IMM); the practical
``max_samples`` cap bounds worst-case work like everywhere else in this
library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SolverError
from repro.graph.digraph import DiGraph
from repro.im.ris_im import rr_greedy_cover
from repro.rng import SeedLike
from repro.sampling.pool import RRSamplePool
from repro.sampling.rr import RRSampler
from repro.utils.math import log_binomial
from repro.utils.validation import check_fraction, check_seed_budget

#: 1 - 1/e
_APPROX = 1.0 - 1.0 / math.e


@dataclass(frozen=True)
class IMMResult:
    """Result of :func:`imm`."""

    seeds: Tuple[int, ...]
    spread_estimate: float
    num_samples: int
    lower_bound: float


def _lambda_star(n: int, k: int, epsilon: float, ell: float) -> float:
    """IMM's λ* constant for the final θ (Theorem 1 of IMM)."""
    log_nk = log_binomial(n, k)
    alpha = math.sqrt(ell * math.log(n) + math.log(2.0))
    beta = math.sqrt(_APPROX * (log_nk + ell * math.log(n) + math.log(2.0)))
    return 2.0 * n * ((_APPROX * alpha + beta) ** 2) / (epsilon * epsilon)


def _lambda_prime(n: int, k: int, epsilon_prime: float, ell: float) -> float:
    """IMM's λ' constant for the estimation phase (Alg. 2 of IMM)."""
    log_nk = log_binomial(n, k)
    return (
        (2.0 + 2.0 * epsilon_prime / 3.0)
        * (log_nk + ell * math.log(n) + math.log(math.log2(max(n, 2))))
        * n
        / (epsilon_prime * epsilon_prime)
    )


def imm(
    graph: DiGraph,
    k: int,
    epsilon: float = 0.2,
    ell: float = 1.0,
    seed: SeedLike = None,
    max_samples: int = 200_000,
) -> IMMResult:
    """Select ``k`` seeds with the IMM framework.

    Returns seeds, the RR-based spread estimate, the realised sample
    count and the certified OPT lower bound. ``ell`` controls the
    failure probability ``1/n^ℓ``.
    """
    check_seed_budget(k, graph.num_nodes, SolverError)
    check_fraction(epsilon, "epsilon", SolverError)
    if ell <= 0:
        raise SolverError(f"ell must be positive, got {ell}")
    n = graph.num_nodes
    if n < 2:
        return IMMResult(
            seeds=tuple(range(n)), spread_estimate=float(n), num_samples=0,
            lower_bound=float(n),
        )
    # IMM's ℓ-adjustment so the union over both phases still holds.
    ell = ell * (1.0 + math.log(2.0) / math.log(n))
    epsilon_prime = math.sqrt(2.0) * epsilon
    pool = RRSamplePool(RRSampler(graph, seed=seed))
    lam_prime = _lambda_prime(n, k, epsilon_prime, ell)

    lower_bound = 1.0
    levels = max(1, int(math.ceil(math.log2(n))) - 1)
    for i in range(1, levels + 1):
        x = n / (2.0 ** i)
        theta_i = min(lam_prime / x, float(max_samples))
        pool.grow(max(0, math.ceil(theta_i) - len(pool)))
        seeds = rr_greedy_cover(pool, k)
        coverage_fraction = pool.coverage(seeds) / len(pool)
        if n * coverage_fraction >= (1.0 + epsilon_prime) * x:
            lower_bound = n * coverage_fraction / (1.0 + epsilon_prime)
            break
        if len(pool) >= max_samples:
            break

    theta = min(_lambda_star(n, k, epsilon, ell) / lower_bound, float(max_samples))
    pool.grow(max(0, math.ceil(theta) - len(pool)))
    seeds = rr_greedy_cover(pool, k)
    return IMMResult(
        seeds=tuple(seeds),
        spread_estimate=pool.estimate_spread(seeds),
        num_samples=len(pool),
        lower_bound=lower_bound,
    )
