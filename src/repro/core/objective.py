"""Incremental coverage state over a RIC sample pool.

Both MAXR objectives are functions of, per sample ``g``, the set of
*covered members* ``I_g(S) = {u ∈ C_g : R_g(u) ∩ S ≠ ∅}``:

- ``ĉ_R``  counts samples with ``|I_g(S)| ≥ h_g``          (eq. 3),
- ``ν_R``  sums ``min(|I_g(S)|/h_g, 1)``                   (eq. 7).

:class:`CoverageState` maintains ``I_g(S)`` incrementally as seeds are
added, and computes the marginal gain of a candidate node for either
objective in time proportional to the candidate's coverage list — the
workhorse of every greedy solver in this package.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SolverError
from repro.obs import metrics
from repro.sampling.pool import RICSamplePool


class CoverageState:
    """Mutable coverage bookkeeping for greedy selection on a pool.

    The state snapshots the pool's sample count at construction. If the
    pool later grows (IMCAF's doubling loop), a stale state would either
    IndexError on new sample indices or silently ignore the new samples
    in gains — so every accessor fails fast with :class:`SolverError`
    until :meth:`resync` incorporates the growth (or a fresh state is
    built, which is what IMCAF's per-stage ``solver.solve`` call does).
    """

    def __init__(self, pool: RICSamplePool) -> None:
        self.pool = pool
        self.seeds: List[int] = []
        self._seed_set: Set[int] = set()
        # covered[g] = set of member indices of sample g hit by the seeds.
        self._covered: List[Set[int]] = [set() for _ in pool.samples]
        self._influenced = 0
        self._fractional = 0.0
        self._synced_samples = len(pool.samples)
        self._resyncing = False

    def _check_sync(self) -> None:
        """Fail fast when the pool grew since this state last synced."""
        if self._resyncing:
            raise SolverError(
                "coverage state is mid-resync() (another thread is "
                "rebuilding it); concurrent marginal/accessor calls "
                "would read half-built state — serialize engine access "
                "(see the locking contract in docs/serving.md)"
            )
        if len(self.pool.samples) != self._synced_samples:
            raise SolverError(
                f"pool grew from {self._synced_samples} to "
                f"{len(self.pool.samples)} samples since this coverage "
                "state was built; call resync() or rebuild the state"
            )

    def resync(self) -> None:
        """Incorporate samples added to the pool since the last sync.

        Extends the per-sample bookkeeping for the new indices and
        replays the current seed set's coverage of the *new* samples
        only — O(total coverage of the seeds in the new suffix).

        Not thread-safe: a concurrent :meth:`resync` (or any marginal /
        accessor call while one is in progress) raises ``SolverError``
        instead of corrupting state silently — callers must serialize
        engine access (see docs/serving.md).
        """
        if self._resyncing:
            raise SolverError(
                "CoverageState.resync() re-entered while another "
                "resync() is in progress; serialize engine access "
                "(see the locking contract in docs/serving.md)"
            )
        samples = self.pool.samples
        old = self._synced_samples
        if len(samples) == old:
            return
        metrics.inc("coverage.resyncs")
        self._resyncing = True
        try:
            self._covered.extend(set() for _ in range(len(samples) - old))
            for node in self.seeds:
                for sample_idx, member_idx in self.pool.coverage_of(node):
                    if sample_idx < old:
                        continue
                    covered = self._covered[sample_idx]
                    if member_idx in covered:
                        continue
                    threshold = samples[sample_idx].threshold
                    before = len(covered)
                    covered.add(member_idx)
                    if before < threshold:
                        self._fractional += 1.0 / threshold
                        if before + 1 == threshold:
                            self._influenced += 1
            self._synced_samples = len(samples)
        finally:
            self._resyncing = False

    # ------------------------------------------------------------------
    # Current objective values
    # ------------------------------------------------------------------

    @property
    def influenced_count(self) -> int:
        """``Σ_g X_g(S)`` for the current seed set."""
        return self._influenced

    @property
    def fractional_count(self) -> float:
        """``Σ_g min(|I_g(S)|/h_g, 1)`` for the current seed set."""
        return self._fractional

    def estimate_benefit(self) -> float:
        """``ĉ_R(S)`` for the current seed set."""
        self._check_sync()
        if not self.pool.samples:
            return 0.0
        return (
            self.pool.total_benefit * self._influenced / len(self.pool.samples)
        )

    def estimate_upper_bound(self) -> float:
        """``ν_R(S)`` for the current seed set."""
        self._check_sync()
        if not self.pool.samples:
            return 0.0
        return (
            self.pool.total_benefit * self._fractional / len(self.pool.samples)
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_seed(self, node: int) -> None:
        """Add ``node`` to the seed set and update all per-sample state."""
        self._check_sync()
        if node in self._seed_set:
            raise SolverError(f"node {node} is already a seed")
        self.seeds.append(node)
        self._seed_set.add(node)
        samples = self.pool.samples
        for sample_idx, member_idx in self.pool.coverage_of(node):
            covered = self._covered[sample_idx]
            if member_idx in covered:
                continue
            threshold = samples[sample_idx].threshold
            before = len(covered)
            covered.add(member_idx)
            if before < threshold:
                self._fractional += 1.0 / threshold
                if before + 1 == threshold:
                    self._influenced += 1

    # ------------------------------------------------------------------
    # Marginal gains
    # ------------------------------------------------------------------

    def _new_coverage(self, node: int) -> Dict[int, int]:
        """Per-sample count of members newly covered by ``node``."""
        fresh: Dict[int, Set[int]] = {}
        for sample_idx, member_idx in self.pool.coverage_of(node):
            if member_idx not in self._covered[sample_idx]:
                fresh.setdefault(sample_idx, set()).add(member_idx)
        return {idx: len(members) for idx, members in fresh.items()}

    def gain_influenced(self, node: int) -> int:
        """Marginal ``Σ_g X_g`` gain of adding ``node`` (ĉ objective)."""
        self._check_sync()
        if node in self._seed_set:
            return 0
        samples = self.pool.samples
        gain = 0
        for sample_idx, new in self._new_coverage(node).items():
            current = len(self._covered[sample_idx])
            threshold = samples[sample_idx].threshold
            if current < threshold <= current + new:
                gain += 1
        return gain

    def gain_fractional(self, node: int) -> float:
        """Marginal ``Σ_g min(|I_g|/h_g, 1)`` gain of ``node`` (ν objective)."""
        self._check_sync()
        if node in self._seed_set:
            return 0.0
        samples = self.pool.samples
        gain = 0.0
        for sample_idx, new in self._new_coverage(node).items():
            current = len(self._covered[sample_idx])
            threshold = samples[sample_idx].threshold
            if current < threshold:
                gain += (min(current + new, threshold) - current) / threshold
        return gain

    def gain_pair(self, node: int) -> Tuple[int, float]:
        """Both marginals in one pass (used by the ĉ greedy's tie-break)."""
        self._check_sync()
        if node in self._seed_set:
            return 0, 0.0
        samples = self.pool.samples
        gain_c = 0
        gain_nu = 0.0
        for sample_idx, new in self._new_coverage(node).items():
            current = len(self._covered[sample_idx])
            threshold = samples[sample_idx].threshold
            if current < threshold:
                gain_nu += (min(current + new, threshold) - current) / threshold
                if current + new >= threshold:
                    gain_c += 1
        return gain_c, gain_nu


def evaluate_benefit(
    pool: RICSamplePool, seeds: Iterable[int], engine: str = "reference"
) -> float:
    """One-shot ``ĉ_R(S)`` routed through the selected engine's arithmetic.

    ``"reference"`` delegates to :meth:`RICSamplePool.estimate_benefit`
    (per-sample member *sets*); ``"bitset"`` and ``"flat"`` union
    per-sample member *masks* and popcount them — the same integer
    influenced-count either way, hence bit-identical floats. Frequency
    solvers (MAF, BT/MB) use this to honour their ``engine`` setting
    for final seed-set evaluation without building full incremental
    engine state for a single evaluation.
    """
    if engine == "reference":
        return pool.estimate_benefit(seeds)
    if engine not in ("bitset", "flat"):
        raise SolverError(
            f"engine must be 'reference', 'bitset' or 'flat', got {engine!r}"
        )
    if not pool.samples:
        return 0.0
    from repro.core.bitset_engine import _popcount

    masks: Dict[int, int] = {}
    for v in set(seeds):
        for sample_idx, member_idx in pool.coverage_of(v):
            masks[sample_idx] = masks.get(sample_idx, 0) | (1 << member_idx)
    samples = pool.samples
    influenced = sum(
        1
        for sample_idx, mask in masks.items()
        if _popcount(mask) >= samples[sample_idx].threshold
    )
    return pool.total_benefit * influenced / len(samples)
