"""Incremental coverage state over a RIC sample pool.

Both MAXR objectives are functions of, per sample ``g``, the set of
*covered members* ``I_g(S) = {u ∈ C_g : R_g(u) ∩ S ≠ ∅}``:

- ``ĉ_R``  counts samples with ``|I_g(S)| ≥ h_g``          (eq. 3),
- ``ν_R``  sums ``min(|I_g(S)|/h_g, 1)``                   (eq. 7).

:class:`CoverageState` maintains ``I_g(S)`` incrementally as seeds are
added, and computes the marginal gain of a candidate node for either
objective in time proportional to the candidate's coverage list — the
workhorse of every greedy solver in this package.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SolverError
from repro.sampling.pool import RICSamplePool


class CoverageState:
    """Mutable coverage bookkeeping for greedy selection on a pool."""

    def __init__(self, pool: RICSamplePool) -> None:
        self.pool = pool
        self.seeds: List[int] = []
        self._seed_set: Set[int] = set()
        # covered[g] = set of member indices of sample g hit by the seeds.
        self._covered: List[Set[int]] = [set() for _ in pool.samples]
        self._influenced = 0
        self._fractional = 0.0

    # ------------------------------------------------------------------
    # Current objective values
    # ------------------------------------------------------------------

    @property
    def influenced_count(self) -> int:
        """``Σ_g X_g(S)`` for the current seed set."""
        return self._influenced

    @property
    def fractional_count(self) -> float:
        """``Σ_g min(|I_g(S)|/h_g, 1)`` for the current seed set."""
        return self._fractional

    def estimate_benefit(self) -> float:
        """``ĉ_R(S)`` for the current seed set."""
        if not self.pool.samples:
            return 0.0
        return (
            self.pool.total_benefit * self._influenced / len(self.pool.samples)
        )

    def estimate_upper_bound(self) -> float:
        """``ν_R(S)`` for the current seed set."""
        if not self.pool.samples:
            return 0.0
        return (
            self.pool.total_benefit * self._fractional / len(self.pool.samples)
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_seed(self, node: int) -> None:
        """Add ``node`` to the seed set and update all per-sample state."""
        if node in self._seed_set:
            raise SolverError(f"node {node} is already a seed")
        self.seeds.append(node)
        self._seed_set.add(node)
        samples = self.pool.samples
        for sample_idx, member_idx in self.pool.coverage_of(node):
            covered = self._covered[sample_idx]
            if member_idx in covered:
                continue
            threshold = samples[sample_idx].threshold
            before = len(covered)
            covered.add(member_idx)
            if before < threshold:
                self._fractional += 1.0 / threshold
                if before + 1 == threshold:
                    self._influenced += 1

    # ------------------------------------------------------------------
    # Marginal gains
    # ------------------------------------------------------------------

    def _new_coverage(self, node: int) -> Dict[int, int]:
        """Per-sample count of members newly covered by ``node``."""
        fresh: Dict[int, Set[int]] = {}
        for sample_idx, member_idx in self.pool.coverage_of(node):
            if member_idx not in self._covered[sample_idx]:
                fresh.setdefault(sample_idx, set()).add(member_idx)
        return {idx: len(members) for idx, members in fresh.items()}

    def gain_influenced(self, node: int) -> int:
        """Marginal ``Σ_g X_g`` gain of adding ``node`` (ĉ objective)."""
        if node in self._seed_set:
            return 0
        samples = self.pool.samples
        gain = 0
        for sample_idx, new in self._new_coverage(node).items():
            current = len(self._covered[sample_idx])
            threshold = samples[sample_idx].threshold
            if current < threshold <= current + new:
                gain += 1
        return gain

    def gain_fractional(self, node: int) -> float:
        """Marginal ``Σ_g min(|I_g|/h_g, 1)`` gain of ``node`` (ν objective)."""
        if node in self._seed_set:
            return 0.0
        samples = self.pool.samples
        gain = 0.0
        for sample_idx, new in self._new_coverage(node).items():
            current = len(self._covered[sample_idx])
            threshold = samples[sample_idx].threshold
            if current < threshold:
                gain += (min(current + new, threshold) - current) / threshold
        return gain

    def gain_pair(self, node: int) -> Tuple[int, float]:
        """Both marginals in one pass (used by the ĉ greedy's tie-break)."""
        if node in self._seed_set:
            return 0, 0.0
        samples = self.pool.samples
        gain_c = 0
        gain_nu = 0.0
        for sample_idx, new in self._new_coverage(node).items():
            current = len(self._covered[sample_idx])
            threshold = samples[sample_idx].threshold
            if current < threshold:
                gain_nu += (min(current + new, threshold) - current) / threshold
                if current + new >= threshold:
                    gain_c += 1
        return gain_c, gain_nu
