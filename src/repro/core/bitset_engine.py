"""Bitset-backed coverage engine.

``CoverageState`` keeps per-sample member sets as Python ``set``
objects — flexible, but each greedy round churns many small sets. This
engine packs each sample's covered-member mask into a Python ``int``
(arbitrary-precision bitset) and each node's coverage into per-sample
masks, so a marginal evaluation is a handful of integer ANDs/ORs and
``bit_count`` calls. Selected automatically by ``UBG(engine="bitset")``
style call sites; behaviour is identical to the reference engine (the
test suite cross-checks them on random pools).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import SolverError
from repro.obs import metrics
from repro.sampling.pool import RICSamplePool

# int.bit_count() exists from Python 3.10; fall back for 3.9.
if hasattr(int, "bit_count"):

    def _popcount(x: int) -> int:
        return x.bit_count()

else:  # pragma: no cover - exercised only on Python 3.9

    def _popcount(x: int) -> int:
        return bin(x).count("1")


class BitsetCoverage:
    """Incremental ĉ/ν coverage over a pool, bitset-backed.

    The public surface mirrors :class:`~repro.core.objective.CoverageState`:
    ``add_seed``, ``gain_influenced``, ``gain_fractional``, ``gain_pair``,
    ``resync`` and the two estimate accessors. Like the reference engine,
    it snapshots the pool's sample count at construction and fails fast
    (``SolverError``) when the pool has grown, until :meth:`resync` packs
    the new samples' masks in.
    """

    def __init__(self, pool: RICSamplePool) -> None:
        self.pool = pool
        samples = pool.samples
        self._thresholds = [s.threshold for s in samples]
        # node -> {sample_idx: member mask}
        self._node_masks: Dict[int, Dict[int, int]] = {}
        for node in pool.touching_nodes():
            masks: Dict[int, int] = {}
            for sample_idx, member_idx in pool.coverage_of(node):
                masks[sample_idx] = masks.get(sample_idx, 0) | (1 << member_idx)
            self._node_masks[node] = masks
        self._covered_mask = [0] * len(samples)
        self._covered_count = [0] * len(samples)
        self.seeds: List[int] = []
        self._seed_set = set()
        self._influenced = 0
        self._fractional = 0.0
        self._synced_samples = len(samples)
        self._resyncing = False

    def _check_sync(self) -> None:
        """Fail fast when the pool grew since this engine last synced."""
        if self._resyncing:
            raise SolverError(
                "bitset engine is mid-resync() (another thread is "
                "rebuilding it); concurrent marginal/accessor calls "
                "would read half-built state — serialize engine access "
                "(see the locking contract in docs/serving.md)"
            )
        if len(self.pool.samples) != self._synced_samples:
            raise SolverError(
                f"pool grew from {self._synced_samples} to "
                f"{len(self.pool.samples)} samples since this bitset "
                "engine was built; call resync() or rebuild the engine"
            )

    def resync(self) -> None:
        """Incorporate samples added to the pool since the last sync.

        Packs member masks for the new sample indices and replays the
        current seed set against the new suffix only.

        Not thread-safe: a concurrent :meth:`resync` (or any marginal /
        accessor call while one is in progress) raises ``SolverError``
        instead of corrupting state silently — callers must serialize
        engine access (see docs/serving.md).
        """
        if self._resyncing:
            raise SolverError(
                "BitsetCoverage.resync() re-entered while another "
                "resync() is in progress; serialize engine access "
                "(see the locking contract in docs/serving.md)"
            )
        samples = self.pool.samples
        old = self._synced_samples
        if len(samples) == old:
            return
        metrics.inc("coverage.resyncs")
        self._resyncing = True
        try:
            grown = len(samples) - old
            self._thresholds.extend(s.threshold for s in samples[old:])
            self._covered_mask.extend([0] * grown)
            self._covered_count.extend([0] * grown)
            for offset, sample in enumerate(samples[old:]):
                sample_idx = old + offset
                for member_idx, reach in enumerate(sample.reach_sets):
                    bit = 1 << member_idx
                    for node in reach:
                        masks = self._node_masks.setdefault(node, {})
                        masks[sample_idx] = masks.get(sample_idx, 0) | bit
            for node in self.seeds:
                for sample_idx, mask in self._node_masks.get(node, {}).items():
                    if sample_idx < old:
                        continue
                    self._apply_mask(sample_idx, mask)
            self._synced_samples = len(samples)
        finally:
            self._resyncing = False

    # -- accessors ------------------------------------------------------

    @property
    def influenced_count(self) -> int:
        """``Σ_g X_g(S)`` for the current seed set."""
        return self._influenced

    @property
    def fractional_count(self) -> float:
        """``Σ_g min(|I_g(S)|/h_g, 1)`` for the current seed set."""
        return self._fractional

    def estimate_benefit(self) -> float:
        """``ĉ_R(S)`` for the current seed set."""
        self._check_sync()
        if not self.pool.samples:
            return 0.0
        return self.pool.total_benefit * self._influenced / len(self.pool.samples)

    def estimate_upper_bound(self) -> float:
        """``ν_R(S)`` for the current seed set."""
        self._check_sync()
        if not self.pool.samples:
            return 0.0
        return self.pool.total_benefit * self._fractional / len(self.pool.samples)

    # -- mutation -------------------------------------------------------

    def _apply_mask(self, sample_idx: int, mask: int) -> None:
        """Merge one seed's member mask for one sample into the state."""
        new_bits = mask & ~self._covered_mask[sample_idx]
        if not new_bits:
            return
        threshold = self._thresholds[sample_idx]
        before = self._covered_count[sample_idx]
        added = _popcount(new_bits)
        self._covered_mask[sample_idx] |= new_bits
        self._covered_count[sample_idx] = before + added
        if before < threshold:
            effective = min(before + added, threshold) - before
            self._fractional += effective / threshold
            if before + added >= threshold:
                self._influenced += 1

    def add_seed(self, node: int) -> None:
        """Add ``node`` and update all masks/counters."""
        self._check_sync()
        if node in self._seed_set:
            raise SolverError(f"node {node} is already a seed")
        self.seeds.append(node)
        self._seed_set.add(node)
        for sample_idx, mask in self._node_masks.get(node, {}).items():
            self._apply_mask(sample_idx, mask)

    # -- marginals ------------------------------------------------------

    def gain_pair(self, node: int) -> Tuple[int, float]:
        """Marginal (ĉ, ν) gains of adding ``node``."""
        self._check_sync()
        if node in self._seed_set:
            return 0, 0.0
        gain_c = 0
        gain_nu = 0.0
        for sample_idx, mask in self._node_masks.get(node, {}).items():
            new_bits = mask & ~self._covered_mask[sample_idx]
            if not new_bits:
                continue
            threshold = self._thresholds[sample_idx]
            before = self._covered_count[sample_idx]
            if before >= threshold:
                continue
            added = _popcount(new_bits)
            gain_nu += (min(before + added, threshold) - before) / threshold
            if before + added >= threshold:
                gain_c += 1
        return gain_c, gain_nu

    def gain_influenced(self, node: int) -> int:
        """Marginal ĉ gain of ``node``."""
        return self.gain_pair(node)[0]

    def gain_fractional(self, node: int) -> float:
        """Marginal ν gain of ``node``."""
        return self.gain_pair(node)[1]
