"""Bitset-backed coverage engine.

``CoverageState`` keeps per-sample member sets as Python ``set``
objects — flexible, but each greedy round churns many small sets. This
engine packs each sample's covered-member mask into a Python ``int``
(arbitrary-precision bitset) and each node's coverage into per-sample
masks, so a marginal evaluation is a handful of integer ANDs/ORs and
``bit_count`` calls. Selected automatically by ``UBG(engine="bitset")``
style call sites; behaviour is identical to the reference engine (the
test suite cross-checks them on random pools).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import SolverError
from repro.sampling.pool import RICSamplePool

# int.bit_count() exists from Python 3.10; fall back for 3.9.
if hasattr(int, "bit_count"):

    def _popcount(x: int) -> int:
        return x.bit_count()

else:  # pragma: no cover - exercised only on Python 3.9

    def _popcount(x: int) -> int:
        return bin(x).count("1")


class BitsetCoverage:
    """Incremental ĉ/ν coverage over a pool, bitset-backed.

    The public surface mirrors :class:`~repro.core.objective.CoverageState`:
    ``add_seed``, ``gain_influenced``, ``gain_fractional``, ``gain_pair``
    and the two estimate accessors.
    """

    def __init__(self, pool: RICSamplePool) -> None:
        self.pool = pool
        samples = pool.samples
        self._thresholds = [s.threshold for s in samples]
        # node -> {sample_idx: member mask}
        self._node_masks: Dict[int, Dict[int, int]] = {}
        for node in pool.touching_nodes():
            masks: Dict[int, int] = {}
            for sample_idx, member_idx in pool.coverage_of(node):
                masks[sample_idx] = masks.get(sample_idx, 0) | (1 << member_idx)
            self._node_masks[node] = masks
        self._covered_mask = [0] * len(samples)
        self._covered_count = [0] * len(samples)
        self.seeds: List[int] = []
        self._seed_set = set()
        self._influenced = 0
        self._fractional = 0.0

    # -- accessors ------------------------------------------------------

    @property
    def influenced_count(self) -> int:
        """``Σ_g X_g(S)`` for the current seed set."""
        return self._influenced

    @property
    def fractional_count(self) -> float:
        """``Σ_g min(|I_g(S)|/h_g, 1)`` for the current seed set."""
        return self._fractional

    def estimate_benefit(self) -> float:
        """``ĉ_R(S)`` for the current seed set."""
        if not self.pool.samples:
            return 0.0
        return self.pool.total_benefit * self._influenced / len(self.pool.samples)

    def estimate_upper_bound(self) -> float:
        """``ν_R(S)`` for the current seed set."""
        if not self.pool.samples:
            return 0.0
        return self.pool.total_benefit * self._fractional / len(self.pool.samples)

    # -- mutation -------------------------------------------------------

    def add_seed(self, node: int) -> None:
        """Add ``node`` and update all masks/counters."""
        if node in self._seed_set:
            raise SolverError(f"node {node} is already a seed")
        self.seeds.append(node)
        self._seed_set.add(node)
        for sample_idx, mask in self._node_masks.get(node, {}).items():
            new_bits = mask & ~self._covered_mask[sample_idx]
            if not new_bits:
                continue
            threshold = self._thresholds[sample_idx]
            before = self._covered_count[sample_idx]
            added = _popcount(new_bits)
            self._covered_mask[sample_idx] |= new_bits
            self._covered_count[sample_idx] = before + added
            if before < threshold:
                effective = min(before + added, threshold) - before
                self._fractional += effective / threshold
                if before + added >= threshold:
                    self._influenced += 1

    # -- marginals ------------------------------------------------------

    def gain_pair(self, node: int) -> Tuple[int, float]:
        """Marginal (ĉ, ν) gains of adding ``node``."""
        if node in self._seed_set:
            return 0, 0.0
        gain_c = 0
        gain_nu = 0.0
        for sample_idx, mask in self._node_masks.get(node, {}).items():
            new_bits = mask & ~self._covered_mask[sample_idx]
            if not new_bits:
                continue
            threshold = self._thresholds[sample_idx]
            before = self._covered_count[sample_idx]
            if before >= threshold:
                continue
            added = _popcount(new_bits)
            gain_nu += (min(before + added, threshold) - before) / threshold
            if before + added >= threshold:
                gain_c += 1
        return gain_c, gain_nu

    def gain_influenced(self, node: int) -> int:
        """Marginal ĉ gain of ``node``."""
        return self.gain_pair(node)[0]

    def gain_fractional(self, node: int) -> float:
        """Marginal ν gain of ``node``."""
        return self.gain_pair(node)[1]
