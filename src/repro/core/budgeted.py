"""Budgeted (cost-aware) IMC — the paper's future-work direction.

The authors' own prior work (CTVM, ref. [8]) generalises IM with
per-node seeding costs and a budget ``B``; this module ports that
generalisation to IMC's sandwich machinery: a cost-aware lazy greedy on
the submodular upper bound ``ν_R`` using the benefit-per-cost rule,
combined with the best single affordable node — the classic guard that
restores a constant-factor guarantee (``(1-1/e)/2``-style) for budgeted
submodular maximisation (Khuller-Moss-Naor / Leskovec's CELF paper).

Like UBG, the result's quality relative to the *non-submodular* ``ĉ_R``
carries the data-dependent sandwich factor ``ĉ(S_ν)/ν(S_ν)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.objective import CoverageState
from repro.core.solution import SeedSelection
from repro.errors import SolverError
from repro.sampling.pool import RICSamplePool
from repro.utils.heap import LazyMaxHeap


def _check_costs(costs: Mapping[int, float], nodes: Iterable[int]) -> None:
    for node in nodes:
        cost = costs.get(node)
        if cost is None:
            raise SolverError(f"node {node} has no seeding cost")
        if cost <= 0:
            raise SolverError(f"node {node} has non-positive cost {cost}")


def budgeted_lazy_greedy_nu(
    pool: RICSamplePool,
    costs: Mapping[int, float],
    budget: float,
) -> List[int]:
    """Cost-aware CELF on ``ν_R``: pick by marginal-gain / cost.

    Only nodes whose remaining cost fits the budget are considered each
    round. Lazy evaluation stays sound: dividing a submodular marginal
    by a constant cost preserves the upper-bound invariant.
    """
    if budget <= 0:
        raise SolverError(f"budget must be positive, got {budget}")
    candidates = sorted(pool.touching_nodes())
    _check_costs(costs, candidates)
    state = CoverageState(pool)
    heap: LazyMaxHeap[int] = LazyMaxHeap()
    for node in candidates:
        gain = state.gain_fractional(node)
        if gain > 0.0:
            heap.push(node, gain / costs[node])
    chosen: List[int] = []
    spent = 0.0
    skipped: List[int] = []
    while heap:
        node, _ = heap.pop_max()
        if spent + costs[node] > budget:
            skipped.append(node)  # may fit later? no — costs fixed; drop
            continue
        fresh = state.gain_fractional(node)
        if fresh <= 0.0:
            continue
        ratio = fresh / costs[node]
        if heap:
            _, next_best = heap.peek_max()
            if ratio < next_best - 1e-12:
                heap.push(node, ratio)
                continue
        state.add_seed(node)
        chosen.append(node)
        spent += costs[node]
    return chosen


def best_single_affordable(
    pool: RICSamplePool,
    costs: Mapping[int, float],
    budget: float,
) -> List[int]:
    """The single affordable node with the largest ``ν_R`` value.

    The guard arm of budgeted submodular maximisation: benefit-per-cost
    greedy alone can be arbitrarily bad when one expensive node
    dominates; taking the max against the best singleton restores the
    constant factor.
    """
    state = CoverageState(pool)
    best_node: Optional[int] = None
    best_gain = 0.0
    for node in sorted(pool.touching_nodes()):
        cost = costs.get(node)
        if cost is None or cost > budget:
            continue
        gain = state.gain_fractional(node)
        if gain > best_gain:
            best_gain = gain
            best_node = node
    return [best_node] if best_node is not None else []


class BudgetedUBG:
    """Cost-aware UBG: sandwich greedy under a seeding budget.

    ``solve`` takes the pool, per-node costs and the budget ``B``;
    returns the better (under ``ĉ_R``) of the cost-aware ν greedy and
    the best affordable singleton.
    """

    name = "BudgetedUBG"

    def solve(
        self,
        pool: RICSamplePool,
        costs: Mapping[int, float],
        budget: float,
    ) -> SeedSelection:
        """Run both budgeted arms and keep the better under ``ĉ_R``."""
        greedy = budgeted_lazy_greedy_nu(pool, costs, budget)
        single = best_single_affordable(pool, costs, budget)
        value_greedy = pool.estimate_benefit(greedy)
        value_single = pool.estimate_benefit(single)
        if value_greedy >= value_single:
            winner, value, arm = greedy, value_greedy, "cost-greedy"
        else:
            winner, value, arm = single, value_single, "best-single"
        spent = sum(costs[v] for v in winner)
        upper = pool.estimate_upper_bound(winner)
        return SeedSelection(
            seeds=tuple(winner),
            objective=value,
            solver=self.name,
            metadata={
                "arm": arm,
                "budget": budget,
                "spent": spent,
                "sandwich_ratio": value / upper if upper > 0 else 1.0,
                "num_samples": len(pool),
            },
        )


def uniform_costs(nodes: Iterable[int], cost: float = 1.0) -> Dict[int, float]:
    """Convenience: the same seeding cost for every node (budget = k
    recovers cardinality-constrained IMC)."""
    if cost <= 0:
        raise SolverError(f"cost must be positive, got {cost}")
    return {node: cost for node in nodes}


def degree_proportional_costs(
    graph, base: float = 1.0, per_degree: float = 0.1
) -> Dict[int, float]:
    """Costs growing with out-degree — influential users charge more,
    the standard cost model of the cost-aware IM literature."""
    if base <= 0 or per_degree < 0:
        raise SolverError("base must be positive and per_degree non-negative")
    return {
        v: base + per_degree * graph.out_degree(v) for v in graph.nodes()
    }
