"""Bounded-threshold algorithms BT (Algorithm 4), BT^(d) and MB.

BT exploits Lemma 5: for every node ``u``, a near-optimal companion set
``K(u)`` for the samples ``G_R(u)`` that ``u`` touches can be found by
*reducing* each such sample — remove the members ``u`` already reaches
and decrement the threshold accordingly. With thresholds bounded by 2,
every reduced threshold is at most 1, so the reduced problem is plain
(submodular) max coverage and greedy earns ``1 - 1/e``; BT then returns
the best ``K(u)`` over all ``u``, for a ``(1 - 1/e)/k`` ratio
(Theorem 4).

``BT^(d)`` recurses: the companion set of the reduced (threshold ≤ d-1)
problem is found by ``BT^(d-1)``, giving ``(1 - 1/e)/k^{d-1}``.

``MB`` returns the better of MAF and BT under ``ĉ_R``; Theorem 5 shows
the combination is a ``Θ(√((1-1/e)/r))``-approximation — tight to the
inapproximability bound of Theorem 1.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.maf import MAF
from repro.core.objective import evaluate_benefit
from repro.core.solution import SeedSelection
from repro.errors import SolverError
from repro.obs import trace
from repro.rng import SeedLike
from repro.sampling.pool import RICSamplePool
from repro.utils.heap import LazyMaxHeap
from repro.utils.retry import Deadline, as_deadline
from repro.utils.validation import check_positive


class _Collection:
    """A lightweight reduced RIC collection.

    Each sample is ``(threshold, reach_sets)`` where ``threshold`` may
    be 0 (already influenced by the implicit outer seeds). An inverted
    ``node → [(sample, member)]`` index supports greedy selection.
    """

    __slots__ = ("thresholds", "reach_sets", "coverage", "auto_influenced")

    def __init__(
        self,
        thresholds: List[int],
        reach_sets: List[Tuple[FrozenSet[int], ...]],
    ) -> None:
        self.thresholds = thresholds
        self.reach_sets = reach_sets
        self.coverage: Dict[int, List[Tuple[int, int]]] = {}
        self.auto_influenced = sum(1 for h in thresholds if h <= 0)
        for sample_idx, reaches in enumerate(reach_sets):
            if thresholds[sample_idx] <= 0:
                continue  # already influenced; coverage is irrelevant
            for member_idx, reach in enumerate(reaches):
                for node in reach:
                    self.coverage.setdefault(node, []).append(
                        (sample_idx, member_idx)
                    )

    def __len__(self) -> int:
        return len(self.thresholds)

    @classmethod
    def from_pool(cls, pool: RICSamplePool) -> "_Collection":
        """The unreduced collection mirroring the full pool."""
        return cls(
            [s.threshold for s in pool.samples],
            [s.reach_sets for s in pool.samples],
        )

    def nodes(self) -> List[int]:
        """Nodes covering at least one member of a live sample."""
        return list(self.coverage)

    def touched_by(self, node: int) -> List[int]:
        """Distinct live-sample indices with ``node`` in some reach set."""
        return sorted({s for s, _ in self.coverage.get(node, ())})

    def reduce_by(self, node: int) -> "_Collection":
        """The collection ``G_R(node)`` after seeding ``node``.

        Keeps only samples touched by ``node`` (plus none others — BT's
        score ``|D_R(K(u), u)|`` only counts those); in each, removes
        every member reached by ``node`` and decrements the threshold
        per removal (Alg. 4 lines 2-7).
        """
        touched = self.touched_by(node)
        thresholds: List[int] = []
        reach_sets: List[Tuple[FrozenSet[int], ...]] = []
        for sample_idx in touched:
            kept = [
                reach
                for reach in self.reach_sets[sample_idx]
                if node not in reach
            ]
            removed = len(self.reach_sets[sample_idx]) - len(kept)
            thresholds.append(max(0, self.thresholds[sample_idx] - removed))
            reach_sets.append(tuple(kept))
        return _Collection(thresholds, reach_sets)

    def influenced_count(self, seeds: Sequence[int]) -> int:
        """Samples influenced by ``seeds`` (auto-influenced included)."""
        seed_set = set(seeds)
        covered: Dict[int, Set[int]] = {}
        for v in seed_set:
            for sample_idx, member_idx in self.coverage.get(v, ()):
                covered.setdefault(sample_idx, set()).add(member_idx)
        live_influenced = sum(
            1
            for sample_idx, members in covered.items()
            if len(members) >= self.thresholds[sample_idx]
        )
        return live_influenced + self.auto_influenced

    def max_threshold(self) -> int:
        """Largest live threshold (0 for an all-influenced collection)."""
        return max(self.thresholds, default=0)


def _greedy_cover(
    collection: _Collection,
    k: int,
    allowed: Optional[Set[int]] = None,
    deadline: Optional[Deadline] = None,
) -> List[int]:
    """CELF greedy for a collection whose thresholds are all ≤ 1.

    With ``h ≤ 1`` a sample is influenced as soon as *any* member is
    covered — plain max coverage, submodular, so lazy evaluation is
    sound and the result carries the ``1 - 1/e`` guarantee. ``deadline``
    is polled between CELF iterations (after at least one pick).
    """
    sample_covered = [h <= 0 for h in collection.thresholds]
    heap: LazyMaxHeap[int] = LazyMaxHeap()

    def gain(node: int) -> int:
        return len(
            {
                s
                for s, _ in collection.coverage.get(node, ())
                if not sample_covered[s]
            }
        )

    for node in sorted(collection.coverage):
        if allowed is not None and node not in allowed:
            continue
        g = gain(node)
        if g > 0:
            heap.push(node, g)
    chosen: List[int] = []
    while heap and len(chosen) < k:
        if deadline is not None and chosen and deadline.expired():
            break
        node, _ = heap.pop_max()
        fresh = gain(node)
        if fresh <= 0:
            continue
        if heap:
            _, next_best = heap.peek_max()
            if fresh < next_best:
                heap.push(node, fresh)
                continue
        chosen.append(node)
        for s, _ in collection.coverage.get(node, ()):
            sample_covered[s] = True
    return chosen


def _bt_solve(
    collection: _Collection,
    k: int,
    depth: int,
    candidate_limit: Optional[int],
    allowed: Optional[Set[int]] = None,
    deadline: Optional[Deadline] = None,
) -> List[int]:
    """Recursive core of BT^(d): returns up to ``k`` seeds.

    ``depth`` is the threshold bound ``d`` of the *current* collection;
    at ``depth <= 1`` the problem is max coverage and plain greedy
    finishes the recursion. The outer loop over candidate nodes ``u``
    is BT's dominant cost; a ``deadline`` is polled per candidate and
    the best companion set found so far is returned on expiry (the
    first candidate is always evaluated in full).
    """
    if k <= 0 or len(collection) == 0:
        return []
    if depth <= 1 or collection.max_threshold() <= 1:
        return _greedy_cover(collection, k, allowed=allowed, deadline=deadline)
    candidates = collection.nodes()
    if allowed is not None:
        candidates = [v for v in candidates if v in allowed]
    # Rank by how many live samples each node touches; the limit keeps
    # the O(n)-fold outer loop tractable on larger instances (the paper
    # itself reports MB exceeding runtime limits on Pokec).
    candidates.sort(key=lambda v: (-len(collection.touched_by(v)), v))
    if candidate_limit is not None:
        candidates = candidates[:candidate_limit]
    best_seeds: List[int] = []
    best_score = -1
    for u in candidates:
        if deadline is not None and best_seeds and deadline.expired():
            break
        reduced = collection.reduce_by(u)
        companions = _bt_solve(
            reduced,
            k - 1,
            depth - 1,
            candidate_limit,
            allowed=allowed,
            deadline=deadline,
        )
        companions = [v for v in companions if v != u][: k - 1]
        score = reduced.influenced_count(companions)
        if score > best_score:
            best_score = score
            best_seeds = [u] + companions
    return best_seeds


class BT:
    """Bounded-threshold MAXR solver (Algorithm 4 / BT^(d)).

    ``threshold_bound`` is the constant ``d`` the instance's thresholds
    must respect (2 reproduces Algorithm 4 exactly).
    ``candidate_limit`` optionally truncates the outer loop over ``u``
    to the most-touching nodes — a practical knob the paper's runtime
    discussion motivates; ``None`` is the faithful full loop.
    """

    name = "BT"

    def __init__(
        self,
        threshold_bound: int = 2,
        candidate_limit: Optional[int] = None,
        candidates: Optional[Iterable[int]] = None,
        engine: str = "reference",
        deadline: Optional[Deadline] = None,
    ) -> None:
        if threshold_bound < 1:
            raise SolverError(
                f"threshold_bound must be >= 1, got {threshold_bound}"
            )
        self.threshold_bound = threshold_bound
        self.candidate_limit = candidate_limit
        #: Arithmetic backend for the final seed-set evaluation
        #: ("reference"/"bitset"/"flat"; identical floats either way).
        self.engine = engine
        #: Restrict seeding to these nodes (None = all nodes).
        self.candidates: Optional[Set[int]] = (
            set(candidates) if candidates is not None else None
        )
        #: Optional time bound (Deadline or seconds): polled per outer
        #: candidate and per CELF pick; best-so-far + ``truncated`` on
        #: expiry.
        self.deadline: Optional[Deadline] = as_deadline(deadline)

    def alpha(self, pool: RICSamplePool, k: int) -> float:
        """``(1 - 1/e) / k^{d-1}`` (Theorem 4 + induction)."""
        return (1.0 - 1.0 / math.e) / (k ** (self.threshold_bound - 1))

    def _check_bound(self, pool: RICSamplePool) -> None:
        h_max = pool.sampler.communities.max_threshold
        if h_max > self.threshold_bound:
            raise SolverError(
                f"BT configured for thresholds <= {self.threshold_bound} "
                f"but the instance has max threshold {h_max}; raise "
                "threshold_bound (ratio degrades as 1/k^(d-1)) or use "
                "UBG/MAF"
            )

    def solve(self, pool: RICSamplePool, k: int) -> SeedSelection:
        """Run BT^(d) on the pool."""
        check_positive(k, "k", SolverError)
        self._check_bound(pool)
        deadline = self.deadline
        with trace.span("bt/select", k=k, num_samples=len(pool)):
            collection = _Collection.from_pool(pool)
            seeds = _bt_solve(
                collection,
                k,
                self.threshold_bound,
                self.candidate_limit,
                allowed=self.candidates,
                deadline=deadline,
            )
        return SeedSelection(
            seeds=tuple(seeds),
            objective=evaluate_benefit(pool, seeds, self.engine),
            solver=self.name,
            metadata={
                "threshold_bound": self.threshold_bound,
                "candidate_limit": self.candidate_limit,
                "num_samples": len(pool),
            },
            truncated=deadline is not None and deadline.expired(),
        )

    def __call__(self, pool: RICSamplePool, k: int) -> SeedSelection:
        return self.solve(pool, k)


class MB:
    """MAF + BT: return the better of the two under ``ĉ_R``.

    Theorem 5: with thresholds bounded by 2, the combination is a
    ``Θ(√((1-1/e)/r))``-approximation — tight to the Theorem 1
    inapproximability bound (up to the ``(log log r)^c`` refinement).
    """

    name = "MB"

    def __init__(
        self,
        threshold_bound: int = 2,
        candidate_limit: Optional[int] = None,
        seed: SeedLike = None,
        candidates: Optional[Iterable[int]] = None,
        engine: str = "reference",
        deadline: Optional[Deadline] = None,
    ) -> None:
        #: Optional time bound shared by both arms. MAF (fast) runs
        #: first; if the deadline has expired by then the BT arm is
        #: skipped and the MAF result returned flagged ``truncated``.
        self.deadline: Optional[Deadline] = as_deadline(deadline)
        #: Evaluation backend forwarded to both arms.
        self.engine = engine
        self._maf = MAF(
            seed=seed,
            candidates=candidates,
            engine=engine,
            deadline=self.deadline,
        )
        self._bt = BT(
            threshold_bound=threshold_bound,
            candidate_limit=candidate_limit,
            candidates=candidates,
            engine=engine,
            deadline=self.deadline,
        )

    def alpha(self, pool: RICSamplePool, k: int) -> float:
        """``√((1-1/e)·⌊k/2⌋ / (k·r))`` — the geometric-mean bound,
        capped at 1."""
        r = pool.sampler.communities.r
        if k < 2:
            return self._bt.alpha(pool, k)
        return min(1.0, math.sqrt((1.0 - 1.0 / math.e) * (k // 2) / (k * r)))

    def solve(self, pool: RICSamplePool, k: int) -> SeedSelection:
        """Run both arms and keep the better seed set.

        With an expired deadline after the MAF arm, the (much slower)
        BT arm is skipped and MAF's seeds are returned as-is."""
        deadline = self.deadline
        # A deadline installed on MB after construction (e.g. by
        # solve_imc) must reach the arms too; install transiently so a
        # later deadline-free reuse of this instance is unaffected.
        lend_maf = deadline is not None and self._maf.deadline is None
        lend_bt = deadline is not None and self._bt.deadline is None
        if lend_maf:
            self._maf.deadline = deadline
        if lend_bt:
            self._bt.deadline = deadline
        # Same transient propagation for the engine: ``solve_imc`` may
        # install a coverage engine on this MB after construction, and
        # the arms must honour it for this call only.
        prior_maf_engine, prior_bt_engine = self._maf.engine, self._bt.engine
        self._maf.engine = self._bt.engine = self.engine
        try:
            with trace.span("mb/maf_arm", k=k, num_samples=len(pool)):
                maf_result = self._maf.solve(pool, k)
            if (
                deadline is not None
                and maf_result.seeds
                and deadline.expired()
            ):
                bt_result = None
                winner = maf_result
            else:
                with trace.span("mb/bt_arm", k=k, num_samples=len(pool)):
                    bt_result = self._bt.solve(pool, k)
                winner = (
                    maf_result
                    if maf_result.objective >= bt_result.objective
                    else bt_result
                )
        finally:
            if lend_maf:
                self._maf.deadline = None
            if lend_bt:
                self._bt.deadline = None
            self._maf.engine = prior_maf_engine
            self._bt.engine = prior_bt_engine
        return SeedSelection(
            seeds=winner.seeds,
            objective=winner.objective,
            solver=self.name,
            metadata={
                "arm": winner.solver,
                "value_maf": maf_result.objective,
                "value_bt": bt_result.objective if bt_result else None,
                "num_samples": len(pool),
            },
            truncated=deadline is not None and deadline.expired(),
        )

    def __call__(self, pool: RICSamplePool, k: int) -> SeedSelection:
        return self.solve(pool, k)
