"""One-shot (IMM-style) sample budgeting for IMC.

IMCAF (Algorithm 5) follows the SSA stop-and-stare pattern: double the
pool until a statistical check accepts. The other state-of-the-art IM
framework the paper cites — IMM (Tang et al., SIGMOD'15) — instead
*estimates a lower bound on the optimum first*, derives a single sample
count θ from it, and solves once. This module ports that pattern to
IMC:

1. **LB phase** — geometric search over guesses ``x = b/2, b/4, ...``:
   for each guess, grow the pool to the θ(x) implied by the guess and
   test whether the greedy solution's estimate clears ``x``; the first
   cleared guess yields ``LB = x / (1 + ε')``.
2. **Solve phase** — grow to ``θ(LB)`` (eq. 16 with ``c(S*) -> LB``)
   and run the MAXR solver once.

Same `α(1-ε)` flavour of guarantee, different constant factors and —
like IMM vs SSA — sometimes substantially fewer samples because the
data-driven LB is far above the worst-case ``βk/h`` bound of eq. 22.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.communities.structure import CommunityStructure
from repro.core.framework import MAXRSolver
from repro.core.solution import SeedSelection
from repro.errors import SolverError
from repro.graph.digraph import DiGraph
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler
from repro.utils.math import log_binomial
from repro.utils.validation import check_fraction, check_seed_budget


@dataclass(frozen=True)
class StaticIMCResult:
    """Result of :func:`solve_imc_static`."""

    selection: SeedSelection
    num_samples: int
    lower_bound: float
    theta: float
    guesses_tried: int


def _theta(
    graph: DiGraph,
    communities: CommunityStructure,
    k: int,
    alpha: float,
    epsilon: float,
    delta: float,
    opt_lower_bound: float,
) -> float:
    """Sample count from eq. 16 with ``c(S*)`` replaced by a bound."""
    if opt_lower_bound <= 0:
        raise SolverError("optimum lower bound must be positive")
    eps1 = eps2 = epsilon / 2.0
    delta1 = delta2 = delta / 2.0
    b = communities.total_benefit
    term1 = 2.0 * math.log(1.0 / delta1) / (eps1 * eps1)
    log_union = log_binomial(graph.num_nodes, k) + math.log(1.0 / delta2)
    term2 = 3.0 * log_union / (alpha * alpha * eps2 * eps2)
    return (b / opt_lower_bound) * max(term1, term2)


def solve_imc_static(
    graph: DiGraph,
    communities: CommunityStructure,
    k: int,
    solver: MAXRSolver,
    epsilon: float = 0.2,
    delta: float = 0.2,
    seed: SeedLike = None,
    max_samples: int = 100_000,
    model: str = "ic",
) -> StaticIMCResult:
    """Solve IMC with IMM-style one-shot sample budgeting.

    ``max_samples`` caps every phase (the guarantee degrades to
    best-effort beyond it, as with :func:`~repro.core.framework.solve_imc`).
    """
    check_seed_budget(k, graph.num_nodes, SolverError)
    check_fraction(epsilon, "epsilon", SolverError)
    check_fraction(delta, "delta", SolverError)
    rng = make_rng(seed)
    sampler = RICSampler(graph, communities, seed=spawn_rng(rng), model=model)
    pool = RICSamplePool(sampler)
    alpha = solver.alpha(pool, k)
    if alpha <= 0:
        alpha = 1e-3

    b = communities.total_benefit
    eps_prime = epsilon / 2.0
    # Spread the LB phase's failure probability over its guesses.
    max_guesses = max(1, math.ceil(math.log2(b / max(communities.min_benefit, 1e-9))))
    delta_guess = delta / (2.0 * max_guesses)

    lower_bound = None
    guesses = 0
    x = b / 2.0
    for _ in range(max_guesses):
        guesses += 1
        theta_x = min(
            _theta(graph, communities, k, alpha, epsilon, delta_guess, x),
            float(max_samples),
        )
        pool.grow_to(math.ceil(theta_x))
        candidate = solver.solve(pool, k)
        if candidate.objective >= (1.0 + eps_prime) * x * alpha:
            lower_bound = x
            break
        x /= 2.0
        if len(pool) >= max_samples:
            break
    if lower_bound is None:
        # All guesses failed (or the cap bit): fall back to the paper's
        # worst-case bound so the final phase is still well-defined.
        from repro.core.framework import optimal_benefit_lower_bound

        lower_bound = optimal_benefit_lower_bound(communities, k)

    theta = min(
        _theta(graph, communities, k, alpha, epsilon, delta / 2.0, lower_bound),
        float(max_samples),
    )
    pool.grow_to(math.ceil(theta))
    selection = solver.solve(pool, k)
    return StaticIMCResult(
        selection=selection,
        num_samples=len(pool),
        lower_bound=lower_bound,
        theta=theta,
        guesses_tried=guesses,
    )
