"""Upper Bound Greedy (UBG) — Algorithm 2.

UBG instantiates the Sandwich Approximation with the submodular upper
bound ``ν_R(S) = (b/|R|) Σ_g min(|I_g(S)|/h_g, 1)`` (eq. 7). It runs
greedy on both ``ν_R`` (lazily — submodular) and ``ĉ_R`` (eagerly —
non-submodular) and keeps whichever seed set scores higher on ``ĉ_R``,
yielding the data-dependent ratio ``(ĉ_R(S_ν)/ν_R(S_ν)) · (1 - 1/e)``
(Theorem 2 + Lemma 3).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Set

from repro.core.greedy import greedy_maxr, lazy_greedy_nu
from repro.core.solution import SeedSelection
from repro.errors import SolverError
from repro.obs import trace
from repro.sampling.pool import RICSamplePool
from repro.utils.retry import Deadline, as_deadline
from repro.utils.validation import check_positive


class UBG:
    """Upper Bound Greedy MAXR solver (the paper's best-quality method)."""

    name = "UBG"

    def __init__(
        self,
        lazy: bool = True,
        run_c_greedy: bool = True,
        candidates: Optional[Iterable[int]] = None,
        engine: str = "bitset",
        deadline: Optional[Deadline] = None,
    ) -> None:
        #: Use CELF for the ν arm (sound because ν is submodular).
        self.lazy = lazy
        #: Coverage engine for both greedy arms: "reference", "bitset"
        #: (default) or "flat" — identical seed sets, different speed.
        self.engine = engine
        #: Also run greedy on ĉ_R (Alg. 2 line 2). Disabling keeps only
        #: the ν arm — the variant IMCAF integrates (Section V-B), whose
        #: ratio is consistent across stop stages.
        self.run_c_greedy = run_c_greedy
        #: Restrict seeding to these nodes (targeted-marketing setting
        #: where only opted-in users may be seeded). None = all nodes.
        self.candidates: Optional[Set[int]] = (
            set(candidates) if candidates is not None else None
        )
        #: Optional time bound (Deadline or seconds): polled between
        #: CELF iterations; on expiry the best-so-far seed set is
        #: returned with ``truncated=True`` instead of hanging.
        self.deadline: Optional[Deadline] = as_deadline(deadline)

    def alpha(self, pool: RICSamplePool, k: int) -> float:
        """A-priori ratio used for sample bounds: ``1 - 1/e``.

        The data-dependent factor ``ĉ(S_ν)/ν(S_ν)`` is only known after
        solving; it is reported in the selection metadata instead.
        """
        return 1.0 - 1.0 / math.e

    def solve(self, pool: RICSamplePool, k: int) -> SeedSelection:
        """Run Algorithm 2 on the pool.

        When a deadline is set and expires mid-run the ν arm returns its
        best-so-far seeds, the ĉ arm is skipped entirely, and the
        selection is flagged ``truncated``.
        """
        check_positive(k, "k", SolverError)
        from repro.core.greedy import greedy_eager_nu

        deadline = self.deadline
        nu_greedy = lazy_greedy_nu if self.lazy else greedy_eager_nu
        with trace.span("ubg/nu_arm", k=k, num_samples=len(pool)):
            seeds_nu = nu_greedy(
                pool,
                k,
                candidates=self.candidates,
                engine=self.engine,
                deadline=deadline,
            )
            value_nu = pool.estimate_benefit(seeds_nu)
            upper_nu = pool.estimate_upper_bound(seeds_nu)
        sandwich = value_nu / upper_nu if upper_nu > 0 else 1.0

        if self.run_c_greedy and not (
            deadline is not None and deadline.expired()
        ):
            with trace.span("ubg/c_arm", k=k, num_samples=len(pool)):
                seeds_c = greedy_maxr(
                    pool,
                    k,
                    candidates=self.candidates,
                    engine=self.engine,
                    deadline=deadline,
                )
                value_c = pool.estimate_benefit(seeds_c)
        else:
            seeds_c, value_c = [], float("-inf")

        if value_c > value_nu:
            winner, value, arm = seeds_c, value_c, "c-greedy"
        else:
            winner, value, arm = seeds_nu, value_nu, "nu-greedy"
        return SeedSelection(
            seeds=tuple(winner),
            objective=value,
            solver=self.name,
            metadata={
                "arm": arm,
                "sandwich_ratio": sandwich,
                "value_nu_arm": value_nu,
                "upper_bound_nu_arm": upper_nu,
                "value_c_arm": value_c if self.run_c_greedy else None,
                "num_samples": len(pool),
            },
            truncated=deadline is not None and deadline.expired(),
        )

    def __call__(self, pool: RICSamplePool, k: int) -> SeedSelection:
        return self.solve(pool, k)


class GreedyC:
    """Plain greedy on ``ĉ_R`` — the second arm of UBG as a standalone.

    No approximation guarantee (``ĉ_R`` is non-submodular, Lemma 2);
    provided as an ablation baseline.
    """

    name = "GreedyC"

    def __init__(
        self,
        candidates: Optional[Iterable[int]] = None,
        engine: str = "bitset",
        deadline: Optional[Deadline] = None,
    ) -> None:
        #: Optional seeding-candidate restriction (None = all nodes).
        self.candidates: Optional[Set[int]] = (
            set(candidates) if candidates is not None else None
        )
        #: Coverage engine for the greedy ("reference"/"bitset"/"flat").
        self.engine = engine
        #: Optional time bound; best-so-far + ``truncated`` on expiry.
        self.deadline: Optional[Deadline] = as_deadline(deadline)

    def alpha(self, pool: RICSamplePool, k: int) -> float:
        """No guarantee; a tiny constant keeps sample bounds finite."""
        return 1e-6

    def solve(self, pool: RICSamplePool, k: int) -> SeedSelection:
        """Greedy selection on ``ĉ_R`` (Alg. 2 line 2, standalone)."""
        check_positive(k, "k", SolverError)
        with trace.span("greedyc/select", k=k, num_samples=len(pool)):
            seeds = greedy_maxr(
                pool,
                k,
                candidates=self.candidates,
                engine=self.engine,
                deadline=self.deadline,
            )
        return SeedSelection(
            seeds=tuple(seeds),
            objective=pool.estimate_benefit(seeds),
            solver=self.name,
            metadata={"num_samples": len(pool)},
            truncated=self.deadline is not None and self.deadline.expired(),
        )

    def __call__(self, pool: RICSamplePool, k: int) -> SeedSelection:
        return self.solve(pool, k)
