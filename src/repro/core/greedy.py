"""Greedy selection primitives over a RIC sample pool.

Two variants back the MAXR solvers:

- :func:`greedy_maxr` — greedy on the *non-submodular* ``ĉ_R``. Because
  CELF's lazy pruning is unsound without submodularity, every round
  recomputes the marginal of every candidate (via the pool's inverted
  index, so a round costs the total coverage size, not ``n · |R|``).
  Ties on the ĉ marginal — which are pervasive early on, when no single
  node pushes any sample past its threshold — are broken by the ν
  (fractional-progress) marginal, then by node id; the fallback keeps
  the greedy directed instead of stalling on an all-zeros round.

- :func:`lazy_greedy_nu` — CELF lazy greedy on the *submodular* ``ν_R``
  (Lemma 3 proves submodularity), with the classic cached-upper-bound
  invariant.

Both accept an optional ``deadline``
(:class:`~repro.utils.retry.Deadline`): it is polled between selection
rounds and the loop exits early with the seeds chosen so far. The first
round always runs to completion so a deadline-bounded caller is
guaranteed at least one seed whenever one exists — "best-so-far, never
empty-handed" is the contract the deadline-aware solvers build on.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.objective import CoverageState
from repro.errors import SolverError
from repro.sampling.pool import RICSamplePool
from repro.utils.heap import LazyMaxHeap
from repro.utils.retry import Deadline


def _out_of_time(deadline: Optional[Deadline], chosen: Sequence[int]) -> bool:
    """Deadline poll between greedy rounds.

    Only truncates once at least one seed was selected, so bounded runs
    degrade to a smaller seed set instead of an empty one.
    """
    return deadline is not None and bool(chosen) and deadline.expired()


def _candidates(pool: RICSamplePool, restrict: Optional[Iterable[int]]) -> List[int]:
    if restrict is not None:
        return sorted(set(restrict))
    return sorted(pool.touching_nodes())


def _make_state(pool: RICSamplePool, engine: str):
    """Instantiate the coverage engine: "reference" (sets), "bitset"
    (packed integer masks) or "flat" (the index compiled into parallel
    contiguous arrays — same results as the other two, fastest
    marginals; compacts the pool as a side effect)."""
    if engine == "reference":
        return CoverageState(pool)
    if engine == "bitset":
        from repro.core.bitset_engine import BitsetCoverage

        return BitsetCoverage(pool)
    if engine == "flat":
        from repro.core.flat_engine import FlatCoverage

        return FlatCoverage(pool)
    raise SolverError(
        f"engine must be 'reference', 'bitset' or 'flat', got {engine!r}"
    )


def greedy_maxr(
    pool: RICSamplePool,
    k: int,
    candidates: Optional[Iterable[int]] = None,
    tie_break_fractional: bool = True,
    engine: str = "bitset",
    deadline: Optional[Deadline] = None,
) -> List[int]:
    """Greedy on ``ĉ_R`` — full marginal recomputation each round.

    Returns up to ``k`` seeds (fewer when the pool has fewer touching
    nodes than ``k``, or when ``deadline`` expires mid-selection). With
    ``tie_break_fractional`` disabled, ties on the ĉ marginal fall
    straight to the node-id order — the literal greedy of Alg. 2
    line 2, kept for ablations.
    """
    if k < 0:
        raise SolverError(f"k must be non-negative, got {k}")
    state = _make_state(pool, engine)
    pool_candidates = _candidates(pool, candidates)
    chosen: List[int] = []
    remaining = set(pool_candidates)
    for _ in range(min(k, len(pool_candidates))):
        if _out_of_time(deadline, chosen):
            break
        best_node = None
        best_key = None
        for node in sorted(remaining):
            gain_c, gain_nu = state.gain_pair(node)
            key = (gain_c, gain_nu) if tie_break_fractional else (gain_c, 0.0)
            if best_key is None or key > best_key:
                best_key = key
                best_node = node
        if best_node is None:
            break
        state.add_seed(best_node)
        remaining.discard(best_node)
        chosen.append(best_node)
    return chosen


def lazy_greedy_nu(
    pool: RICSamplePool,
    k: int,
    candidates: Optional[Iterable[int]] = None,
    engine: str = "bitset",
    deadline: Optional[Deadline] = None,
) -> List[int]:
    """CELF lazy greedy on the submodular ``ν_R``.

    Submodularity guarantees each cached marginal upper-bounds the true
    current marginal, so only the top heap entry ever needs
    re-evaluation; the selected set matches eager greedy exactly (up to
    the same tie-breaking), verified by the test suite. ``deadline`` is
    polled between CELF iterations; on expiry the seeds selected so far
    are returned.
    """
    if k < 0:
        raise SolverError(f"k must be non-negative, got {k}")
    state = _make_state(pool, engine)
    heap: LazyMaxHeap[int] = LazyMaxHeap()
    for node in _candidates(pool, candidates):
        gain = state.gain_fractional(node)
        if gain > 0.0:
            # Negative id as secondary key is encoded by pushing in id
            # order: LazyMaxHeap is stable for equal priorities because
            # the entry counter favours earlier pushes on ties.
            heap.push(node, gain)
    chosen: List[int] = []
    while heap and len(chosen) < k:
        if _out_of_time(deadline, chosen):
            break
        node, cached_gain = heap.pop_max()
        fresh_gain = state.gain_fractional(node)
        if fresh_gain <= 0.0:
            continue
        if heap:
            _, next_best = heap.peek_max()
            if fresh_gain < next_best - 1e-12:
                heap.push(node, fresh_gain)
                continue
        state.add_seed(node)
        chosen.append(node)
    return chosen


def greedy_eager_nu(
    pool: RICSamplePool,
    k: int,
    candidates: Optional[Iterable[int]] = None,
    engine: str = "reference",
    deadline: Optional[Deadline] = None,
) -> List[int]:
    """Eager (recompute-everything) greedy on ``ν_R``.

    Exists as the reference implementation that
    :func:`lazy_greedy_nu` is validated against, and as the slow arm of
    the CELF ablation benchmark — hence the ``"reference"`` engine
    default, overridable for cross-engine checks.
    """
    if k < 0:
        raise SolverError(f"k must be non-negative, got {k}")
    state = _make_state(pool, engine)
    remaining = set(_candidates(pool, candidates))
    chosen: List[int] = []
    for _ in range(min(k, len(remaining))):
        if _out_of_time(deadline, chosen):
            break
        best_node = None
        best_gain = 0.0
        for node in sorted(remaining):
            gain = state.gain_fractional(node)
            if gain > best_gain + 1e-15:
                best_gain = gain
                best_node = node
        if best_node is None:
            break
        state.add_seed(best_node)
        remaining.discard(best_node)
        chosen.append(best_node)
    return chosen
