"""Empirical non-submodularity analysis of the MAXR objective.

The paper's central structural claim is that ``c(·)`` (and its estimate
``ĉ_R``) is neither submodular nor supermodular (Section II-B, Lemma 2).
This module *measures* that on concrete pools:

- :func:`submodularity_violation_rate` — the fraction of random
  ``(S ⊂ T, v)`` triples where the diminishing-returns inequality
  ``gain(v | S) ≥ gain(v | T)`` fails;
- :func:`weak_submodularity_gamma` — an empirical lower bound on the
  submodularity ratio ``γ = min gain-sum / set-gain`` (Das & Kempe),
  which governs how well greedy can do on non-submodular objectives
  (γ = 1 ⟺ submodular on the probed triples);
- :func:`supermodularity_violation_rate` — the same for the reversed
  inequality, showing ``ĉ_R`` is not supermodular either.

Together they quantify how far a given instance sits from the
submodular regime — the empirical face of Fig. 8's sandwich-ratio
trend (small thresholds ⇒ near-submodular ⇒ ratio near 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SolverError
from repro.rng import SeedLike, make_rng
from repro.sampling.pool import RICSamplePool


@dataclass(frozen=True)
class NonSubmodularityProfile:
    """Summary of probed triples on one pool."""

    trials: int
    submodularity_violations: int
    supermodularity_violations: int
    gamma_lower_bound: float

    @property
    def submodularity_violation_rate(self) -> float:
        """Fraction of triples violating diminishing returns."""
        return self.submodularity_violations / self.trials

    @property
    def supermodularity_violation_rate(self) -> float:
        """Fraction of triples violating increasing returns."""
        return self.supermodularity_violations / self.trials

    @property
    def is_effectively_submodular(self) -> bool:
        """No submodularity violation found across all probes."""
        return self.submodularity_violations == 0


def _coverage_value(pool: RICSamplePool, seeds) -> int:
    return pool.influenced_count(seeds)


def probe_nonsubmodularity(
    pool: RICSamplePool,
    trials: int = 200,
    max_set_size: int = 5,
    seed: SeedLike = None,
) -> NonSubmodularityProfile:
    """Probe random ``(S ⊂ T, v)`` triples on the pool's ĉ objective.

    Each probe draws nested random seed sets ``S ⊂ T`` (sizes up to
    ``max_set_size``) and an outside node ``v``, then compares
    ``gain(v|S)`` with ``gain(v|T)``. The reported γ is the *pairwise*
    proxy for the Das-Kempe submodularity ratio: the minimum over
    probes of ``gain(v|S)/gain(v|T)`` (taken as 1 when ``gain(v|T)=0``),
    clipped to ``[0, 1]``. It equals 1 iff no diminishing-returns
    violation was observed across the probes.
    """
    if trials < 1:
        raise SolverError(f"trials must be >= 1, got {trials}")
    if max_set_size < 1:
        raise SolverError(f"max_set_size must be >= 1, got {max_set_size}")
    nodes = sorted(pool.touching_nodes())
    if len(nodes) < 3:
        raise SolverError(
            "non-submodularity probing needs at least 3 touching nodes"
        )
    rng = make_rng(seed)
    sub_violations = 0
    super_violations = 0
    gamma = 1.0
    for _ in range(trials):
        size_t = rng.randint(1, min(max_set_size, len(nodes) - 1))
        t_nodes = rng.sample(nodes, size_t)
        # S may be empty — the classic definition quantifies over
        # S ⊆ T including ∅, and IMC's supermodular jumps (a threshold
        # crossed only by the *pair* of seeds) live exactly there.
        size_s = rng.randint(0, size_t - 1)
        s_nodes = t_nodes[:size_s]
        outside = [v for v in nodes if v not in t_nodes]
        if not outside:
            continue
        v = rng.choice(outside)
        value_s = _coverage_value(pool, s_nodes)
        value_t = _coverage_value(pool, t_nodes)
        gain_s = _coverage_value(pool, s_nodes + [v]) - value_s
        gain_t = _coverage_value(pool, t_nodes + [v]) - value_t
        if gain_t > gain_s:
            sub_violations += 1
        if gain_s > gain_t:
            super_violations += 1
        if gain_t > 0:
            gamma = min(gamma, max(0.0, gain_s / gain_t))
    return NonSubmodularityProfile(
        trials=trials,
        submodularity_violations=sub_violations,
        supermodularity_violations=super_violations,
        gamma_lower_bound=gamma,
    )


def submodularity_violation_rate(
    pool: RICSamplePool,
    trials: int = 200,
    seed: SeedLike = None,
) -> float:
    """Convenience wrapper returning just the violation rate."""
    return probe_nonsubmodularity(
        pool, trials=trials, seed=seed
    ).submodularity_violation_rate


def weak_submodularity_gamma(
    pool: RICSamplePool,
    trials: int = 200,
    seed: SeedLike = None,
) -> float:
    """Convenience wrapper returning the empirical γ lower bound."""
    return probe_nonsubmodularity(
        pool, trials=trials, seed=seed
    ).gamma_lower_bound


def supermodularity_violation_rate(
    pool: RICSamplePool,
    trials: int = 200,
    seed: SeedLike = None,
) -> float:
    """Convenience wrapper returning the supermodularity violation rate."""
    return probe_nonsubmodularity(
        pool, trials=trials, seed=seed
    ).supermodularity_violation_rate
