"""IMCAF — the IMC Algorithmic Framework (Algorithm 5) and the
``Estimate`` procedure (Algorithm 6).

IMCAF turns any ``α``-approximate MAXR solver into an ``α(1-ε)``
approximation for IMC holding with probability ``1-δ``:

1. Compute the worst-case sample budget ``Ψ`` (eq. 22, using the
   ``c(S*) ≥ βk/h`` lower bound) and the stop-stage threshold ``Λ``.
2. Generate ``Λ`` RIC samples; solve MAXR on the pool.
3. When the candidate influences ≥ ``Λ`` pool samples, cross-check it
   against an *independent* Dagum stopping-rule estimate ``c*`` of its
   true benefit (Algorithm 6); accept when ``ĉ_R(S) ≤ (1+ε₁)c*``.
4. Otherwise double the pool and repeat, up to ``Ψ`` samples.

The paper's parameter conventions (Section VI-A) are the defaults:
``ε = δ = 0.2``, ``ε₁ = ε₂ = ε/2`` for the Ψ bound and
``ε₁ = ε₂ = ε₃ = ε/4`` for the stop-stage constants. Where the paper's
typesetting of Λ is ambiguous we use the SSA constant
``Λ = (1+ε₁)(1+ε₂)(2 + 2ε₃/3)·ln(3/δ)/ε₃²`` from the framework IMCAF
modifies (Nguyen et al., SIGMOD'16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional, Protocol, Union

from repro.communities.structure import CommunityStructure
from repro.core.solution import SeedSelection
from repro.diffusion.estimators import dagum_stopping_rule
from repro.errors import DeadlineExceededError, SolverError
from repro.graph.digraph import DiGraph
from repro.obs import metrics, trace
from repro.obs.diagnostics import ConvergenceCriterion, ConvergenceMonitor
from repro.rng import SeedLike, make_rng, spawn_rng
from repro.sampling.parallel import ParallelRICSampler
from repro.sampling.pool import RICSamplePool
from repro.sampling.ric import RICSampler
from repro.utils.math import log_binomial
from repro.utils.retry import Deadline, as_deadline
from repro.utils.validation import check_fraction, check_seed_budget


class MAXRSolver(Protocol):
    """Interface every MAXR algorithm exposes (UBG, MAF, BT, MB, ...)."""

    name: str

    def alpha(self, pool: RICSamplePool, k: int) -> float:
        """A-priori approximation ratio used in the Ψ bound."""

    def solve(self, pool: RICSamplePool, k: int) -> SeedSelection:
        """Select up to ``k`` seeds maximizing influenced samples."""


# ----------------------------------------------------------------------
# Sample-count bounds
# ----------------------------------------------------------------------


def optimal_benefit_lower_bound(
    communities: CommunityStructure, k: int
) -> float:
    """The paper's ``c(S*) ≥ βk/h`` lower bound (Section V-A).

    With budget ``k`` the optimum can always influence at least
    ``k/h`` communities' worth of benefit at ``β`` each (as long as
    ``k`` covers at least one threshold; below that we fall back to
    ``β·k/h < β``, which is only *more* conservative).
    """
    beta = communities.min_benefit
    h = communities.max_threshold
    if beta <= 0:
        # A zero-benefit community cannot be the binding term of ρ; use
        # the smallest positive benefit instead so Ψ stays finite.
        positive = [b for b in communities.benefits() if b > 0]
        if not positive:
            raise SolverError("all community benefits are zero")
        beta = min(positive)
    return beta * k / h


def psi_sample_bound(
    graph: DiGraph,
    communities: CommunityStructure,
    k: int,
    alpha: float,
    epsilon: float,
    delta: float,
) -> float:
    """``Ψ`` of eq. 22 with ``ε₁ = ε₂ = ε/2`` and ``δ₁ = δ₂ = δ/2``.

    ``Ψ = (b·h)/(β·k) · max(2 ln(1/δ₁)/ε₁², 3 ln(C(n,k)/δ₂)/(α²ε₂²))``
    """
    check_fraction(epsilon, "epsilon", SolverError)
    check_fraction(delta, "delta", SolverError)
    if alpha <= 0:
        raise SolverError(f"alpha must be positive, got {alpha}")
    eps1 = eps2 = epsilon / 2.0
    delta1 = delta2 = delta / 2.0
    b = communities.total_benefit
    lower = optimal_benefit_lower_bound(communities, k)
    term1 = 2.0 * math.log(1.0 / delta1) / (eps1 * eps1)
    log_union = log_binomial(graph.num_nodes, k) + math.log(1.0 / delta2)
    term2 = 3.0 * log_union / (alpha * alpha * eps2 * eps2)
    return (b / lower) * max(term1, term2)


def lambda_stop_threshold(epsilon: float, delta: float) -> float:
    """Stop-stage coverage threshold ``Λ`` (Alg. 5 line 4).

    Uses ``ε₁ = ε₂ = ε₃ = ε/4`` (which satisfies line 3's constraint
    ``ε ≥ ε₁+ε₂+ε₃+ε₁ε₂``) in the SSA-style constant.
    """
    check_fraction(epsilon, "epsilon", SolverError)
    check_fraction(delta, "delta", SolverError)
    e3 = epsilon / 4.0
    e1 = e2 = epsilon / 4.0
    return (
        (1.0 + e1)
        * (1.0 + e2)
        * (2.0 + 2.0 * e3 / 3.0)
        * math.log(3.0 / delta)
        / (e3 * e3)
    )


# ----------------------------------------------------------------------
# Algorithm 6 — Estimate
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of the ``Estimate`` procedure (Algorithm 6)."""

    value: Optional[float]
    trials: int
    converged: bool


def estimate_benefit(
    sampler: RICSampler,
    seeds,
    epsilon: float,
    delta: float,
    max_trials: Optional[int] = None,
    monitor: Optional[ConvergenceMonitor] = None,
) -> EstimateResult:
    """Dagum stopping-rule estimate of ``c(S)`` via fresh RIC samples.

    Draws independent RIC samples and feeds the influence indicator
    ``X_g(S)`` to the stopping rule; on convergence returns
    ``b · Λ'/T``, an ``(ε, δ)`` multiplicative approximation of
    ``c(S) = b·E[X_g(S)]`` (Lemma 1). ``value`` is ``None`` when
    ``max_trials`` ran out first (Alg. 6 returns -1) — IMCAF responds by
    growing its pool instead.

    ``monitor``, when given, observes every drawn indicator
    (:meth:`~repro.obs.diagnostics.ConvergenceMonitor.observe_trial`)
    — a pure tap on the trial stream that changes neither the draws nor
    the stopping decision.
    """
    seed_set = set(seeds)
    if not seed_set:
        raise SolverError("cannot estimate the benefit of an empty seed set")

    def draw() -> float:
        sample = sampler.sample()
        outcome = 1.0 if sample.is_influenced_by(seed_set) else 0.0
        if monitor is not None:
            monitor.observe_trial(
                outcome, community_index=sample.community_index
            )
        return outcome

    outcome = dagum_stopping_rule(draw, epsilon, delta, max_trials=max_trials)
    b = sampler.communities.total_benefit
    value = b * outcome.value if outcome.value is not None else None
    return EstimateResult(
        value=value, trials=outcome.trials, converged=outcome.converged
    )


# ----------------------------------------------------------------------
# Algorithm 5 — IMCAF
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class IMCResult:
    """Result of :func:`solve_imc`.

    ``stopped_by`` records which exit fired: ``"estimate"`` (the
    statistical cross-check accepted the candidate), ``"psi"`` (the
    worst-case sample bound was reached — the guarantee still holds, by
    Theorem 6), ``"max_samples"`` (the practical cap; guarantee
    heuristic beyond this point), ``"converged"`` (an adaptive-sampling
    :class:`~repro.obs.diagnostics.ConvergenceCriterion` was satisfied
    — see ``convergence=``), or ``"deadline"`` (the time budget
    expired — the best seed set found so far is returned with
    ``selection.truncated`` set).

    When a convergence monitor was attached, ``metadata["estimator"]``
    carries its summary: final mean/CI/sample count, the ĉ(S)
    trajectory, per-community activation rates and pool composition.
    """

    selection: SeedSelection
    num_samples: int
    psi: float
    lambda_threshold: float
    iterations: int
    stopped_by: str
    benefit_estimate: Optional[float]
    alpha: float
    metadata: Dict[str, Any] = field(default_factory=dict)


def solve_imc(
    graph: DiGraph,
    communities: CommunityStructure,
    k: int,
    solver: MAXRSolver,
    epsilon: float = 0.2,
    delta: float = 0.2,
    seed: SeedLike = None,
    max_samples: Optional[int] = 100_000,
    pool: Optional[RICSamplePool] = None,
    model: str = "ic",
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    engine: str = "serial",
    workers: Optional[int] = None,
    coverage_engine: Optional[str] = None,
    deadline: Union[None, float, Deadline] = None,
    convergence: Union[None, ConvergenceCriterion, ConvergenceMonitor] = None,
) -> IMCResult:
    """Solve IMC with the IMCAF framework (Algorithm 5).

    Returns an ``α(1-ε)``-approximate seed set with probability at least
    ``1-δ`` when allowed to reach ``Ψ`` samples; ``max_samples``
    (default 100 000) caps the pool for laptop-scale runs — the cap is
    recorded in the result so callers know when the formal guarantee was
    traded for tractability. Pass ``max_samples=None`` for the faithful
    unbounded-budget behaviour.

    A pre-built ``pool`` may be supplied to share samples across calls
    (e.g. sweeping ``k`` on one dataset); it must wrap the same graph
    and communities (and then ``engine``/``workers`` are ignored — the
    pool's own sampler is used). ``model`` selects the diffusion model
    the RIC samples realise: ``"ic"`` (the paper's) or ``"lt"`` (the
    extension it sketches in Section II-A).

    ``engine`` selects the sampling engine: ``"serial"`` (one BFS at a
    time) or ``"parallel"`` (process-pool fan-out over ``workers``
    processes, default ``os.cpu_count()``). Both engines produce the
    *identical* pool for a fixed ``seed``, so results are reproducible
    across engines and worker counts.

    ``coverage_engine``, when given, selects the coverage/evaluation
    backend (``"reference"``, ``"bitset"`` or ``"flat"``) and is
    installed transiently on the solver for the duration of the call
    (restored afterwards, mirroring the deadline hand-down). All three
    backends produce identical seed sets and objectives; they differ
    only in marginal-evaluation speed. ``None`` keeps whatever the
    solver was constructed with.

    ``progress``, when given, is called once per stop stage with a dict
    ``{stage, num_samples, coverage, objective, lambda, psi,
    sampling_profile}`` — the hook long-running callers use for
    logging/UI without the library imposing a logging policy.
    ``sampling_profile`` carries the active engine's unified sampling
    profile (:data:`repro.sampling.profile.PROFILE_KEYS`): samples/sec,
    batch shape, worker utilisation and self-healing counters. Both
    engines emit the same key set; under the serial engine the fan-out
    fields are trivial (``mode="serial"``, one batch, no utilisation).

    ``convergence`` attaches estimator-quality diagnostics
    (``docs/observability.md``, "Estimator quality"). Pass a
    :class:`~repro.obs.diagnostics.ConvergenceMonitor` to *observe*:
    the monitor sees every sample batch, every stop-stage evaluation
    and every Estimate trial, records the ĉ(S)-vs-sample-count
    trajectory, and fills ``metadata["estimator"]`` — results stay
    byte-identical (the monitor is a pure observer: no RNG draws, no
    pool mutation). Pass a
    :class:`~repro.obs.diagnostics.ConvergenceCriterion` to also *act*:
    sampling stops early once the relative CI width of ĉ(S) reaches the
    criterion's target (``stopped_by="converged"``) — the one
    diagnostics mode that changes results.

    ``deadline`` bounds wall-clock time: seconds (float) or a
    :class:`~repro.utils.retry.Deadline`. It is checked between stop
    stages and handed down to the solver when the solver exposes an
    unset ``deadline`` attribute (UBG/MAF/BT/MB/GreedyC all do). On
    expiry the best seed set found so far is returned with
    ``stopped_by="deadline"`` and ``selection.truncated=True``;
    :class:`~repro.errors.DeadlineExceededError` is raised only when
    the budget expires before *any* candidate was selected.
    """
    check_seed_budget(k, graph.num_nodes, SolverError)
    communities.validate_against(graph.num_nodes)
    if engine not in ("serial", "parallel"):
        raise SolverError(
            f"engine must be 'serial' or 'parallel', got {engine!r}"
        )
    deadline = as_deadline(deadline)
    # Hand the deadline down to the solver so it truncates *within* a
    # stage too, not only between stages — but never clobber a deadline
    # the caller installed on the solver directly.
    solver_owns_deadline = (
        deadline is not None
        and hasattr(solver, "deadline")
        and getattr(solver, "deadline") is None
    )
    if solver_owns_deadline:
        solver.deadline = deadline  # type: ignore[attr-defined]
    # Install the requested coverage engine transiently (same pattern):
    # the solver keeps its own setting once this call returns.
    if coverage_engine is not None and coverage_engine not in (
        "reference", "bitset", "flat"
    ):
        raise SolverError(
            "coverage_engine must be 'reference', 'bitset' or 'flat', "
            f"got {coverage_engine!r}"
        )
    solver_lends_engine = coverage_engine is not None and hasattr(
        solver, "engine"
    )
    prior_engine: Optional[str] = None
    if solver_lends_engine:
        prior_engine = solver.engine  # type: ignore[attr-defined]
        solver.engine = coverage_engine  # type: ignore[attr-defined]
    monitor: Optional[ConvergenceMonitor] = None
    if convergence is not None:
        monitor = (
            convergence
            if isinstance(convergence, ConvergenceMonitor)
            else ConvergenceMonitor(convergence)
        )
    rng = make_rng(seed)
    owns_sampler = pool is None
    if pool is None:
        if engine == "parallel":
            sampler = ParallelRICSampler(
                graph,
                communities,
                seed=spawn_rng(rng),
                model=model,
                workers=workers,
            )
        else:
            sampler = RICSampler(
                graph, communities, seed=spawn_rng(rng), model=model
            )
        pool = RICSamplePool(sampler)
    else:
        if pool.sampler.graph is not graph or pool.sampler.communities is not communities:
            raise SolverError(
                "supplied pool wraps a different graph/community structure"
            )
        sampler = pool.sampler
        model = sampler.model
    # Independent sampler for the Estimate cross-check so its samples
    # never enter the pool the candidate was optimised on.
    estimate_sampler = RICSampler(
        graph, communities, seed=spawn_rng(rng), model=model
    )

    alpha = solver.alpha(pool, k)
    if alpha <= 0:
        # Solvers whose a-priori ratio degenerates (e.g. MAF with k < h)
        # still run; use a floor so Ψ stays finite and let max_samples
        # do the practical capping.
        alpha = 1e-3
    psi = psi_sample_bound(graph, communities, k, alpha, epsilon, delta)
    lam = lambda_stop_threshold(epsilon, delta)
    cap = psi if max_samples is None else min(psi, float(max_samples))
    cap = max(cap, lam)  # always allow at least the first stop stage

    eps_stage = epsilon / 4.0
    iterations = 0
    stopped_by = "max_iterations"
    benefit_estimate: Optional[float] = None
    def out_of_time() -> bool:
        return deadline is not None and deadline.expired()

    def grow_pool(amount: Optional[int] = None, target: Optional[int] = None):
        """Grow the pool, showing the monitor each landed batch."""
        before = len(pool)
        if target is not None:
            pool.grow_to(target)
        else:
            pool.grow(amount or 0)
        if monitor is not None and len(pool) > before:
            monitor.observe_batch(
                pool.samples[before:],
                sampler.last_profile()
                if hasattr(sampler, "last_profile")
                else None,
            )

    try:
        grow_pool(target=math.ceil(lam))
        with trace.span("imc/select", stage=1, num_samples=len(pool)):
            selection = solver.solve(pool, k)

        while True:
            iterations += 1
            # Explicit coverage-engine rebuild point: after each pool
            # growth the solver MUST rebuild its engine on the grown
            # pool — CoverageState / BitsetCoverage snapshot the sample
            # count and fail fast if reused across a grow(). Calling
            # solver.solve afresh per stage is that rebuild.
            if iterations > 1:
                with trace.span(
                    "imc/select", stage=iterations, num_samples=len(pool)
                ):
                    selection = solver.solve(pool, k)
            if out_of_time():
                if not selection.seeds:
                    raise DeadlineExceededError(
                        "time budget expired before IMCAF selected any "
                        "seed (no best-so-far result to return)"
                    )
                stopped_by = "deadline"
                metrics.inc("deadline.truncated")
                selection = replace(selection, truncated=True)
                break
            with trace.span("imc/evaluate", stage=iterations):
                coverage = pool.influenced_count(selection.seeds)
            if progress is not None:
                progress(
                    {
                        "stage": iterations,
                        "num_samples": len(pool),
                        "coverage": coverage,
                        "objective": selection.objective,
                        "lambda": lam,
                        "psi": psi,
                        "sampling_profile": (
                            sampler.last_profile()
                            if hasattr(sampler, "last_profile")
                            else None
                        ),
                    }
                )
            if monitor is not None:
                monitor.observe_stage(pool, selection.seeds, coverage)
                if monitor.should_stop():
                    # Adaptive sampling: the relative CI width of ĉ(S)
                    # reached the criterion's target — stop before
                    # paying for the Estimate cross-check or another
                    # doubling. Only reachable with a criterion, so
                    # monitoring alone never alters the control flow.
                    stopped_by = "converged"
                    metrics.inc("estimator.adaptive.stops")
                    break
            if coverage >= lam and selection.seeds:
                # Line 9: δ' spreads δ/3 over the doubling stages.
                stages = max(1.0, math.log2(max(psi / lam, 2.0)))
                delta_stage = delta / (3.0 * stages)
                t_max = math.ceil(
                    len(pool) * (1.0 + eps_stage) / (1.0 - eps_stage)
                )
                with trace.span("imc/estimate", stage=iterations):
                    estimate = estimate_benefit(
                        estimate_sampler,
                        selection.seeds,
                        epsilon=eps_stage,
                        delta=min(delta_stage, 0.5),
                        max_trials=t_max,
                        monitor=monitor,
                    )
                if estimate.converged and estimate.value is not None:
                    benefit_estimate = estimate.value
                    if selection.objective <= (1.0 + eps_stage) * estimate.value:
                        stopped_by = "estimate"
                        break
            if len(pool) >= cap:
                stopped_by = "psi" if cap >= psi else "max_samples"
                break
            if out_of_time() and selection.seeds:
                # Growing the pool is the expensive step; don't start it
                # on an expired budget.
                stopped_by = "deadline"
                metrics.inc("deadline.truncated")
                selection = replace(selection, truncated=True)
                break
            grow_pool(amount=min(len(pool), math.ceil(cap) - len(pool)))
    finally:
        # Release worker processes when this call created the sampler.
        if owns_sampler and hasattr(sampler, "close"):
            sampler.close()
        if solver_owns_deadline:
            solver.deadline = None  # type: ignore[attr-defined]
        if solver_lends_engine:
            solver.engine = prior_engine  # type: ignore[attr-defined]

    metadata: Dict[str, Any] = {"epsilon": epsilon, "delta": delta, "k": k}
    if monitor is not None:
        monitor.finalize(pool)
        metadata["estimator"] = monitor.summary()
    return IMCResult(
        selection=selection,
        num_samples=len(pool),
        psi=psi,
        lambda_threshold=lam,
        iterations=iterations,
        stopped_by=stopped_by,
        benefit_estimate=benefit_estimate,
        alpha=alpha,
        metadata=metadata,
    )
