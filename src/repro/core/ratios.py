"""Theoretical approximation ratios and bounds from the paper.

Pure functions of the instance parameters, used by solvers (``alpha``
for sample-complexity bounds), by tests (guarantee checks on small
instances) and by the experiment reports.
"""

from __future__ import annotations

import math

from repro.errors import SolverError

#: ``1 - 1/e`` — the classic submodular greedy constant.
ONE_MINUS_INV_E = 1.0 - 1.0 / math.e


def maf_ratio(k: int, max_threshold: int, num_communities: int) -> float:
    """Theorem 3: MAF is a ``⌊k/h⌋ / r`` approximation (capped at 1 —
    a ratio above 1 is vacuous once the budget covers every community)."""
    if k < 1 or max_threshold < 1 or num_communities < 1:
        raise SolverError("maf_ratio requires positive k, h and r")
    return min(1.0, (k // max_threshold) / num_communities)


def bt_ratio(k: int, threshold_bound: int = 2) -> float:
    """Theorem 4 (+ induction): BT^(d) is a ``(1-1/e)/k^{d-1}`` approximation."""
    if k < 1 or threshold_bound < 1:
        raise SolverError("bt_ratio requires positive k and threshold bound")
    return ONE_MINUS_INV_E / (k ** (threshold_bound - 1))


def mb_ratio(k: int, num_communities: int) -> float:
    """Theorem 5: MB is a ``√((1-1/e)·⌊k/2⌋/(k·r))`` approximation.

    The geometric mean of the MAF and BT guarantees; for large ``k``
    this is ``Θ(√((1-1/e)/r))``, matching the inapproximability bound.
    """
    if k < 1 or num_communities < 1:
        raise SolverError("mb_ratio requires positive k and r")
    if k < 2:
        return bt_ratio(k, 2)
    return min(
        1.0, math.sqrt(ONE_MINUS_INV_E * (k // 2) / (k * num_communities))
    )


def sandwich_ratio(value_at_nu_solution: float, upper_bound_at_nu_solution: float) -> float:
    """Theorem 2 data-dependent factor ``ĉ(S_ν)/ν(S_ν)`` of UBG.

    The full UBG guarantee is this factor times ``1 - 1/e``.
    """
    if upper_bound_at_nu_solution < 0 or value_at_nu_solution < 0:
        raise SolverError("sandwich_ratio requires non-negative objective values")
    if upper_bound_at_nu_solution == 0:
        return 1.0
    return value_at_nu_solution / upper_bound_at_nu_solution


def inapproximability_bound(num_communities: int, c: float = 1.0) -> float:
    """Theorem 1 hardness threshold ``r^{1/(2(log log r)^c)}``.

    No polynomial algorithm beats this factor (under ETH). Returned as
    the multiplicative factor itself; meaningful for ``r`` large enough
    that ``log log r > 0`` (``r ≥ 16`` is safe).
    """
    if num_communities < 16:
        raise SolverError(
            "inapproximability bound needs r >= 16 for log log r to be "
            f"meaningfully positive, got r={num_communities}"
        )
    r = float(num_communities)
    return r ** (1.0 / (2.0 * (math.log(math.log(r))) ** c))
