"""Flat-array coverage engine.

The third and fastest member of the coverage-engine family:

- ``CoverageState`` (reference) keeps per-sample member sets as Python
  ``set`` objects;
- ``BitsetCoverage`` packs each sample's covered members into an int
  bitset but still walks ``node -> {sample_idx: mask}`` nested dicts;
- ``FlatCoverage`` (this module) *compiles* the pool's inverted index
  into parallel contiguous sequences once, so a marginal evaluation is
  a slice + zip over flat storage with zero dict lookups in the loop.

Layout after compilation: each touching node owns one *slot*; slot
``s`` covers the half-open range ``entry_off[s]:entry_off[s+1]`` of two
parallel flat sequences, ``entry_sample`` (sample index) and
``entry_mask`` (that node's member bitset within the sample). The
mutable per-sample state — ``covered_mask``, ``covered_count``,
``thresholds`` — is three flat parallel sequences indexed by sample.
Offsets live in an ``array('q')``; the hot-loop operands live in plain
lists because member masks are arbitrary-precision ints and list
slicing/zip iterates at C speed without re-boxing.

Construction compacts the pool first (:meth:`RICSamplePool.compact`):
duplicate reach frozensets are interned and the inverted index sealed
into tuples, so compilation reads only immutable data.

Behaviour is identical to the other engines (the hypothesis suite
cross-checks all three on random pools); selection is uniform via
``engine="flat"`` on the solvers, :func:`repro.core.framework.solve_imc`,
and the CLI.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple

from repro.errors import SolverError
from repro.obs import metrics
from repro.sampling.pool import RICSamplePool

# int.bit_count() exists from Python 3.10; fall back for 3.9.
if hasattr(int, "bit_count"):

    def _popcount(x: int) -> int:
        return x.bit_count()

else:  # pragma: no cover - exercised only on Python 3.9

    def _popcount(x: int) -> int:
        return bin(x).count("1")


class FlatCoverage:
    """Incremental ĉ/ν coverage over a pool, compiled to flat arrays.

    The public surface mirrors :class:`~repro.core.objective.CoverageState`
    and :class:`~repro.core.bitset_engine.BitsetCoverage`: ``add_seed``,
    ``gain_influenced``, ``gain_fractional``, ``gain_pair``, ``resync``
    and the two estimate accessors. Like its siblings, it snapshots the
    pool's sample count at construction and fails fast (``SolverError``)
    when the pool has grown, until :meth:`resync` recompiles.
    """

    def __init__(self, pool: RICSamplePool, compact: bool = True) -> None:
        self.pool = pool
        if compact:
            pool.compact()
        self.seeds: List[int] = []
        self._seed_set = set()
        self._resyncing = False
        self._compile()

    def _compile(self) -> None:
        """Compile the pool's inverted index into the flat layout.

        Also resets the covered state and replays the current seed set,
        so it doubles as the :meth:`resync` body.
        """
        pool = self.pool
        samples = pool.samples
        self._thresholds: List[int] = [s.threshold for s in samples]
        slot_of: Dict[int, int] = {}
        entry_off = array("q", [0])
        entry_sample: List[int] = []
        entry_mask: List[int] = []
        for node in pool.touching_nodes():
            masks: Dict[int, int] = {}
            for sample_idx, member_idx in pool.coverage_of(node):
                masks[sample_idx] = masks.get(sample_idx, 0) | (1 << member_idx)
            slot_of[node] = len(entry_off) - 1
            for sample_idx, mask in masks.items():
                entry_sample.append(sample_idx)
                entry_mask.append(mask)
            entry_off.append(len(entry_sample))
        self._slot_of = slot_of
        self._entry_off = entry_off
        self._entry_sample = entry_sample
        self._entry_mask = entry_mask
        self._covered_mask: List[int] = [0] * len(samples)
        self._covered_count: List[int] = [0] * len(samples)
        self._influenced = 0
        self._fractional = 0.0
        self._synced_samples = len(samples)
        for node in self.seeds:
            self._apply_seed(node)

    def _check_sync(self) -> None:
        """Fail fast when the pool grew since this engine last synced."""
        if self._resyncing:
            raise SolverError(
                "flat engine is mid-resync() (another thread is "
                "recompiling it); concurrent marginal/accessor calls "
                "would read half-built arrays — serialize engine access "
                "(see the locking contract in docs/serving.md)"
            )
        if len(self.pool.samples) != self._synced_samples:
            raise SolverError(
                f"pool grew from {self._synced_samples} to "
                f"{len(self.pool.samples)} samples since this flat "
                "engine was compiled; call resync() or rebuild the engine"
            )

    def resync(self) -> None:
        """Incorporate samples added to the pool since the last sync.

        Recompiles the flat layout from the grown pool (compacting
        again so the new samples' reach sets are interned too) and
        replays the current seed set. The compile is O(total coverage),
        the same order as building the engine fresh — IMCAF doubles the
        pool per stage, so the recompile cost is within a constant
        factor of the incremental path and keeps the layout contiguous.

        Not thread-safe: a concurrent :meth:`resync` (or any marginal /
        accessor call while one is in progress) raises ``SolverError``
        instead of returning answers from half-compiled arrays —
        callers must serialize engine access (see docs/serving.md).
        """
        if self._resyncing:
            raise SolverError(
                "FlatCoverage.resync() re-entered while another "
                "resync() is in progress; serialize engine access "
                "(see the locking contract in docs/serving.md)"
            )
        if len(self.pool.samples) == self._synced_samples:
            return
        metrics.inc("coverage.resyncs")
        self._resyncing = True
        try:
            self.pool.compact()
            self._compile()
        finally:
            self._resyncing = False

    # -- accessors ------------------------------------------------------

    @property
    def influenced_count(self) -> int:
        """``Σ_g X_g(S)`` for the current seed set."""
        return self._influenced

    @property
    def fractional_count(self) -> float:
        """``Σ_g min(|I_g(S)|/h_g, 1)`` for the current seed set."""
        return self._fractional

    def estimate_benefit(self) -> float:
        """``ĉ_R(S)`` for the current seed set."""
        self._check_sync()
        if not self.pool.samples:
            return 0.0
        return self.pool.total_benefit * self._influenced / len(self.pool.samples)

    def estimate_upper_bound(self) -> float:
        """``ν_R(S)`` for the current seed set."""
        self._check_sync()
        if not self.pool.samples:
            return 0.0
        return self.pool.total_benefit * self._fractional / len(self.pool.samples)

    # -- mutation -------------------------------------------------------

    def _apply_seed(self, node: int) -> None:
        """Merge ``node``'s member masks into the covered state."""
        slot = self._slot_of.get(node)
        if slot is None:
            return
        lo = self._entry_off[slot]
        hi = self._entry_off[slot + 1]
        covered_mask = self._covered_mask
        covered_count = self._covered_count
        thresholds = self._thresholds
        for sample_idx, mask in zip(
            self._entry_sample[lo:hi], self._entry_mask[lo:hi]
        ):
            new_bits = mask & ~covered_mask[sample_idx]
            if not new_bits:
                continue
            threshold = thresholds[sample_idx]
            before = covered_count[sample_idx]
            added = _popcount(new_bits)
            covered_mask[sample_idx] |= new_bits
            covered_count[sample_idx] = before + added
            if before < threshold:
                effective = min(before + added, threshold) - before
                self._fractional += effective / threshold
                if before + added >= threshold:
                    self._influenced += 1

    def add_seed(self, node: int) -> None:
        """Add ``node`` and update the flat covered state."""
        self._check_sync()
        if node in self._seed_set:
            raise SolverError(f"node {node} is already a seed")
        self.seeds.append(node)
        self._seed_set.add(node)
        self._apply_seed(node)

    # -- marginals ------------------------------------------------------

    def gain_pair(self, node: int) -> Tuple[int, float]:
        """Marginal (ĉ, ν) gains of adding ``node``."""
        self._check_sync()
        if node in self._seed_set:
            return 0, 0.0
        slot = self._slot_of.get(node)
        if slot is None:
            return 0, 0.0
        lo = self._entry_off[slot]
        hi = self._entry_off[slot + 1]
        gain_c = 0
        gain_nu = 0.0
        covered_mask = self._covered_mask
        covered_count = self._covered_count
        thresholds = self._thresholds
        for sample_idx, mask in zip(
            self._entry_sample[lo:hi], self._entry_mask[lo:hi]
        ):
            before = covered_count[sample_idx]
            threshold = thresholds[sample_idx]
            if before >= threshold:
                continue
            new_bits = mask & ~covered_mask[sample_idx]
            if not new_bits:
                continue
            added = _popcount(new_bits)
            gain_nu += (min(before + added, threshold) - before) / threshold
            if before + added >= threshold:
                gain_c += 1
        return gain_c, gain_nu

    def gain_influenced(self, node: int) -> int:
        """Marginal ĉ gain of ``node``."""
        return self.gain_pair(node)[0]

    def gain_fractional(self, node: int) -> float:
        """Marginal ν gain of ``node``."""
        return self.gain_pair(node)[1]
